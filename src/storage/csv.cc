#include "storage/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace ziggy {

namespace {

// Splits one logical CSV record honoring double-quote escaping. Returns
// false if the record ends inside an open quote.
bool SplitCsvRecord(std::string_view line, char delim, std::vector<std::string>* out) {
  out->clear();
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      out->push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  out->push_back(std::move(cur));
  return !in_quotes;
}

bool IsNullToken(const std::string& token, const CsvOptions& options) {
  if (token.empty()) return true;
  for (const auto& t : options.null_tokens) {
    if (token == t) return true;
  }
  return false;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  {
    std::istringstream is(text);
    std::string line;
    std::vector<std::string> fields;
    while (std::getline(is, line)) {
      if (TrimWhitespace(line).empty()) continue;
      if (!SplitCsvRecord(line, options.delimiter, &fields)) {
        return Status::ParseError("unterminated quote in CSV record: '" + line + "'");
      }
      records.push_back(fields);
    }
  }
  if (records.empty()) return Status::ParseError("CSV input contains no records");

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t i = 0; i < records[0].size(); ++i) {
      names.push_back("col" + std::to_string(i));
    }
  }
  const size_t num_cols = names.size();
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != num_cols) {
      return Status::ParseError("CSV record " + std::to_string(r) + " has " +
                                std::to_string(records[r].size()) + " fields, expected " +
                                std::to_string(num_cols));
    }
  }
  const size_t num_rows = records.size() - first_data;

  // Type inference over a sample prefix.
  std::vector<ColumnType> types(num_cols, ColumnType::kNumeric);
  for (size_t c = 0; c < num_cols; ++c) {
    size_t seen = 0;
    bool all_numeric = true;
    bool any_value = false;
    for (size_t r = first_data;
         r < records.size() && seen < options.inference_rows; ++r, ++seen) {
      const std::string& tok = records[r][c];
      if (IsNullToken(tok, options)) continue;
      any_value = true;
      if (!ParseDouble(tok).ok()) {
        all_numeric = false;
        break;
      }
    }
    types[c] = (any_value && all_numeric) ? ColumnType::kNumeric
                                          : ColumnType::kCategorical;
  }

  std::vector<Column> columns;
  columns.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    if (types[c] == ColumnType::kNumeric) {
      std::vector<double> vals;
      vals.reserve(num_rows);
      for (size_t r = first_data; r < records.size(); ++r) {
        const std::string& tok = records[r][c];
        if (IsNullToken(tok, options)) {
          vals.push_back(NullNumeric());
          continue;
        }
        Result<double> v = ParseDouble(tok);
        if (!v.ok()) {
          // Inference sampled a numeric prefix but a later row disagrees:
          // fall back to categorical for this column.
          Column cc = Column::Categorical(names[c]);
          for (size_t rr = first_data; rr < records.size(); ++rr) {
            const std::string& t2 = records[rr][c];
            cc.AppendLabel(IsNullToken(t2, options) ? std::string() : t2);
          }
          columns.push_back(std::move(cc));
          vals.clear();
          break;
        }
        vals.push_back(*v);
      }
      if (!vals.empty() || num_rows == 0) {
        columns.push_back(Column::FromNumeric(names[c], std::move(vals)));
      }
    } else {
      Column cc = Column::Categorical(names[c]);
      for (size_t r = first_data; r < records.size(); ++r) {
        const std::string& tok = records[r][c];
        cc.AppendLabel(IsNullToken(tok, options) ? std::string() : tok);
      }
      columns.push_back(std::move(cc));
    }
  }
  return Table::FromColumns(std::move(columns));
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

namespace {
std::string QuoteCsvField(const std::string& field, char delim) {
  bool needs_quote = field.find(delim) != std::string::npos ||
                     field.find('"') != std::string::npos ||
                     field.find('\n') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string WriteCsvString(const Table& table, char delimiter) {
  std::ostringstream os;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) os << delimiter;
    os << QuoteCsvField(table.column(c).name(), delimiter);
  }
  os << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << delimiter;
      const Column& col = table.column(c);
      if (col.IsNull(r)) continue;  // empty field encodes NULL
      if (col.is_numeric()) {
        os << FormatDouble(col.numeric_data()[r], 17);
      } else {
        os << QuoteCsvField(col.dictionary()[static_cast<size_t>(col.codes()[r])],
                            delimiter);
      }
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path, char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open file for writing: '" + path + "'");
  out << WriteCsvString(table, delimiter);
  if (!out) return Status::IOError("write failed: '" + path + "'");
  return Status::OK();
}

}  // namespace ziggy
