#include "storage/column_codec.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/binary_io.h"
#include "common/compress.h"

namespace ziggy {

namespace {

constexpr uint8_t kRawTag = 0;
constexpr uint8_t kLzTag = 1;
constexpr uint8_t kDforTag = 2;  // numeric payloads
constexpr uint8_t kPackTag = 2;  // code payloads
constexpr uint8_t kForMode = 0;
constexpr uint8_t kDeltaMode = 1;
// Decimal scales tried for dfor, 10^0 .. 10^12 (more digits than that
// and the scaled integers start colliding with the double mantissa
// limit, where the roundtrip check below fails anyway).
constexpr int kMaxScalePow = 12;

double Pow10(int k) {
  double s = 1.0;
  while (k-- > 0) s *= 10.0;
  return s;
}

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

bool BitEqual(double a, double b) { return BitsOf(a) == BitsOf(b); }

inline uint64_t ZigZag(int64_t d) {
  return (static_cast<uint64_t>(d) << 1) ^
         static_cast<uint64_t>(d >> 63);
}

inline int64_t UnZigZag(uint64_t z) {
  return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

/// The dfor analysis of a numeric span: which cells are NULL, the decimal
/// scale, and the scaled integers — or ineligibility.
struct DforPlan {
  bool ok = false;
  int scale_pow = 0;
  std::vector<bool> is_null;
  std::vector<int64_t> scaled;  ///< non-null cells, in order
};

DforPlan AnalyzeDfor(const double* cells, size_t n) {
  DforPlan plan;
  plan.is_null.resize(n, false);
  const uint64_t null_bits = BitsOf(NullNumeric());
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = cells[i];
    if (BitsOf(v) == null_bits) {
      plan.is_null[i] = true;
      continue;
    }
    // Non-canonical NaNs and infinities have no integer image; raw/lz
    // preserve their exact bits instead.
    if (!std::isfinite(v)) return plan;
    values.push_back(v);
  }
  for (int k = 0; k <= kMaxScalePow; ++k) {
    const double scale = Pow10(k);
    plan.scaled.clear();
    plan.scaled.reserve(values.size());
    bool fits = true;
    for (const double v : values) {
      // Bound before llround: v * scale beyond int64 range would be UB,
      // and integers past 2^53 are not exactly representable anyway.
      if (!(std::fabs(v) <= 9.0e15 / scale)) {
        fits = false;
        break;
      }
      const int64_t m = std::llround(v * scale);
      if (!BitEqual(static_cast<double>(m) / scale, v)) {
        fits = false;
        break;
      }
      plan.scaled.push_back(m);
    }
    if (fits) {
      plan.ok = true;
      plan.scale_pow = k;
      return plan;
    }
  }
  return plan;
}

std::string NullBitmap(const std::vector<bool>& is_null) {
  std::string bytes((is_null.size() + 7) / 8, '\0');
  for (size_t i = 0; i < is_null.size(); ++i) {
    if (is_null[i]) bytes[i >> 3] |= static_cast<char>(1u << (i & 7));
  }
  return bytes;
}

std::string EncodeDfor(const DforPlan& plan) {
  // Compare the two packings of the scaled integers: against the column
  // minimum (FOR), or zigzag neighbor deltas (narrower when the column
  // is sorted or slowly varying).
  const std::vector<int64_t>& m = plan.scaled;
  int64_t min = 0, max = 0;
  if (!m.empty()) {
    min = max = m[0];
    for (const int64_t v : m) {
      if (v < min) min = v;
      if (v > max) max = v;
    }
  }
  const unsigned for_width = static_cast<unsigned>(std::bit_width(
      static_cast<uint64_t>(max) - static_cast<uint64_t>(min)));
  uint64_t max_zig = 0;
  for (size_t i = 1; i < m.size(); ++i) {
    max_zig = std::max(max_zig, ZigZag(m[i] - m[i - 1]));
  }
  const unsigned delta_width = static_cast<unsigned>(std::bit_width(max_zig));
  const size_t for_bytes = PackedBitsSize(m.size(), for_width);
  const size_t delta_bytes =
      PackedBitsSize(m.empty() ? 0 : m.size() - 1, delta_width);
  const bool use_delta = m.size() > 1 && delta_bytes < for_bytes;

  std::string payload;
  PutU8(&payload, kDforTag);
  PutU8(&payload, use_delta ? kDeltaMode : kForMode);
  PutU8(&payload, use_delta ? static_cast<uint8_t>(delta_width)
                            : static_cast<uint8_t>(for_width));
  PutU8(&payload, static_cast<uint8_t>(plan.scale_pow));
  PutI64(&payload, use_delta ? (m.empty() ? 0 : m[0]) : min);
  payload += NullBitmap(plan.is_null);
  std::vector<uint64_t> packed;
  if (use_delta) {
    packed.reserve(m.size() - 1);
    for (size_t i = 1; i < m.size(); ++i) packed.push_back(ZigZag(m[i] - m[i - 1]));
    PackBits(packed.data(), packed.size(), delta_width, &payload);
  } else {
    packed.reserve(m.size());
    for (const int64_t v : m) {
      packed.push_back(static_cast<uint64_t>(v) - static_cast<uint64_t>(min));
    }
    PackBits(packed.data(), packed.size(), for_width, &payload);
  }
  return payload;
}

void KeepSmaller(std::string* best, std::string candidate) {
  if (candidate.size() < best->size()) *best = std::move(candidate);
}

Result<std::vector<bool>> ParseNullBitmap(ByteReader* reader, size_t n) {
  ZIGGY_ASSIGN_OR_RETURN(std::string_view bytes,
                         reader->ReadBytes((n + 7) / 8));
  std::vector<bool> is_null(n, false);
  for (size_t i = 0; i < n; ++i) {
    is_null[i] = (static_cast<uint8_t>(bytes[i >> 3]) >> (i & 7)) & 1u;
  }
  // Pad bits must be zero — canonical encoding, same policy as UnpackBits.
  for (size_t i = n; i < bytes.size() * 8; ++i) {
    if ((static_cast<uint8_t>(bytes[i >> 3]) >> (i & 7)) & 1u) {
      return Status::ParseError("nonzero pad bits in null bitmap");
    }
  }
  return is_null;
}

Result<std::vector<double>> DecodeDfor(ByteReader* reader, size_t n) {
  ZIGGY_ASSIGN_OR_RETURN(uint8_t mode, reader->ReadU8());
  ZIGGY_ASSIGN_OR_RETURN(uint8_t width, reader->ReadU8());
  ZIGGY_ASSIGN_OR_RETURN(uint8_t scale_pow, reader->ReadU8());
  ZIGGY_ASSIGN_OR_RETURN(int64_t base, reader->ReadI64());
  if (mode != kForMode && mode != kDeltaMode) {
    return Status::ParseError("unknown dfor mode");
  }
  if (width > 64 || scale_pow > kMaxScalePow) {
    return Status::ParseError("implausible dfor width or scale");
  }
  ZIGGY_ASSIGN_OR_RETURN(std::vector<bool> is_null,
                         ParseNullBitmap(reader, n));
  size_t num_values = 0;
  for (size_t i = 0; i < n; ++i) num_values += is_null[i] ? 0 : 1;
  const size_t num_packed =
      mode == kDeltaMode ? (num_values > 0 ? num_values - 1 : 0) : num_values;
  ZIGGY_ASSIGN_OR_RETURN(std::string_view packed_bytes,
                         reader->ReadBytes(PackedBitsSize(num_packed, width)));
  ZIGGY_ASSIGN_OR_RETURN(std::vector<uint64_t> packed,
                         UnpackBits(packed_bytes, num_packed, width));
  if (!reader->exhausted()) {
    return Status::ParseError("trailing bytes after dfor payload");
  }

  const double scale = Pow10(scale_pow);
  std::vector<int64_t> values;
  values.reserve(num_values);
  if (mode == kDeltaMode) {
    // Unsigned accumulation: a crafted chain of deltas must not trip
    // signed-overflow UB; wrapped values just decode to data that cannot
    // match what any encoder produced.
    uint64_t acc = static_cast<uint64_t>(base);
    if (num_values > 0) values.push_back(base);
    for (const uint64_t z : packed) {
      acc += static_cast<uint64_t>(UnZigZag(z));
      values.push_back(static_cast<int64_t>(acc));
    }
  } else {
    for (const uint64_t delta : packed) {
      values.push_back(static_cast<int64_t>(static_cast<uint64_t>(base) + delta));
    }
  }

  std::vector<double> cells(n);
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    cells[i] = is_null[i] ? NullNumeric()
                          : static_cast<double>(values[next++]) / scale;
  }
  return cells;
}

}  // namespace

std::string EncodeNumericCells(const double* cells, size_t n) {
  std::string raw;
  PutU8(&raw, kRawTag);
  raw.append(reinterpret_cast<const char*>(cells), sizeof(double) * n);

  std::string best = raw;
  std::string lz;
  PutU8(&lz, kLzTag);
  lz += LzCompress(std::string_view(raw).substr(1));
  KeepSmaller(&best, std::move(lz));

  DforPlan plan = AnalyzeDfor(cells, n);
  if (plan.ok) KeepSmaller(&best, EncodeDfor(plan));
  return best;
}

Result<std::vector<double>> DecodeNumericCells(std::string_view payload,
                                               size_t n) {
  // Bound the (caller-supplied, ultimately file-derived) count before any
  // size arithmetic: past this, even the raw encoding could not fit a
  // section, and n * sizeof(double) must not wrap.
  if (n > kMaxSectionBytes / sizeof(double)) {
    return Status::ParseError("implausible numeric cell count");
  }
  ByteReader reader(payload);
  ZIGGY_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  if (tag == kDforTag) return DecodeDfor(&reader, n);
  std::string decompressed;
  std::string_view bytes;
  if (tag == kRawTag) {
    ZIGGY_ASSIGN_OR_RETURN(bytes, reader.ReadBytes(sizeof(double) * n));
    if (!reader.exhausted()) {
      return Status::ParseError("trailing bytes after raw numeric cells");
    }
  } else if (tag == kLzTag) {
    ZIGGY_ASSIGN_OR_RETURN(
        decompressed,
        LzDecompress(payload.substr(1), sizeof(double) * n));
    bytes = decompressed;
  } else {
    return Status::ParseError("unknown numeric cell encoding");
  }
  std::vector<double> cells(n);
  if (n > 0) std::memcpy(cells.data(), bytes.data(), bytes.size());
  return cells;
}

std::string EncodeCategoryCodes(const CategoryCode* codes, size_t n,
                                size_t dict_size) {
  std::string raw;
  PutU8(&raw, kRawTag);
  raw.append(reinterpret_cast<const char*>(codes), sizeof(CategoryCode) * n);

  std::string best = raw;
  std::string lz;
  PutU8(&lz, kLzTag);
  lz += LzCompress(std::string_view(raw).substr(1));
  KeepSmaller(&best, std::move(lz));

  // Bit-pack codes+1 (NULL's -1 becomes 0) when every code is in range —
  // always true for codes coming from a validated column, but encoding
  // must never produce a payload its decoder would reject.
  bool packable = dict_size <= size_t{1} << 30;
  for (size_t i = 0; packable && i < n; ++i) {
    packable = codes[i] == kNullCategory ||
               (codes[i] >= 0 && static_cast<size_t>(codes[i]) < dict_size);
  }
  if (packable) {
    const unsigned width =
        static_cast<unsigned>(std::bit_width(static_cast<uint64_t>(dict_size)));
    std::string packed;
    PutU8(&packed, kPackTag);
    PutU8(&packed, static_cast<uint8_t>(width));
    std::vector<uint64_t> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = static_cast<uint64_t>(static_cast<int64_t>(codes[i]) + 1);
    }
    PackBits(values.data(), values.size(), width, &packed);
    KeepSmaller(&best, std::move(packed));
  }
  return best;
}

Result<std::vector<CategoryCode>> DecodeCategoryCodes(std::string_view payload,
                                                      size_t n,
                                                      size_t dict_size) {
  if (n > kMaxSectionBytes / sizeof(double)) {
    return Status::ParseError("implausible code count");
  }
  ByteReader reader(payload);
  ZIGGY_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  if (tag == kPackTag) {
    ZIGGY_ASSIGN_OR_RETURN(uint8_t width, reader.ReadU8());
    if (width > 32) return Status::ParseError("implausible code bit width");
    ZIGGY_ASSIGN_OR_RETURN(std::string_view bytes,
                           reader.ReadBytes(PackedBitsSize(n, width)));
    ZIGGY_ASSIGN_OR_RETURN(std::vector<uint64_t> values,
                           UnpackBits(bytes, n, width));
    if (!reader.exhausted()) {
      return Status::ParseError("trailing bytes after packed codes");
    }
    std::vector<CategoryCode> codes(n);
    for (size_t i = 0; i < n; ++i) {
      if (values[i] > dict_size) {
        return Status::ParseError("packed code out of dictionary range");
      }
      codes[i] = static_cast<CategoryCode>(static_cast<int64_t>(values[i]) - 1);
    }
    return codes;
  }
  std::string decompressed;
  std::string_view bytes;
  if (tag == kRawTag) {
    ZIGGY_ASSIGN_OR_RETURN(bytes, reader.ReadBytes(sizeof(CategoryCode) * n));
    if (!reader.exhausted()) {
      return Status::ParseError("trailing bytes after raw codes");
    }
  } else if (tag == kLzTag) {
    ZIGGY_ASSIGN_OR_RETURN(
        decompressed,
        LzDecompress(payload.substr(1), sizeof(CategoryCode) * n));
    bytes = decompressed;
  } else {
    return Status::ParseError("unknown code encoding");
  }
  std::vector<CategoryCode> codes(n);
  if (n > 0) std::memcpy(codes.data(), bytes.data(), bytes.size());
  for (const CategoryCode code : codes) {
    if (code != kNullCategory &&
        (code < 0 || static_cast<size_t>(code) >= dict_size)) {
      return Status::ParseError("code out of dictionary range");
    }
  }
  return codes;
}

std::string EncodeByteBlob(std::string_view raw) {
  std::string best;
  PutU8(&best, kRawTag);
  best.append(raw.data(), raw.size());

  std::string lz;
  PutU8(&lz, kLzTag);
  PutU64(&lz, raw.size());
  lz += LzCompress(raw);
  KeepSmaller(&best, std::move(lz));
  return best;
}

Result<std::string> DecodeByteBlob(std::string_view payload,
                                   size_t max_raw_bytes) {
  ByteReader reader(payload);
  ZIGGY_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  if (tag == kRawTag) {
    return std::string(payload.substr(1));
  }
  if (tag != kLzTag) return Status::ParseError("unknown blob encoding");
  ZIGGY_ASSIGN_OR_RETURN(uint64_t raw_size, reader.ReadU64());
  if (raw_size > max_raw_bytes) {
    return Status::ParseError("implausible blob size");
  }
  return LzDecompress(payload.substr(1 + sizeof(uint64_t)),
                      static_cast<size_t>(raw_size));
}

}  // namespace ziggy
