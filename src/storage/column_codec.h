// Per-column payload codecs of the v2 table formats (ZIGTBL02/ZIGDLT02,
// see storage/table_io.h). Each encoder tries every applicable encoding
// and keeps the smallest output — the measured-ratio policy — so a
// hostile or incompressible column always has the `raw` escape hatch and
// never grows past its raw size plus a one-byte tag.
//
// Encodings (the leading u8 tag of every payload):
//
//   numeric cells  raw    IEEE doubles verbatim
//                  lz     LzCompress over the raw doubles
//                  dfor   decimal frame-of-reference: cells are scaled by
//                         a power of ten to integers (scale 1 covers
//                         plain integral columns), NULLs recorded in a
//                         bitmap, and the integers stored bit-packed
//                         either against the column minimum (FOR) or as
//                         zigzag deltas between neighbors (sorted runs).
//                         Only chosen when every cell survives a
//                         bit-exact roundtrip check at encode time —
//                         free-form doubles, ±inf, and non-canonical
//                         NaNs fall back to lz/raw.
//   category codes raw    int32 codes verbatim
//                  lz     LzCompress over the raw codes
//                  pack   codes+1 bit-packed to bit_width(dict_size)
//                         bits (the NULL code -1 packs as 0)
//   byte blobs     raw / lz   (dictionary label blocks)
//
// Every decoder is the strict inverse: it validates the tag, all counts
// and widths, rejects trailing bytes, and reproduces the encoder input
// bit for bit (pinned by tests/column_codec_test.cc). Corruption fails
// with a clean Status — the CRC framing above these payloads catches
// random damage first, so these checks guard against crafted files with
// valid checksums.

#ifndef ZIGGY_STORAGE_COLUMN_CODEC_H_
#define ZIGGY_STORAGE_COLUMN_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace ziggy {

/// \brief Encodes `cells[0..n)` (a full column or a delta tail),
/// choosing the smallest of raw/lz/dfor.
std::string EncodeNumericCells(const double* cells, size_t n);

/// \brief Decodes exactly `n` numeric cells; bit-for-bit inverse of
/// EncodeNumericCells (NaN payloads included).
Result<std::vector<double>> DecodeNumericCells(std::string_view payload,
                                               size_t n);

/// \brief Encodes `codes[0..n)` against a dictionary of `dict_size`
/// entries, choosing the smallest of raw/lz/pack.
std::string EncodeCategoryCodes(const CategoryCode* codes, size_t n,
                                size_t dict_size);

/// \brief Decodes exactly `n` codes; every non-NULL code is validated
/// against `dict_size`.
Result<std::vector<CategoryCode>> DecodeCategoryCodes(std::string_view payload,
                                                      size_t n,
                                                      size_t dict_size);

/// \brief Encodes an opaque byte blob (dictionary label blocks),
/// choosing the smaller of raw/lz.
std::string EncodeByteBlob(std::string_view raw);

/// \brief Decodes a byte blob; `max_raw_bytes` bounds the declared
/// decompressed size before any allocation.
Result<std::string> DecodeByteBlob(std::string_view payload,
                                   size_t max_raw_bytes);

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_COLUMN_CODEC_H_
