// Table: Ziggy's in-memory columnar relation.
//
// This module is the substrate standing in for the MonetDB layer of the
// original demo: Ziggy only ever performs full-column sequential scans and
// bitmap selections, and Table provides exactly that access pattern.

#ifndef ZIGGY_STORAGE_TABLE_H_
#define ZIGGY_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/selection.h"

namespace ziggy {

/// \brief Immutable-after-construction columnar table.
class Table {
 public:
  Table() = default;

  /// Builds a table from columns; all columns must have equal length and
  /// distinct names.
  static Result<Table> FromColumns(std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Column lookup by name.
  Result<const Column*> GetColumn(const std::string& name) const;

  /// New table restricted to the selected rows.
  Table Filter(const Selection& selection) const;

  /// New table with only the named columns, in the given order.
  Result<Table> Project(const std::vector<std::string>& names) const;

  /// New table with `tail`'s rows appended. `tail` must have the same
  /// column names and types in the same order; categorical labels are
  /// re-interned, so the two tables' dictionaries need not match (the base
  /// dictionary is extended in place for unseen labels). This is the
  /// substrate of the serving layer's incremental-append path: the base
  /// table is never mutated, a new immutable generation is produced.
  Result<Table> WithAppendedRows(const Table& tail) const;

  /// Renders rows [begin, end) as an aligned ASCII table (for examples).
  std::string Preview(size_t begin, size_t end) const;

  /// Uniform row sample without replacement (BlinkDB-style approximate
  /// profiling substrate: profile a sample, explore the full table).
  /// Sampling `n >= num_rows()` returns a row-shuffled copy.
  Table SampleRows(size_t n, Rng* rng) const;

  /// Approximate heap footprint in bytes (columns + dictionaries).
  size_t MemoryUsageBytes() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// \brief Incremental row-oriented construction of a Table.
class TableBuilder {
 public:
  /// Declares the schema up front.
  explicit TableBuilder(Schema schema);

  /// Appends one row; `values` must match the schema arity and types
  /// (monostate = NULL, double for numeric, string for categorical).
  Status AppendRow(const std::vector<Value>& values);

  size_t num_rows() const { return num_rows_; }

  /// Finalizes; the builder must not be reused afterwards.
  Result<Table> Finish();

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_TABLE_H_
