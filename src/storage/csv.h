// CSV import / export so users can run Ziggy on their own datasets
// (e.g. the UCI Communities & Crime table the paper demos on).

#ifndef ZIGGY_STORAGE_CSV_H_
#define ZIGGY_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace ziggy {

/// \brief Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise names are col0, col1, ...
  bool has_header = true;
  /// Tokens treated as NULL in addition to the empty string.
  std::vector<std::string> null_tokens = {"NA", "N/A", "?", "null", "NULL"};
  /// Rows sampled for type inference (all rows are re-validated on load).
  size_t inference_rows = 100;
  /// A column whose sampled non-null values all parse as numbers is NUMERIC;
  /// anything else is CATEGORICAL.
};

/// \brief Parses CSV text into a Table, inferring column types.
Result<Table> ReadCsvString(const std::string& text, const CsvOptions& options = {});

/// \brief Loads a CSV file into a Table, inferring column types.
Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// \brief Serializes a table as CSV (RFC-4180 quoting).
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// \brief Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path, char delimiter = ',');

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_CSV_H_
