#include "storage/column.h"

#include "common/logging.h"

namespace ziggy {

const std::vector<std::string> Column::kEmptyLabels;

Result<std::shared_ptr<ColumnDictionary>> ColumnDictionary::Build(
    std::vector<std::string> labels) {
  auto dict = std::make_shared<ColumnDictionary>();
  dict->labels = std::move(labels);
  dict->index.reserve(dict->labels.size());
  for (size_t i = 0; i < dict->labels.size(); ++i) {
    if (dict->labels[i].empty()) {
      return Status::ParseError("empty dictionary label");
    }
    const bool inserted =
        dict->index.emplace(dict->labels[i], static_cast<CategoryCode>(i))
            .second;
    if (!inserted) {
      return Status::ParseError("duplicate dictionary label \"" +
                                dict->labels[i] + "\"");
    }
  }
  return dict;
}

Column Column::Numeric(std::string name) {
  return Column(std::move(name), ColumnType::kNumeric);
}

Column Column::Categorical(std::string name) {
  return Column(std::move(name), ColumnType::kCategorical);
}

Column Column::FromNumeric(std::string name, std::vector<double> values) {
  Column c(std::move(name), ColumnType::kNumeric);
  c.numeric_ = std::move(values);
  return c;
}

Column Column::FromStrings(std::string name, const std::vector<std::string>& labels) {
  Column c(std::move(name), ColumnType::kCategorical);
  c.codes_.reserve(labels.size());
  for (const auto& label : labels) c.AppendLabel(label);
  return c;
}

namespace {

Status ValidateCodes(const std::string& name,
                     const std::vector<CategoryCode>& codes,
                     size_t dict_size) {
  for (const CategoryCode code : codes) {
    if (code != kNullCategory &&
        (code < 0 || static_cast<size_t>(code) >= dict_size)) {
      return Status::ParseError("column \"" + name +
                                "\": code out of dictionary range");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Column> Column::FromDictionary(std::string name,
                                      std::vector<std::string> dictionary,
                                      std::vector<CategoryCode> codes) {
  Column c(std::move(name), ColumnType::kCategorical);
  Result<std::shared_ptr<ColumnDictionary>> dict =
      ColumnDictionary::Build(std::move(dictionary));
  if (!dict.ok()) {
    return Status::ParseError("column \"" + c.name_ +
                              "\": " + dict.status().message());
  }
  c.dict_ = std::move(*dict);
  ZIGGY_RETURN_NOT_OK(ValidateCodes(c.name_, codes, c.dict_->labels.size()));
  c.codes_ = std::move(codes);
  return c;
}

Result<Column> Column::FromSharedDictionary(
    std::string name, std::shared_ptr<ColumnDictionary> dictionary,
    std::vector<CategoryCode> codes) {
  Column c(std::move(name), ColumnType::kCategorical);
  const size_t dict_size = dictionary ? dictionary->labels.size() : 0;
  ZIGGY_RETURN_NOT_OK(ValidateCodes(c.name_, codes, dict_size));
  c.dict_ = std::move(dictionary);
  c.codes_ = std::move(codes);
  return c;
}

ColumnDictionary* Column::MutableDictionary() {
  // use_count == 1 means this column is the sole holder and may mutate
  // in place; otherwise (pool cache, sibling column, or snapshot holds a
  // reference) clone a private copy first. A pooled dictionary is always
  // shared with the pool's cache, so it can never be mutated in place.
  if (dict_ == nullptr) {
    dict_ = std::make_shared<ColumnDictionary>();
  } else if (dict_.use_count() > 1) {
    dict_ = std::make_shared<ColumnDictionary>(*dict_);
  }
  return dict_.get();
}

void Column::AppendLabel(const std::string& label) {
  ZIGGY_DCHECK(is_categorical());
  if (label.empty()) {
    codes_.push_back(kNullCategory);
    return;
  }
  codes_.push_back(InternLabel(label));
}

void Column::AppendCode(CategoryCode code) {
  ZIGGY_DCHECK(is_categorical());
  ZIGGY_DCHECK(code == kNullCategory ||
               static_cast<size_t>(code) < dictionary().size());
  codes_.push_back(code);
}

CategoryCode Column::InternLabel(const std::string& label) {
  ZIGGY_DCHECK(is_categorical());
  if (dict_ != nullptr) {
    auto it = dict_->index.find(label);
    if (it != dict_->index.end()) return it->second;
  }
  ColumnDictionary* dict = MutableDictionary();
  CategoryCode code = static_cast<CategoryCode>(dict->labels.size());
  dict->labels.push_back(label);
  dict->index.emplace(label, code);
  return code;
}

CategoryCode Column::LookupLabel(const std::string& label) const {
  if (dict_ == nullptr) return kNullCategory;
  auto it = dict_->index.find(label);
  return it == dict_->index.end() ? kNullCategory : it->second;
}

bool Column::IsNull(size_t i) const {
  if (is_numeric()) return IsNullNumeric(numeric_[i]);
  return codes_[i] == kNullCategory;
}

size_t Column::null_count() const {
  size_t n = 0;
  if (is_numeric()) {
    for (double v : numeric_) n += IsNullNumeric(v) ? 1 : 0;
  } else {
    for (CategoryCode c : codes_) n += (c == kNullCategory) ? 1 : 0;
  }
  return n;
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return std::monostate{};
  if (is_numeric()) return numeric_[i];
  return dictionary()[static_cast<size_t>(codes_[i])];
}

std::string Column::ValueAsString(size_t i) const { return ValueToString(GetValue(i)); }

}  // namespace ziggy
