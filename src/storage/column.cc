#include "storage/column.h"

#include "common/logging.h"

namespace ziggy {

Column Column::Numeric(std::string name) {
  return Column(std::move(name), ColumnType::kNumeric);
}

Column Column::Categorical(std::string name) {
  return Column(std::move(name), ColumnType::kCategorical);
}

Column Column::FromNumeric(std::string name, std::vector<double> values) {
  Column c(std::move(name), ColumnType::kNumeric);
  c.numeric_ = std::move(values);
  return c;
}

Column Column::FromStrings(std::string name, const std::vector<std::string>& labels) {
  Column c(std::move(name), ColumnType::kCategorical);
  c.codes_.reserve(labels.size());
  for (const auto& label : labels) c.AppendLabel(label);
  return c;
}

Result<Column> Column::FromDictionary(std::string name,
                                      std::vector<std::string> dictionary,
                                      std::vector<CategoryCode> codes) {
  Column c(std::move(name), ColumnType::kCategorical);
  c.dictionary_ = std::move(dictionary);
  c.dictionary_index_.reserve(c.dictionary_.size());
  for (size_t i = 0; i < c.dictionary_.size(); ++i) {
    if (c.dictionary_[i].empty()) {
      return Status::ParseError("column \"" + c.name_ +
                                "\": empty dictionary label");
    }
    const bool inserted =
        c.dictionary_index_
            .emplace(c.dictionary_[i], static_cast<CategoryCode>(i))
            .second;
    if (!inserted) {
      return Status::ParseError("column \"" + c.name_ +
                                "\": duplicate dictionary label \"" +
                                c.dictionary_[i] + "\"");
    }
  }
  for (const CategoryCode code : codes) {
    if (code != kNullCategory &&
        (code < 0 || static_cast<size_t>(code) >= c.dictionary_.size())) {
      return Status::ParseError("column \"" + c.name_ +
                                "\": code out of dictionary range");
    }
  }
  c.codes_ = std::move(codes);
  return c;
}

void Column::AppendLabel(const std::string& label) {
  ZIGGY_DCHECK(is_categorical());
  if (label.empty()) {
    codes_.push_back(kNullCategory);
    return;
  }
  codes_.push_back(InternLabel(label));
}

void Column::AppendCode(CategoryCode code) {
  ZIGGY_DCHECK(is_categorical());
  ZIGGY_DCHECK(code == kNullCategory ||
               static_cast<size_t>(code) < dictionary_.size());
  codes_.push_back(code);
}

CategoryCode Column::InternLabel(const std::string& label) {
  ZIGGY_DCHECK(is_categorical());
  auto it = dictionary_index_.find(label);
  if (it != dictionary_index_.end()) return it->second;
  CategoryCode code = static_cast<CategoryCode>(dictionary_.size());
  dictionary_.push_back(label);
  dictionary_index_.emplace(label, code);
  return code;
}

CategoryCode Column::LookupLabel(const std::string& label) const {
  auto it = dictionary_index_.find(label);
  return it == dictionary_index_.end() ? kNullCategory : it->second;
}

bool Column::IsNull(size_t i) const {
  if (is_numeric()) return IsNullNumeric(numeric_[i]);
  return codes_[i] == kNullCategory;
}

size_t Column::null_count() const {
  size_t n = 0;
  if (is_numeric()) {
    for (double v : numeric_) n += IsNullNumeric(v) ? 1 : 0;
  } else {
    for (CategoryCode c : codes_) n += (c == kNullCategory) ? 1 : 0;
  }
  return n;
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return std::monostate{};
  if (is_numeric()) return numeric_[i];
  return dictionary_[static_cast<size_t>(codes_[i])];
}

std::string Column::ValueAsString(size_t i) const { return ValueToString(GetValue(i)); }

}  // namespace ziggy
