// Binary columnar table import/export — the `.ztbl` codec of the
// persistence layer (persist/store.h).
//
// Why a binary codec next to the CSV reader: restart cost. A CSV boot
// pays tokenization, type inference, and double parsing per cell; the
// binary path is a handful of checksummed block reads straight into the
// columnar vectors. The restored table is *exactly* the persisted one —
// numeric cells are raw IEEE doubles (NaN NULLs included, bit for bit)
// and categorical columns keep their dictionary order and codes verbatim
// — which is what lets a warm-restarted server produce byte-identical
// query output to the process that wrote the file.
//
// Layout (all little-endian; sections are CRC-framed, see binary_io.h):
//   magic "ZIGTBL01"
//   section: header   { u64 num_rows, u64 num_columns }
//   section: schema   { per column: str name, u8 type }
//   section per column:
//     numeric      { u8 0, f64 cells[num_rows] }
//     categorical  { u8 1, u64 dict_size, str dict[dict_size],
//                    i32 codes[num_rows] }
// Any truncation, bit flip, or length corruption fails with a clean
// Status: every payload byte is covered by a section CRC, and all counts
// are validated against the header before a column is accepted.
//
// Delta segments (`.zdlt`, magic ZIGDLT01): the O(delta) sibling of the
// full codec. A segment serializes only the rows appended since a base
// snapshot — numeric tails as raw doubles, categorical tails as codes
// plus any dictionary entries the append interned — so checkpointing an
// append writes bytes proportional to the appended rows, not the table.
// Replay applies the segment to the exact base it was cut against
// (validated: base row count, schema, per-column dictionary prefix) via
// Table::WithAppendedRows, reproducing the live post-append table bit
// for bit. Same CRC-framed sections, same corruption policy.
//
// Layout (all little-endian):
//   magic "ZIGDLT01"
//   section: header   { u64 base_rows, u64 new_rows, u64 num_columns }
//   section: schema   { per column: str name, u8 type }
//   section per column:
//     numeric      { u8 0, f64 cells[new_rows] }
//     categorical  { u8 1, u64 base_dict_size, u64 new_entries,
//                    str entries[new_entries], i32 codes[new_rows] }
//                  (codes index the full base+new dictionary)

#ifndef ZIGGY_STORAGE_TABLE_IO_H_
#define ZIGGY_STORAGE_TABLE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace ziggy {

/// \brief Current magic / format version tag of the table codec.
inline constexpr char kTableMagic[8] = {'Z', 'I', 'G', 'T', 'B', 'L', '0', '1'};

/// \brief Serializes a table to the binary columnar format.
Status WriteTable(const Table& table, std::ostream* out);

/// \brief Deserializes a table; validates magic, checksums, and shape.
Result<Table> ReadTable(std::istream* in);

/// \brief File convenience wrappers. WriteTableFile writes in place (the
/// store layers tmp+rename on top for atomicity).
Status WriteTableFile(const Table& table, const std::string& path);
Result<Table> ReadTableFile(const std::string& path);

/// \brief Magic / format version tag of the delta segment codec.
inline constexpr char kTableDeltaMagic[8] = {'Z', 'I', 'G', 'D',
                                             'L', 'T', '0', '1'};

/// \brief Serializes rows [base_rows, table.num_rows()) of `table` as a
/// delta segment. `base_dict_sizes[c]` is the dictionary size column `c`
/// had in the base snapshot (ignored for numeric columns); the base
/// dictionary must be a prefix of the current one — which is what
/// Table::WithAppendedRows guarantees for the append path.
Status WriteTableDelta(const Table& table, size_t base_rows,
                       const std::vector<size_t>& base_dict_sizes,
                       std::ostream* out);

/// \brief Applies one delta segment to `base`, returning the post-append
/// table. Validates magic, checksums, the base row count, the schema,
/// and every categorical column's dictionary prefix size against `base`;
/// any mismatch or corruption fails with a clean Status and `base` is
/// left untouched.
Result<Table> ApplyTableDelta(const Table& base, std::istream* in);

/// \brief File convenience wrappers for delta segments.
Status WriteTableDeltaFile(const Table& table, size_t base_rows,
                           const std::vector<size_t>& base_dict_sizes,
                           const std::string& path);
Result<Table> ApplyTableDeltaFile(const Table& base, const std::string& path);

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_TABLE_IO_H_
