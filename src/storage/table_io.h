// Binary columnar table import/export — the `.ztbl` codec of the
// persistence layer (persist/store.h).
//
// Why a binary codec next to the CSV reader: restart cost. A CSV boot
// pays tokenization, type inference, and double parsing per cell; the
// binary path is a handful of checksummed block reads straight into the
// columnar vectors. The restored table is *exactly* the persisted one —
// numeric cells are raw IEEE doubles (NaN NULLs included, bit for bit)
// and categorical columns keep their dictionary order and codes verbatim
// — which is what lets a warm-restarted server produce byte-identical
// query output to the process that wrote the file.
//
// Layout (all little-endian; sections are CRC-framed, see binary_io.h):
//   magic "ZIGTBL01"
//   section: header   { u64 num_rows, u64 num_columns }
//   section: schema   { per column: str name, u8 type }
//   section per column:
//     numeric      { u8 0, f64 cells[num_rows] }
//     categorical  { u8 1, u64 dict_size, str dict[dict_size],
//                    i32 codes[num_rows] }
// Any truncation, bit flip, or length corruption fails with a clean
// Status: every payload byte is covered by a section CRC, and all counts
// are validated against the header before a column is accepted.

#ifndef ZIGGY_STORAGE_TABLE_IO_H_
#define ZIGGY_STORAGE_TABLE_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace ziggy {

/// \brief Current magic / format version tag of the table codec.
inline constexpr char kTableMagic[8] = {'Z', 'I', 'G', 'T', 'B', 'L', '0', '1'};

/// \brief Serializes a table to the binary columnar format.
Status WriteTable(const Table& table, std::ostream* out);

/// \brief Deserializes a table; validates magic, checksums, and shape.
Result<Table> ReadTable(std::istream* in);

/// \brief File convenience wrappers. WriteTableFile writes in place (the
/// store layers tmp+rename on top for atomicity).
Status WriteTableFile(const Table& table, const std::string& path);
Result<Table> ReadTableFile(const std::string& path);

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_TABLE_IO_H_
