// Binary columnar table import/export — the `.ztbl` codec of the
// persistence layer (persist/store.h).
//
// Why a binary codec next to the CSV reader: restart cost. A CSV boot
// pays tokenization, type inference, and double parsing per cell; the
// binary path is a handful of checksummed block reads straight into the
// columnar vectors. The restored table is *exactly* the persisted one —
// numeric cells are restored bit for bit (NaN NULLs included) and
// categorical columns keep their dictionary order and codes verbatim —
// which is what lets a warm-restarted server produce byte-identical
// query output to the process that wrote the file.
//
// Two table format versions, auto-detected by magic on read:
//
// v1 (magic "ZIGTBL01", raw; all little-endian, CRC-framed sections —
// see binary_io.h):
//   section: header   { u64 num_rows, u64 num_columns }
//   section: schema   { per column: str name, u8 type }
//   section per column:
//     numeric      { u8 0, f64 cells[num_rows] }
//     categorical  { u8 1, u64 dict_size, str dict[dict_size],
//                    i32 codes[num_rows] }
//
// v2 (magic "ZIGTBL02", compressed; written when
// TableWriteOptions::compress is set): same magic/header/schema/section
// skeleton, but column payloads go through the per-column codecs of
// storage/column_codec.h — numeric cells as raw/lz/dfor, category codes
// as raw/lz/bit-packed, each chosen by measured size. A categorical
// column's dictionary is either inline (an lz-compressible label blob)
// or an *external reference* { u64 hash, u64 size } into the store's
// shared dictionary pool (persist/dict_pool.h), resolved at read time
// through TableReadOptions::resolve_dict:
//   section per column:
//     numeric      { u8 0, numeric-cells payload }
//     categorical  { u8 1, u8 dict_mode,
//                    dict_mode 0: str blob{ u64 dict_size, str labels… }
//                    dict_mode 1: u64 dict_hash, u64 dict_size,
//                    codes payload }
//
// Any truncation, bit flip, or length corruption of either version fails
// with a clean Status: every payload byte is covered by a section CRC,
// and all counts are validated against the header before a column is
// accepted.
//
// Delta segments (`.zdlt`, magics ZIGDLT01 / ZIGDLT02): the O(delta)
// sibling of the full codec. A segment serializes only the rows appended
// since a base snapshot — numeric tails, categorical tails as codes plus
// any dictionary entries the append interned (always inline; only full
// snapshots reference the pool) — so checkpointing an append writes
// bytes proportional to the appended rows, not the table. Replay applies
// the segment to the exact base it was cut against (validated: base row
// count, schema, per-column dictionary prefix) via
// Table::WithAppendedRows, reproducing the live post-append table bit
// for bit. Same CRC-framed sections, same corruption policy.
//
// v1 delta layout ("ZIGDLT01"):
//   section: header   { u64 base_rows, u64 new_rows, u64 num_columns }
//   section: schema   { per column: str name, u8 type }
//   section per column:
//     numeric      { u8 0, f64 cells[new_rows] }
//     categorical  { u8 1, u64 base_dict_size, u64 new_entries,
//                    str entries[new_entries], i32 codes[new_rows] }
//                  (codes index the full base+new dictionary)
// v2 delta ("ZIGDLT02"): same, with the cells / new-entry blob / codes
// encoded through the column codecs.

#ifndef ZIGGY_STORAGE_TABLE_IO_H_
#define ZIGGY_STORAGE_TABLE_IO_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace ziggy {

/// \brief Magic / format version tag of the raw (v1) table codec.
inline constexpr char kTableMagic[8] = {'Z', 'I', 'G', 'T', 'B', 'L', '0', '1'};
/// \brief Magic of the compressed (v2) table codec.
inline constexpr char kTableMagicV2[8] = {'Z', 'I', 'G', 'T',
                                          'B', 'L', '0', '2'};

/// \brief Reference to a pooled dictionary: the pool file's content hash
/// plus the number of leading labels this column uses (a column may
/// reference a strict prefix of a larger pooled dictionary).
struct DictRef {
  uint64_t hash = 0;
  uint64_t size = 0;
};

/// \brief Resolves a DictRef to a validated dictionary of exactly
/// `ref.size` labels (the store wires this to its dictionary pool).
using DictResolver =
    std::function<Result<std::shared_ptr<ColumnDictionary>>(const DictRef&)>;

/// \brief Write-side knobs of the table codecs.
struct TableWriteOptions {
  /// false: emit v1, byte-identical to what previous binaries wrote
  /// (and readable by them). true: emit v2 with per-column compression.
  bool compress = false;
  /// Columns to externalize into the dictionary pool (column index ->
  /// pooled ref; ref.size must equal the column's dictionary size).
  /// Only honored when `compress` is set; unmapped columns inline.
  std::unordered_map<size_t, DictRef> external_dicts;
};

/// \brief Read-side knobs. `resolve_dict` is required to load v2 files
/// with external dictionary references; v1 and fully-inline v2 files
/// load without it.
struct TableReadOptions {
  DictResolver resolve_dict;
};

/// \brief Serializes a table to the binary columnar format.
Status WriteTable(const Table& table, std::ostream* out,
                  const TableWriteOptions& options = {});

/// \brief Deserializes a table (v1 or v2, by magic); validates magic,
/// checksums, and shape.
Result<Table> ReadTable(std::istream* in, const TableReadOptions& options = {});

/// \brief File convenience wrappers. WriteTableFile writes in place (the
/// store layers tmp+rename on top for atomicity).
Status WriteTableFile(const Table& table, const std::string& path,
                      const TableWriteOptions& options = {});
Result<Table> ReadTableFile(const std::string& path,
                            const TableReadOptions& options = {});

/// \brief Magic / format version tag of the raw (v1) delta codec.
inline constexpr char kTableDeltaMagic[8] = {'Z', 'I', 'G', 'D',
                                             'L', 'T', '0', '1'};
/// \brief Magic of the compressed (v2) delta codec.
inline constexpr char kTableDeltaMagicV2[8] = {'Z', 'I', 'G', 'D',
                                               'L', 'T', '0', '2'};

/// \brief Serializes rows [base_rows, table.num_rows()) of `table` as a
/// delta segment. `base_dict_sizes[c]` is the dictionary size column `c`
/// had in the base snapshot (ignored for numeric columns); the base
/// dictionary must be a prefix of the current one — which is what
/// Table::WithAppendedRows guarantees for the append path.
/// `options.external_dicts` is ignored: delta dictionary growth is
/// always inline.
Status WriteTableDelta(const Table& table, size_t base_rows,
                       const std::vector<size_t>& base_dict_sizes,
                       std::ostream* out,
                       const TableWriteOptions& options = {});

/// \brief Applies one delta segment (v1 or v2, by magic) to `base`,
/// returning the post-append table. Validates magic, checksums, the base
/// row count, the schema, and every categorical column's dictionary
/// prefix size against `base`; any mismatch or corruption fails with a
/// clean Status and `base` is left untouched.
Result<Table> ApplyTableDelta(const Table& base, std::istream* in);

/// \brief File convenience wrappers for delta segments.
Status WriteTableDeltaFile(const Table& table, size_t base_rows,
                           const std::vector<size_t>& base_dict_sizes,
                           const std::string& path,
                           const TableWriteOptions& options = {});
Result<Table> ApplyTableDeltaFile(const Table& base, const std::string& path);

/// \brief Exact byte size of the v1 (uncompressed) encodings — the
/// "raw" side of the store's compressed/raw byte counters, computed
/// without materializing the file.
uint64_t UncompressedTableBytes(const Table& table);
uint64_t UncompressedDeltaBytes(const Table& table, size_t base_rows,
                                const std::vector<size_t>& base_dict_sizes);

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_TABLE_IO_H_
