#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace ziggy {

Result<Table> Table::FromColumns(std::vector<Column> columns) {
  Table t;
  for (const auto& c : columns) {
    ZIGGY_RETURN_NOT_OK(t.schema_.AddField(Field{c.name(), c.type()}));
  }
  if (!columns.empty()) {
    t.num_rows_ = columns.front().size();
    for (const auto& c : columns) {
      if (c.size() != t.num_rows_) {
        return Status::InvalidArgument(
            "column '" + c.name() + "' has " + std::to_string(c.size()) +
            " rows, expected " + std::to_string(t.num_rows_));
      }
    }
  }
  t.columns_ = std::move(columns);
  return t;
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  ZIGGY_ASSIGN_OR_RETURN(size_t idx, schema_.GetFieldIndex(name));
  return &columns_[idx];
}

Table Table::Filter(const Selection& selection) const {
  ZIGGY_CHECK(selection.num_rows() == num_rows_);
  std::vector<size_t> rows = selection.ToIndices();
  std::vector<Column> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) {
    if (c.is_numeric()) {
      std::vector<double> vals;
      vals.reserve(rows.size());
      for (size_t r : rows) vals.push_back(c.numeric_data()[r]);
      out.push_back(Column::FromNumeric(c.name(), std::move(vals)));
    } else {
      Column nc = Column::Categorical(c.name());
      for (size_t r : rows) {
        CategoryCode code = c.codes()[r];
        if (code == kNullCategory) {
          nc.AppendLabel("");
        } else {
          nc.AppendLabel(c.dictionary()[static_cast<size_t>(code)]);
        }
      }
      out.push_back(std::move(nc));
    }
  }
  auto res = FromColumns(std::move(out));
  ZIGGY_CHECK(res.ok());
  return std::move(res).ValueOrDie();
}

Result<Table> Table::WithAppendedRows(const Table& tail) const {
  if (tail.num_columns() != num_columns()) {
    return Status::InvalidArgument(
        "appended rows have " + std::to_string(tail.num_columns()) +
        " columns, expected " + std::to_string(num_columns()));
  }
  std::vector<Column> out;
  out.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& base = columns_[i];
    const Column& add = tail.columns_[i];
    if (add.name() != base.name() || add.type() != base.type()) {
      return Status::InvalidArgument(
          "appended column " + std::to_string(i) + " is '" + add.name() +
          "', expected '" + base.name() + "' of the same type");
    }
    Column merged = base;  // copies data and, for categoricals, the dictionary
    if (base.is_numeric()) {
      for (double v : add.numeric_data()) merged.AppendNumeric(v);
    } else {
      for (CategoryCode code : add.codes()) {
        if (code == kNullCategory) {
          merged.AppendLabel("");
        } else {
          merged.AppendLabel(add.dictionary()[static_cast<size_t>(code)]);
        }
      }
    }
    out.push_back(std::move(merged));
  }
  return FromColumns(std::move(out));
}

Result<Table> Table::Project(const std::vector<std::string>& names) const {
  std::vector<Column> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    ZIGGY_ASSIGN_OR_RETURN(size_t idx, schema_.GetFieldIndex(name));
    out.push_back(columns_[idx]);
  }
  return FromColumns(std::move(out));
}

std::string Table::Preview(size_t begin, size_t end) const {
  end = std::min(end, num_rows_);
  begin = std::min(begin, end);
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const auto& c : columns_) header.push_back(c.name());
  cells.push_back(header);
  for (size_t r = begin; r < end; ++r) {
    std::vector<std::string> row;
    row.reserve(columns_.size());
    for (const auto& c : columns_) row.push_back(c.ValueAsString(r));
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(columns_.size(), 0);
  for (const auto& row : cells) {
    for (size_t j = 0; j < row.size(); ++j) widths[j] = std::max(widths[j], row[j].size());
  }
  std::ostringstream os;
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = 0; j < cells[i].size(); ++j) {
      os << cells[i][j] << std::string(widths[j] - cells[i][j].size() + 2, ' ');
    }
    os << "\n";
    if (i == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

Table Table::SampleRows(size_t n, Rng* rng) const {
  ZIGGY_CHECK(rng != nullptr);
  std::vector<size_t> rows = rng->SampleWithoutReplacement(num_rows_, n);
  // Selection-based filtering keeps rows in ascending order, which is what
  // downstream statistics expect (order does not matter to them anyway).
  return Filter(Selection::FromIndices(num_rows_, rows));
}

size_t Table::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns_) {
    if (c.is_numeric()) {
      bytes += c.numeric_data().capacity() * sizeof(double);
    } else {
      bytes += c.codes().capacity() * sizeof(CategoryCode);
      for (const auto& s : c.dictionary()) bytes += s.capacity() + sizeof(std::string);
    }
  }
  return bytes;
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) {
    columns_.push_back(f.type == ColumnType::kNumeric ? Column::Numeric(f.name)
                                                      : Column::Categorical(f.name));
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(schema_.num_fields()));
  }
  // Validate the whole row before mutating any column, so a failed append
  // leaves the builder consistent.
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (std::holds_alternative<std::monostate>(v)) continue;
    bool is_double = std::holds_alternative<double>(v);
    if (is_double != (schema_.field(i).type == ColumnType::kNumeric)) {
      return Status::TypeMismatch("value for column '" + schema_.field(i).name +
                                  "' does not match declared type");
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    Column& c = columns_[i];
    if (c.is_numeric()) {
      c.AppendNumeric(std::holds_alternative<std::monostate>(v) ? NullNumeric()
                                                                 : std::get<double>(v));
    } else {
      c.AppendLabel(std::holds_alternative<std::monostate>(v)
                        ? std::string()
                        : std::get<std::string>(v));
    }
  }
  ++num_rows_;
  return Status::OK();
}

Result<Table> TableBuilder::Finish() { return Table::FromColumns(std::move(columns_)); }

}  // namespace ziggy
