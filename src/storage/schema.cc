#include "storage/schema.h"

#include "common/logging.h"

namespace ziggy {

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) {
    Status st = AddField(std::move(f));
    ZIGGY_CHECK(st.ok());
  }
}

Status Schema::AddField(Field field) {
  if (index_.count(field.name) > 0) {
    return Status::AlreadyExists("duplicate column name: '" + field.name + "'");
  }
  index_.emplace(field.name, fields_.size());
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<size_t> Schema::GetFieldIndex(const std::string& name) const {
  auto idx = FindField(name);
  if (!idx.has_value()) {
    return Status::NotFound("no such column: '" + name + "'");
  }
  return *idx;
}

std::vector<std::string> Schema::field_names() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& f : fields_) names.push_back(f.name);
  return names;
}

std::vector<size_t> Schema::FieldsOfType(ColumnType type) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].type == type) out.push_back(i);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += ColumnTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace ziggy
