// Column type system for Ziggy's in-memory columnar store.
//
// Ziggy distinguishes two statistical kinds of attributes (paper §2.2):
// numeric columns, on which moment-based Zig-Components are computed, and
// categorical columns, on which frequency-based components are computed.

#ifndef ZIGGY_STORAGE_TYPES_H_
#define ZIGGY_STORAGE_TYPES_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <variant>

namespace ziggy {

/// \brief Statistical kind of a column.
enum class ColumnType : uint8_t {
  kNumeric = 0,      ///< double-valued; NaN encodes NULL
  kCategorical = 1,  ///< dictionary-encoded; code -1 encodes NULL
};

/// \brief Stable display name of a column type.
const char* ColumnTypeToString(ColumnType type);

/// \brief Dictionary code type for categorical columns.
using CategoryCode = int32_t;

/// \brief Sentinel code for NULL categorical cells.
inline constexpr CategoryCode kNullCategory = -1;

/// \brief Returns true if a numeric cell value encodes NULL.
inline bool IsNullNumeric(double v) { return std::isnan(v); }

/// \brief The NULL sentinel for numeric cells.
inline double NullNumeric() { return std::nan(""); }

/// \brief A dynamically typed cell value, used at API edges (row access,
/// query literals). Monostate encodes NULL.
using Value = std::variant<std::monostate, double, std::string>;

/// \brief Renders a Value for display ("NULL", a number, or a string).
std::string ValueToString(const Value& v);

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_TYPES_H_
