// Schema: ordered, named, typed column descriptors for a Table.

#ifndef ZIGGY_STORAGE_SCHEMA_H_
#define ZIGGY_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace ziggy {

/// \brief One column descriptor.
struct Field {
  std::string name;
  ColumnType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered collection of fields with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Appends a field; fails on duplicate names.
  Status AddField(Field field);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of a field by name, if present.
  std::optional<size_t> FindField(const std::string& name) const;

  /// Index of a field by name, or an error Status naming the column.
  Result<size_t> GetFieldIndex(const std::string& name) const;

  /// Names of all fields, in order.
  std::vector<std::string> field_names() const;

  /// Indices of all fields of the given type.
  std::vector<size_t> FieldsOfType(ColumnType type) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  /// One-line rendering, e.g. "(pop: NUMERIC, state: CATEGORICAL)".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_SCHEMA_H_
