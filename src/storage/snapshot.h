// TableSnapshot: an immutable, reference-counted table generation.
//
// The serving layer never mutates a table in place. An append produces a
// *new* snapshot (generation + 1) and swaps the server's current pointer;
// requests that are mid-flight keep reading the snapshot they started on
// through their shared_ptr, so concurrent reads need no locking and no
// copy. This is the engine-resident analogue of MVCC's "readers never
// block writers": the only synchronized operation is the pointer swap.

#ifndef ZIGGY_STORAGE_SNAPSHOT_H_
#define ZIGGY_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/result.h"
#include "storage/table.h"

namespace ziggy {

/// \brief Shared-ownership handle to one immutable table generation.
class TableSnapshot {
 public:
  TableSnapshot() = default;
  explicit TableSnapshot(Table table, uint64_t generation = 0)
      : table_(std::make_shared<const Table>(std::move(table))),
        generation_(generation) {}

  const Table& table() const { return *table_; }
  const std::shared_ptr<const Table>& shared_table() const { return table_; }
  uint64_t generation() const { return generation_; }
  bool empty() const { return table_ == nullptr; }

  /// Next generation with `tail`'s rows appended (this snapshot is
  /// untouched; holders keep reading it).
  Result<TableSnapshot> WithAppendedRows(const Table& tail) const {
    ZIGGY_ASSIGN_OR_RETURN(Table next, table_->WithAppendedRows(tail));
    return TableSnapshot(std::move(next), generation_ + 1);
  }

 private:
  std::shared_ptr<const Table> table_;
  uint64_t generation_ = 0;
};

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_SNAPSHOT_H_
