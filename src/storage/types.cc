#include "storage/types.h"

#include "common/string_util.h"

namespace ziggy {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "NUMERIC";
    case ColumnType::kCategorical:
      return "CATEGORICAL";
  }
  return "?";
}

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "NULL";
  if (std::holds_alternative<double>(v)) return FormatDouble(std::get<double>(v));
  return std::get<std::string>(v);
}

}  // namespace ziggy
