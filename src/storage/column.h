// Column: the storage unit of Ziggy's columnar engine.
//
// A column is either numeric (contiguous doubles, NaN = NULL) or categorical
// (dictionary-encoded int32 codes, -1 = NULL). Both layouts support the full
// sequential scans that Ziggy's statistics collection performs.
//
// Categorical dictionaries are held behind a shared_ptr with copy-on-write
// semantics: copying a column (or loading N tables whose columns resolve to
// the same pooled dictionary — persist/dict_pool.h) shares one dictionary
// object in memory, and the first mutation through a sharing column clones
// its own private copy. Holders other than the mutating column never
// observe a change.

#ifndef ZIGGY_STORAGE_COLUMN_H_
#define ZIGGY_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace ziggy {

/// \brief An immutable-by-convention categorical dictionary: the ordered
/// labels plus the label -> code index. Shared across columns (and with
/// the store's dictionary pool) behind shared_ptr; every holder treats
/// the contents as frozen and clones before mutating (Column's COW).
struct ColumnDictionary {
  std::vector<std::string> labels;
  std::unordered_map<std::string, CategoryCode> index;

  /// Builds (and validates) a dictionary from ordered labels; fails on
  /// empty or duplicate labels.
  static Result<std::shared_ptr<ColumnDictionary>> Build(
      std::vector<std::string> labels);
};

/// \brief A single named, typed column of an in-memory table.
class Column {
 public:
  /// Creates an empty numeric column.
  static Column Numeric(std::string name);
  /// Creates an empty categorical column.
  static Column Categorical(std::string name);

  /// Creates a numeric column from existing data (NaN = NULL).
  static Column FromNumeric(std::string name, std::vector<double> values);
  /// Creates a categorical column from string labels ("" = NULL).
  static Column FromStrings(std::string name, const std::vector<std::string>& labels);
  /// Creates a categorical column from an explicit dictionary and code
  /// vector (the binary table codec's load path: both are restored
  /// verbatim, so re-encoding is byte-identical to the persisted column).
  /// Fails on empty/duplicate dictionary labels or out-of-range codes.
  static Result<Column> FromDictionary(std::string name,
                                       std::vector<std::string> dictionary,
                                       std::vector<CategoryCode> codes);
  /// Same, from an already-validated shared dictionary (the pooled-dict
  /// load path): the column shares `dictionary` in memory instead of
  /// copying the labels. Fails on out-of-range codes.
  static Result<Column> FromSharedDictionary(
      std::string name, std::shared_ptr<ColumnDictionary> dictionary,
      std::vector<CategoryCode> codes);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const {
    return type_ == ColumnType::kNumeric ? numeric_.size() : codes_.size();
  }
  bool is_numeric() const { return type_ == ColumnType::kNumeric; }
  bool is_categorical() const { return type_ == ColumnType::kCategorical; }

  /// \name Numeric access (requires is_numeric()).
  /// @{
  const std::vector<double>& numeric_data() const { return numeric_; }
  void AppendNumeric(double v) { numeric_.push_back(v); }
  /// @}

  /// \name Categorical access (requires is_categorical()).
  /// @{
  const std::vector<CategoryCode>& codes() const { return codes_; }
  const std::vector<std::string>& dictionary() const {
    return dict_ ? dict_->labels : kEmptyLabels;
  }
  /// The shared dictionary object (null for an empty dictionary).
  const std::shared_ptr<ColumnDictionary>& shared_dictionary() const {
    return dict_;
  }
  size_t cardinality() const { return dictionary().size(); }
  /// Appends a label, interning it in the dictionary. Empty string = NULL.
  void AppendLabel(const std::string& label);
  /// Appends an existing code (must be < cardinality() or kNullCategory).
  void AppendCode(CategoryCode code);
  /// Interns a label and returns its code without appending a cell.
  CategoryCode InternLabel(const std::string& label);
  /// Returns the code of a label, or kNullCategory if absent.
  CategoryCode LookupLabel(const std::string& label) const;
  /// @}

  /// True if row `i` is NULL.
  bool IsNull(size_t i) const;

  /// Number of NULL cells.
  size_t null_count() const;

  /// Dynamically typed cell access for row-oriented consumers.
  Value GetValue(size_t i) const;

  /// Renders cell `i` for display.
  std::string ValueAsString(size_t i) const;

 private:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  /// COW: returns a dictionary this column may mutate, cloning first
  /// when the current one is shared with any other holder.
  ColumnDictionary* MutableDictionary();

  static const std::vector<std::string> kEmptyLabels;

  std::string name_;
  ColumnType type_;
  // Numeric payload.
  std::vector<double> numeric_;
  // Categorical payload.
  std::vector<CategoryCode> codes_;
  std::shared_ptr<ColumnDictionary> dict_;
};

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_COLUMN_H_
