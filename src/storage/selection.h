// Selection: the result of evaluating a query predicate over a table.
//
// A Selection is a row bitmap partitioning the table into the user's
// selection (the "inside" tuples C^I of paper Figure 2) and its complement
// (the "outside" tuples C^O).

#ifndef ZIGGY_STORAGE_SELECTION_H_
#define ZIGGY_STORAGE_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ziggy {

/// \brief Row bitmap over a table; one bit per row.
class Selection {
 public:
  Selection() = default;
  /// All rows unselected.
  explicit Selection(size_t num_rows) : bits_(num_rows, 0) {}
  /// From explicit flags.
  explicit Selection(std::vector<uint8_t> bits) : bits_(std::move(bits)) {}

  /// All rows selected.
  static Selection All(size_t num_rows) {
    return Selection(std::vector<uint8_t>(num_rows, 1));
  }
  /// Selection containing exactly the given row indices.
  static Selection FromIndices(size_t num_rows, const std::vector<size_t>& indices);

  size_t num_rows() const { return bits_.size(); }
  bool Contains(size_t row) const { return bits_[row] != 0; }
  void Set(size_t row, bool on = true) { bits_[row] = on ? 1 : 0; }

  /// Number of selected rows.
  size_t Count() const;

  /// Complement selection.
  Selection Invert() const;

  /// Row-wise conjunction / disjunction; sizes must match.
  Selection And(const Selection& other) const;
  Selection Or(const Selection& other) const;

  /// Selected row indices, in ascending order.
  std::vector<size_t> ToIndices() const;

  /// Jaccard similarity |A∩B| / |A∪B| between two selections; 1.0 when both
  /// are empty. Used by the engine's shared-computation cache to detect
  /// near-duplicate exploration queries.
  double Jaccard(const Selection& other) const;

  /// Stable content fingerprint (FNV-1a over the bitmap), used as a cache key.
  uint64_t Fingerprint() const;

  const std::vector<uint8_t>& bits() const { return bits_; }

  bool operator==(const Selection& other) const { return bits_ == other.bits_; }

 private:
  std::vector<uint8_t> bits_;
};

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_SELECTION_H_
