// Selection: the result of evaluating a query predicate over a table.
//
// A Selection is a row bitmap partitioning the table into the user's
// selection (the "inside" tuples C^I of paper Figure 2) and its complement
// (the "outside" tuples C^O).
//
// Layout: one bit per row, packed into 64-bit words (row r lives in word
// r / 64, bit r % 64). All set-level operations (Count, And, Or, Invert,
// Jaccard, Fingerprint) run word-at-a-time; consumers that need the set
// rows iterate words and peel set bits with count-trailing-zeros, which is
// what makes the columnar sketch accumulation branch-light.

#ifndef ZIGGY_STORAGE_SELECTION_H_
#define ZIGGY_STORAGE_SELECTION_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"

namespace ziggy {

/// \brief Row bitmap over a table; one bit per row, packed 64 rows/word.
///
/// Count() is memoized (selections are counted repeatedly on the serving
/// path: cache-admission checks, near-miss patch budgeting, validation).
/// The memo is invalidated by every in-place mutation (Set, Resize) and
/// uses a relaxed atomic so concurrent readers of a shared immutable
/// Selection may race only on writing the *same* value.
class Selection {
 public:
  /// Rows per storage word.
  static constexpr size_t kWordBits = 64;

  Selection() = default;
  /// All rows unselected.
  explicit Selection(size_t num_rows)
      : num_rows_(num_rows), words_(NumWordsFor(num_rows), 0) {}

  Selection(const Selection& other)
      : num_rows_(other.num_rows_),
        words_(other.words_),
        count_memo_(other.count_memo_.load(std::memory_order_relaxed)) {}
  Selection(Selection&& other) noexcept
      : num_rows_(other.num_rows_),
        words_(std::move(other.words_)),
        count_memo_(other.count_memo_.load(std::memory_order_relaxed)) {
    other.num_rows_ = 0;
    other.count_memo_.store(kNoCount, std::memory_order_relaxed);
  }
  Selection& operator=(const Selection& other) {
    if (this != &other) {
      num_rows_ = other.num_rows_;
      words_ = other.words_;
      count_memo_.store(other.count_memo_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    return *this;
  }
  Selection& operator=(Selection&& other) noexcept {
    if (this != &other) {
      num_rows_ = other.num_rows_;
      words_ = std::move(other.words_);
      count_memo_.store(other.count_memo_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      other.num_rows_ = 0;
      other.count_memo_.store(kNoCount, std::memory_order_relaxed);
    }
    return *this;
  }

  /// All rows selected.
  static Selection All(size_t num_rows);
  /// Selection containing exactly the given row indices.
  static Selection FromIndices(size_t num_rows, const std::vector<size_t>& indices);
  /// From per-row flags (any nonzero byte selects the row).
  static Selection FromBytes(const std::vector<uint8_t>& flags);
  /// From packed words (the persistence load path). Fails when the word
  /// count does not match `num_rows` or the tail word has stray high bits
  /// (the invariant every whole-bitmap operation relies on).
  static Result<Selection> FromWords(size_t num_rows,
                                     std::vector<uint64_t> words);

  size_t num_rows() const { return num_rows_; }
  size_t num_words() const { return words_.size(); }

  bool Contains(size_t row) const {
    ZIGGY_DCHECK(row < num_rows_);
    return (words_[row / kWordBits] >> (row % kWordBits)) & 1u;
  }
  void Set(size_t row, bool on = true) {
    ZIGGY_DCHECK(row < num_rows_);
    const uint64_t mask = uint64_t{1} << (row % kWordBits);
    if (on) {
      words_[row / kWordBits] |= mask;
    } else {
      words_[row / kWordBits] &= ~mask;
    }
    InvalidateMemo();
  }

  /// Resizes the bitmap in place to `new_num_rows`. Growing leaves all
  /// existing rows' bits intact and adds unselected rows (the serving
  /// layer's append migration: a cached selection over N rows is still the
  /// same row set over N+k rows). Shrinking truncates and re-establishes
  /// the tail-word invariant (unused high bits zero).
  void Resize(size_t new_num_rows);

  /// Number of selected rows (popcount over words, memoized).
  size_t Count() const;

  /// Number of selected rows among rows [word_begin*64, word_end*64).
  size_t CountWordRange(size_t word_begin, size_t word_end) const;

  /// Complement selection.
  Selection Invert() const;

  /// Row-wise conjunction / disjunction; sizes must match.
  Selection And(const Selection& other) const;
  Selection Or(const Selection& other) const;

  /// Selected row indices, in ascending order.
  std::vector<size_t> ToIndices() const;

  /// Jaccard similarity |A∩B| / |A∪B| between two selections; 1.0 when both
  /// are empty. Used by the engine's shared-computation cache to detect
  /// near-duplicate exploration queries.
  double Jaccard(const Selection& other) const;

  /// |A XOR B|: number of rows on which the two selections disagree — the
  /// exact cost of patching a cached sketch of `other` into one of `this`
  /// via AddRow/RemoveRow. Sizes must match.
  size_t HammingDistance(const Selection& other) const;

  /// Stable content fingerprint (FNV-1a over the packed words), used as a
  /// cache key.
  uint64_t Fingerprint() const;

  /// Raw packed words; the tail word's unused high bits are always zero.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Calls `fn(row)` for every selected row in [word_begin*64, word_end*64)
  /// in ascending order. The hot-loop primitive: one ctz per set bit, no
  /// per-row branch on unselected rows.
  template <typename Fn>
  void ForEachSetBitInWords(size_t word_begin, size_t word_end, Fn&& fn) const {
    for (size_t w = word_begin; w < word_end; ++w) {
      uint64_t word = words_[w];
      const size_t base = w * kWordBits;
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(base + static_cast<size_t>(bit));
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

  /// ForEachSetBitInWords over the whole bitmap.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    ForEachSetBitInWords(0, words_.size(), std::forward<Fn>(fn));
  }

  bool operator==(const Selection& other) const {
    return num_rows_ == other.num_rows_ && words_ == other.words_;
  }

  static constexpr size_t NumWordsFor(size_t num_rows) {
    return (num_rows + kWordBits - 1) / kWordBits;
  }

 private:
  /// Sentinel for "count not memoized" (a real count never exceeds
  /// num_rows_, so SIZE_MAX is unreachable).
  static constexpr size_t kNoCount = static_cast<size_t>(-1);

  /// Zeroes the unused high bits of the tail word (invariant after every
  /// whole-bitmap operation).
  void ClearTailBits();

  void InvalidateMemo() { count_memo_.store(kNoCount, std::memory_order_relaxed); }

  size_t num_rows_ = 0;
  std::vector<uint64_t> words_;
  mutable std::atomic<size_t> count_memo_{kNoCount};
};

}  // namespace ziggy

#endif  // ZIGGY_STORAGE_SELECTION_H_
