#include "views/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace ziggy {

std::vector<size_t> Dendrogram::LeavesUnder(size_t node) const {
  std::vector<size_t> out;
  std::vector<size_t> stack{node};
  while (!stack.empty()) {
    const size_t cur = stack.back();
    stack.pop_back();
    if (cur < num_leaves_) {
      out.push_back(cur);
    } else {
      const DendrogramMerge& m = merges_[cur - num_leaves_];
      stack.push_back(m.left);
      stack.push_back(m.right);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<size_t>> Dendrogram::CutAtHeight(double height) const {
  // Roots of the cut forest: nodes whose own merge height is <= height but
  // whose parent's is > height (or that have no parent).
  std::vector<size_t> parent(num_leaves_ + merges_.size(),
                             std::numeric_limits<size_t>::max());
  for (size_t i = 0; i < merges_.size(); ++i) {
    parent[merges_[i].left] = num_leaves_ + i;
    parent[merges_[i].right] = num_leaves_ + i;
  }
  auto node_ok = [&](size_t node) {
    return node < num_leaves_ || merges_[node - num_leaves_].height <= height;
  };
  std::vector<std::vector<size_t>> clusters;
  const size_t total = num_leaves_ + merges_.size();
  for (size_t node = 0; node < total; ++node) {
    if (!node_ok(node)) continue;
    const size_t par = parent[node];
    const bool is_root =
        par == std::numeric_limits<size_t>::max() || !node_ok(par);
    if (is_root) clusters.push_back(LeavesUnder(node));
  }
  return clusters;
}

std::vector<std::vector<size_t>> Dendrogram::CutAtHeightWithMaxSize(
    double height, size_t max_size) const {
  ZIGGY_CHECK(max_size >= 1);
  std::vector<std::vector<size_t>> base = CutAtHeight(height);
  // Map each base cluster back to its root node, then descend oversized
  // roots. Simpler: re-derive by walking nodes. We find, for each cluster,
  // the node whose leaf set matches; descending from the top is easier:
  // collect roots as in CutAtHeight but keep node ids.
  std::vector<size_t> parent(num_leaves_ + merges_.size(),
                             std::numeric_limits<size_t>::max());
  for (size_t i = 0; i < merges_.size(); ++i) {
    parent[merges_[i].left] = num_leaves_ + i;
    parent[merges_[i].right] = num_leaves_ + i;
  }
  auto node_ok = [&](size_t node) {
    return node < num_leaves_ || merges_[node - num_leaves_].height <= height;
  };
  std::vector<size_t> roots;
  const size_t total = num_leaves_ + merges_.size();
  for (size_t node = 0; node < total; ++node) {
    if (!node_ok(node)) continue;
    const size_t par = parent[node];
    if (par == std::numeric_limits<size_t>::max() || !node_ok(par)) {
      roots.push_back(node);
    }
  }
  std::vector<std::vector<size_t>> clusters;
  std::vector<size_t> stack = std::move(roots);
  while (!stack.empty()) {
    const size_t node = stack.back();
    stack.pop_back();
    std::vector<size_t> leaves = LeavesUnder(node);
    if (leaves.size() <= max_size || node < num_leaves_) {
      clusters.push_back(std::move(leaves));
    } else {
      const DendrogramMerge& m = merges_[node - num_leaves_];
      stack.push_back(m.left);
      stack.push_back(m.right);
    }
  }
  (void)base;
  return clusters;
}

std::string Dendrogram::ToAscii(const std::vector<std::string>& leaf_labels) const {
  ZIGGY_CHECK(leaf_labels.size() == num_leaves_);
  std::ostringstream os;
  // Render as an indented merge list, deepest merges first.
  for (size_t i = 0; i < merges_.size(); ++i) {
    const DendrogramMerge& m = merges_[i];
    auto render_node = [&](size_t node) -> std::string {
      if (node < num_leaves_) return leaf_labels[node];
      return "#" + std::to_string(node - num_leaves_);
    };
    os << "#" << i << " (h=" << m.height << "): " << render_node(m.left) << " + "
       << render_node(m.right) << "\n";
  }
  return os.str();
}

Result<Dendrogram> CompleteLinkage(const std::vector<double>& distances, size_t n) {
  if (n == 0) return Status::InvalidArgument("cannot cluster zero items");
  if (distances.size() != n * n) {
    return Status::InvalidArgument("distance matrix size does not match n");
  }
  // Lance-Williams update for complete linkage on a working copy of the
  // matrix: d(k, i∪j) = max(d(k, i), d(k, j)). Active set shrinks by one
  // per merge; O(n^3) overall, fine for columns counts in the hundreds.
  std::vector<double> d = distances;
  std::vector<size_t> active;  // current cluster node ids
  std::vector<size_t> slot_of_node(n);  // node id -> row in d
  active.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    active.push_back(i);
    slot_of_node[i] = i;
  }
  std::vector<DendrogramMerge> merges;
  merges.reserve(n - 1);
  std::vector<bool> slot_active(n, true);

  for (size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair of slots.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0;
    size_t bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!slot_active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!slot_active[j]) continue;
        const double dist = d[i * n + j];
        if (dist < best) {
          best = dist;
          bi = i;
          bj = j;
        }
      }
    }
    // Merge slot bj into slot bi; bi now represents the new cluster node.
    const size_t new_node = n + merges.size();
    merges.push_back({active[bi], active[bj], best});
    for (size_t k = 0; k < n; ++k) {
      if (!slot_active[k] || k == bi || k == bj) continue;
      const double dk = std::max(d[k * n + bi], d[k * n + bj]);
      d[k * n + bi] = dk;
      d[bi * n + k] = dk;
    }
    slot_active[bj] = false;
    active[bi] = new_node;
  }
  return Dendrogram(n, std::move(merges));
}

}  // namespace ziggy
