// View: a characteristic view — the unit of Ziggy's output (paper §1-2).

#ifndef ZIGGY_VIEWS_VIEW_H_
#define ZIGGY_VIEWS_VIEW_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "zig/dissimilarity.h"

namespace ziggy {

/// \brief A scored candidate or final view.
struct View {
  /// Column indices, ascending.
  std::vector<size_t> columns;

  /// Zig-Dissimilarity score and its per-kind breakdown (Eq. 1).
  ScoreBreakdown score;

  /// min pairwise dependency among the view's columns (Eq. 2); 1.0 for
  /// singleton views.
  double tightness = 1.0;

  /// Aggregated p-value after multiple-testing correction (paper §3);
  /// filled by the post-processing stage, 1.0 until then.
  double aggregated_p_value = 1.0;

  /// Renders column names, e.g. "{population, density}".
  std::string ColumnNames(const Schema& schema) const;
};

}  // namespace ziggy

#endif  // ZIGGY_VIEWS_VIEW_H_
