// Complete-linkage agglomerative clustering over columns.
//
// Paper §3, View Search: "it materializes the graph formed by the column's
// pairwise dependencies, and partitions it ... In our implementation, we
// used complete linkage clustering. This method is simple, well
// established, and it provides a dendrogram."
//
// Distance between columns is 1 − S (S = dependency in [0, 1]). The
// complete-linkage invariant — a cluster formed at height h has *maximum*
// pairwise distance ≤ h — is exactly what makes the tightness constraint of
// Eq. 3 hold: cutting the dendrogram at height 1 − MIN_tight yields
// clusters whose *minimum* pairwise dependency is ≥ MIN_tight.

#ifndef ZIGGY_VIEWS_CLUSTERING_H_
#define ZIGGY_VIEWS_CLUSTERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ziggy {

/// \brief One agglomeration step. Node ids: leaves are [0, n); merge i
/// creates node n + i.
struct DendrogramMerge {
  size_t left;
  size_t right;
  double height;  ///< complete-linkage distance at which the merge happened
};

/// \brief The full merge tree produced by agglomerative clustering.
class Dendrogram {
 public:
  Dendrogram(size_t num_leaves, std::vector<DendrogramMerge> merges)
      : num_leaves_(num_leaves), merges_(std::move(merges)) {}

  size_t num_leaves() const { return num_leaves_; }
  const std::vector<DendrogramMerge>& merges() const { return merges_; }

  /// Leaf ids under an arbitrary node id.
  std::vector<size_t> LeavesUnder(size_t node) const;

  /// Cuts the tree at `height`: returns the clusters (leaf-id lists) formed
  /// by keeping exactly the merges with height <= `height`.
  std::vector<std::vector<size_t>> CutAtHeight(double height) const;

  /// Like CutAtHeight, but additionally splits any cluster larger than
  /// `max_size` by descending the merge tree until every part fits. This
  /// enforces the view-size budget D while preserving tightness (children
  /// of a complete-linkage node are at least as tight as the node).
  std::vector<std::vector<size_t>> CutAtHeightWithMaxSize(double height,
                                                          size_t max_size) const;

  /// Multi-line ASCII rendering of the merge tree (the "visual support to
  /// help setting the parameter" of paper §3), with leaf labels.
  std::string ToAscii(const std::vector<std::string>& leaf_labels) const;

 private:
  size_t num_leaves_;
  std::vector<DendrogramMerge> merges_;
};

/// \brief Runs complete-linkage clustering on a dense symmetric distance
/// matrix (row-major n*n). Returns the dendrogram with n-1 merges.
Result<Dendrogram> CompleteLinkage(const std::vector<double>& distances, size_t n);

}  // namespace ziggy

#endif  // ZIGGY_VIEWS_CLUSTERING_H_
