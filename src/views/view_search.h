// View search: candidate generation, constraint enforcement, scoring and
// ranking — the middle stage of Ziggy's pipeline (paper §3, Figure 4),
// solving the optimization system of Eq. 5.

#ifndef ZIGGY_VIEWS_VIEW_SEARCH_H_
#define ZIGGY_VIEWS_VIEW_SEARCH_H_

#include <vector>

#include "common/result.h"
#include "views/clustering.h"
#include "views/view.h"
#include "zig/component_table.h"
#include "zig/profile.h"

namespace ziggy {

/// \brief Knobs of the view search (the user parameters of Eq. 5).
struct ViewSearchOptions {
  /// MIN_tight of Eq. 3: minimum pairwise dependency within a view.
  double min_tightness = 0.4;
  /// Maximum number of columns per view (the D of §2.1: views have
  /// "purposely low dimensionality" so users can plot them).
  size_t max_view_size = 4;
  /// Maximum number of views returned (0 = all).
  size_t max_views = 10;
  /// Keep singleton views (a single divergent column is still informative).
  bool allow_singletons = true;
  /// Enforce Eq. 4 disjointness. Disabling floods the output with
  /// overlapping variants; exists for the A3 ablation bench.
  bool enforce_disjoint = true;
  /// Weights of the Zig-Dissimilarity aggregation.
  ZigWeights weights;
};

/// \brief Result of the search: ranked views plus the dendrogram for
/// parameter tuning ("visual support to help setting the parameter").
struct ViewSearchResult {
  std::vector<View> views;      ///< sorted by descending score
  Dendrogram dendrogram{0, {}}; ///< over all columns
  size_t num_candidates = 0;    ///< candidates generated before ranking
};

/// \brief Runs the complete view search over a prepared component table.
///
/// `precomputed_dendrogram` may supply the column dendrogram (it depends
/// only on the table profile, not on the query, so engines compute it once
/// per table and reuse it across queries). Pass nullptr to have it built
/// here.
Result<ViewSearchResult> SearchViews(const TableProfile& profile,
                                     const ComponentTable& components,
                                     const ViewSearchOptions& options = {},
                                     const Dendrogram* precomputed_dendrogram = nullptr);

/// \brief Builds the column dendrogram from the profile's dependency
/// matrix (distance = 1 − S, complete linkage).
Result<Dendrogram> BuildColumnDendrogram(const TableProfile& profile);

/// \brief Computes the tightness (Eq. 2) of a column set: min pairwise
/// dependency; 1.0 for singletons.
double ViewTightness(const TableProfile& profile, const std::vector<size_t>& columns);

}  // namespace ziggy

#endif  // ZIGGY_VIEWS_VIEW_SEARCH_H_
