#include "views/view_search.h"

#include <algorithm>

#include "common/logging.h"
#include "zig/dissimilarity.h"

namespace ziggy {

double ViewTightness(const TableProfile& profile, const std::vector<size_t>& columns) {
  if (columns.size() <= 1) return 1.0;
  double min_dep = 1.0;
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      min_dep = std::min(min_dep, profile.Dependency(columns[i], columns[j]));
    }
  }
  return min_dep;
}

namespace {

// Enumerates all non-empty subsets of `cluster` up to `max_size` columns,
// capped at `cap` subsets. Used by the non-disjoint ablation mode, which
// reproduces the redundancy pathology the paper's Eq. 4 guards against.
void EnumerateSubsets(const std::vector<size_t>& cluster, size_t max_size, size_t cap,
                      std::vector<std::vector<size_t>>* out) {
  const size_t n = cluster.size();
  if (n == 0) return;
  if (n <= 20) {
    const uint64_t limit = uint64_t{1} << n;
    for (uint64_t mask = 1; mask < limit && out->size() < cap; ++mask) {
      if (static_cast<size_t>(__builtin_popcountll(mask)) > max_size) continue;
      std::vector<size_t> subset;
      for (size_t b = 0; b < n; ++b) {
        if (mask & (uint64_t{1} << b)) subset.push_back(cluster[b]);
      }
      out->push_back(std::move(subset));
    }
  } else {
    // Wide cluster: fall back to singletons and adjacent pairs.
    for (size_t i = 0; i < n && out->size() < cap; ++i) {
      out->push_back({cluster[i]});
      if (i + 1 < n) out->push_back({cluster[i], cluster[i + 1]});
    }
  }
}

}  // namespace

Result<Dendrogram> BuildColumnDendrogram(const TableProfile& profile) {
  const size_t m = profile.num_columns();
  std::vector<double> dist(m * m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      dist[i * m + j] = (i == j) ? 0.0 : 1.0 - profile.Dependency(i, j);
    }
  }
  return CompleteLinkage(dist, m);
}

Result<ViewSearchResult> SearchViews(const TableProfile& profile,
                                     const ComponentTable& components,
                                     const ViewSearchOptions& options,
                                     const Dendrogram* precomputed_dendrogram) {
  if (options.min_tightness < 0.0 || options.min_tightness > 1.0) {
    return Status::InvalidArgument("min_tightness must be in [0, 1]");
  }
  if (options.max_view_size == 0) {
    return Status::InvalidArgument("max_view_size must be >= 1");
  }

  // ---- Materialize the dependency graph and cluster it --------------------
  Dendrogram dendro{0, {}};
  if (precomputed_dendrogram != nullptr) {
    if (precomputed_dendrogram->num_leaves() != profile.num_columns()) {
      return Status::InvalidArgument("precomputed dendrogram does not match profile");
    }
    dendro = *precomputed_dendrogram;
  } else {
    ZIGGY_ASSIGN_OR_RETURN(dendro, BuildColumnDendrogram(profile));
  }

  // ---- Candidate generation (Eq. 3 via the complete-linkage cut) ----------
  const double cut_height = 1.0 - options.min_tightness;
  std::vector<std::vector<size_t>> clusters =
      dendro.CutAtHeightWithMaxSize(cut_height, options.max_view_size);

  std::vector<std::vector<size_t>> candidates;
  if (options.enforce_disjoint) {
    candidates = std::move(clusters);
  } else {
    // Ablation mode: every tight subset competes (subsets of a cluster with
    // min pairwise dependency >= MIN_tight inherit the bound).
    constexpr size_t kSubsetCap = 20000;
    for (const auto& c : clusters) {
      EnumerateSubsets(c, options.max_view_size, kSubsetCap, &candidates);
      if (candidates.size() >= kSubsetCap) break;
    }
  }

  // ---- Scoring and ranking (Eq. 1) -----------------------------------------
  ViewSearchResult result{{}, std::move(dendro), candidates.size()};
  for (auto& cols : candidates) {
    if (cols.empty()) continue;
    if (cols.size() == 1 && !options.allow_singletons) continue;
    View v;
    std::sort(cols.begin(), cols.end());
    v.columns = std::move(cols);
    v.tightness = ViewTightness(profile, v.columns);
    if (v.columns.size() > 1 && v.tightness < options.min_tightness) {
      // Defensive: the cut guarantees this, but singleton splits of
      // oversized clusters re-checked anyway.
      continue;
    }
    v.score = ScoreView(components, v.columns, options.weights);
    result.views.push_back(std::move(v));
  }
  std::stable_sort(result.views.begin(), result.views.end(),
                   [](const View& a, const View& b) {
                     return a.score.total > b.score.total;
                   });
  if (options.max_views > 0 && result.views.size() > options.max_views) {
    result.views.resize(options.max_views);
  }
  return result;
}

}  // namespace ziggy
