#include "views/view.h"

#include "common/string_util.h"

namespace ziggy {

std::string View::ColumnNames(const Schema& schema) const {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (size_t c : columns) names.push_back(schema.field(c).name);
  return "{" + Join(names, ", ") + "}";
}

}  // namespace ziggy
