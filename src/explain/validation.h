// View validation: Ziggy's spurious-findings control (paper §3,
// Post-Processing). Each view's component p-values are aggregated with a
// multiple-testing correction; views whose corrected p-value exceeds the
// significance budget are flagged (and optionally dropped).

#ifndef ZIGGY_EXPLAIN_VALIDATION_H_
#define ZIGGY_EXPLAIN_VALIDATION_H_

#include <vector>

#include "stats/tests.h"
#include "views/view.h"
#include "zig/component_table.h"

namespace ziggy {

/// \brief Options of the robustness check.
struct ValidationOptions {
  /// Aggregation scheme: "it retains the lowest value, or it uses more
  /// advanced aggregation schemes such as the Bonferroni correction".
  CorrectionMethod method = CorrectionMethod::kBonferroni;
  /// Views with aggregated p-value above this are statistically fragile.
  double max_p_value = 0.05;
  /// Drop fragile views from the output (vs. merely annotating them).
  bool drop_insignificant = true;
};

/// \brief The p-values of every component covered by a view.
std::vector<double> CollectViewPValues(const View& view,
                                       const ComponentTable& components);

/// \brief Sets `aggregated_p_value` on each view; when
/// `options.drop_insignificant` is set, removes views whose corrected
/// p-value exceeds `options.max_p_value`. Returns the number dropped.
size_t ValidateViews(std::vector<View>* views, const ComponentTable& components,
                     const ValidationOptions& options = {});

}  // namespace ziggy

#endif  // ZIGGY_EXPLAIN_VALIDATION_H_
