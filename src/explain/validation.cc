#include "explain/validation.h"

#include <algorithm>

#include "common/logging.h"

namespace ziggy {

std::vector<double> CollectViewPValues(const View& view,
                                       const ComponentTable& components) {
  std::vector<double> out;
  auto in_view = [&view](size_t col) {
    return std::find(view.columns.begin(), view.columns.end(), col) !=
           view.columns.end();
  };
  for (const auto& c : components.components()) {
    const bool covered = IsPairKind(c.kind) ? (in_view(c.col_a) && in_view(c.col_b))
                                            : in_view(c.col_a);
    if (covered) out.push_back(c.p_value);
  }
  return out;
}

size_t ValidateViews(std::vector<View>* views, const ComponentTable& components,
                     const ValidationOptions& options) {
  ZIGGY_CHECK(views != nullptr);
  for (View& v : *views) {
    const std::vector<double> ps = CollectViewPValues(v, components);
    v.aggregated_p_value = AggregatePValues(ps, options.method);
  }
  if (!options.drop_insignificant) return 0;
  const size_t before = views->size();
  views->erase(std::remove_if(views->begin(), views->end(),
                              [&options](const View& v) {
                                return v.aggregated_p_value > options.max_p_value;
                              }),
               views->end());
  return before - views->size();
}

}  // namespace ziggy
