#include "explain/plot.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "stats/descriptive.h"
#include "storage/types.h"

namespace ziggy {

namespace {

Result<const Column*> NumericColumnOrError(const Table& table,
                                           const std::string& name) {
  ZIGGY_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(name));
  if (!col->is_numeric()) {
    return Status::TypeMismatch("cannot plot categorical column '" + name + "'");
  }
  return col;
}

}  // namespace

Result<std::string> ScatterPlot(const Table& table, const Selection& selection,
                                const std::string& x_column,
                                const std::string& y_column,
                                const PlotOptions& options) {
  if (selection.num_rows() != table.num_rows()) {
    return Status::InvalidArgument("selection does not match table row count");
  }
  if (options.width < 2 || options.height < 2) {
    return Status::InvalidArgument("plot area must be at least 2x2");
  }
  ZIGGY_ASSIGN_OR_RETURN(const Column* xc, NumericColumnOrError(table, x_column));
  ZIGGY_ASSIGN_OR_RETURN(const Column* yc, NumericColumnOrError(table, y_column));
  const auto& xs = xc->numeric_data();
  const auto& ys = yc->numeric_data();

  NumericStats xstats = ComputeNumericStats(xs);
  NumericStats ystats = ComputeNumericStats(ys);
  if (xstats.count == 0 || ystats.count == 0) {
    return Status::FailedPrecondition("nothing to plot: all values are NULL");
  }
  const double x_lo = xstats.min;
  const double y_lo = ystats.min;
  const double x_span = std::max(xstats.max - xstats.min, 1e-300);
  const double y_span = std::max(ystats.max - ystats.min, 1e-300);

  // Raster with priority: inside > outside > blank.
  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  auto cell_of = [&](double v, double lo, double span, size_t extent) {
    const double unit = (v - lo) / span;
    const size_t c = static_cast<size_t>(unit * static_cast<double>(extent - 1) + 0.5);
    return std::min(c, extent - 1);
  };
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (IsNullNumeric(xs[r]) || IsNullNumeric(ys[r])) continue;
    const size_t col = cell_of(xs[r], x_lo, x_span, options.width);
    const size_t row =
        options.height - 1 - cell_of(ys[r], y_lo, y_span, options.height);
    char& pixel = grid[row][col];
    if (selection.Contains(r)) {
      pixel = options.inside_glyph;
    } else if (pixel != options.inside_glyph) {
      pixel = options.outside_glyph;
    }
  }

  std::ostringstream os;
  os << y_column << "\n";
  for (const auto& line : grid) {
    os << (options.draw_axes ? "|" : "") << line << "\n";
  }
  if (options.draw_axes) {
    os << "+" << std::string(options.width, '-') << "> " << x_column << "\n";
  }
  os << "  '" << options.inside_glyph << "' selection (n="
     << selection.Count() << "), '" << options.outside_glyph << "' others;  x in ["
     << FormatDouble(xstats.min) << ", " << FormatDouble(xstats.max) << "], y in ["
     << FormatDouble(ystats.min) << ", " << FormatDouble(ystats.max) << "]\n";
  return os.str();
}

Result<std::string> HistogramPlot(const Table& table, const Selection& selection,
                                  const std::string& column, size_t bins,
                                  size_t bar_width) {
  if (selection.num_rows() != table.num_rows()) {
    return Status::InvalidArgument("selection does not match table row count");
  }
  if (bins < 2 || bar_width < 4) {
    return Status::InvalidArgument("need at least 2 bins and bar width 4");
  }
  ZIGGY_ASSIGN_OR_RETURN(const Column* col, NumericColumnOrError(table, column));
  const auto& data = col->numeric_data();
  NumericStats stats = ComputeNumericStats(data);
  if (stats.count == 0) {
    return Status::FailedPrecondition("nothing to plot: all values are NULL");
  }
  std::vector<int64_t> inside_counts(bins, 0);
  std::vector<int64_t> outside_counts(bins, 0);
  const double span = std::max(stats.max - stats.min, 1e-300);
  for (size_t r = 0; r < data.size(); ++r) {
    if (IsNullNumeric(data[r])) continue;
    size_t b = static_cast<size_t>((data[r] - stats.min) / span *
                                   static_cast<double>(bins));
    b = std::min(b, bins - 1);
    if (selection.Contains(r)) {
      ++inside_counts[b];
    } else {
      ++outside_counts[b];
    }
  }
  int64_t n_in = 0;
  int64_t n_out = 0;
  for (size_t b = 0; b < bins; ++b) {
    n_in += inside_counts[b];
    n_out += outside_counts[b];
  }
  // Bars scaled by within-side share, so the two sides are comparable even
  // when the selection is small.
  double max_share = 1e-12;
  for (size_t b = 0; b < bins; ++b) {
    if (n_in > 0) {
      max_share = std::max(
          max_share, static_cast<double>(inside_counts[b]) / static_cast<double>(n_in));
    }
    if (n_out > 0) {
      max_share = std::max(max_share, static_cast<double>(outside_counts[b]) /
                                          static_cast<double>(n_out));
    }
  }
  std::ostringstream os;
  os << column << "  (left bar '+': selection share, right bar '.': others)\n";
  for (size_t b = 0; b < bins; ++b) {
    const double lo = stats.min + span * static_cast<double>(b) /
                                      static_cast<double>(bins);
    const double share_in =
        n_in > 0 ? static_cast<double>(inside_counts[b]) / static_cast<double>(n_in)
                 : 0.0;
    const double share_out =
        n_out > 0 ? static_cast<double>(outside_counts[b]) / static_cast<double>(n_out)
                  : 0.0;
    const size_t w_in =
        static_cast<size_t>(share_in / max_share * static_cast<double>(bar_width));
    const size_t w_out =
        static_cast<size_t>(share_out / max_share * static_cast<double>(bar_width));
    std::string label = FormatDouble(lo, 3);
    if (label.size() < 10) label.resize(10, ' ');
    os << label << " " << std::string(bar_width - w_in, ' ') << std::string(w_in, '+')
       << "|" << std::string(w_out, '.') << "\n";
  }
  return os.str();
}

}  // namespace ziggy
