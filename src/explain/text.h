// Explanation generation: turns a view's most significant Zig-Components
// into the short natural-language description of paper §2.2/§3, e.g.
//
//   "On the columns population and density, your selection has
//    particularly high values and a low variance."
//
// Implemented, like the original, with handwritten rules and templates.

#ifndef ZIGGY_EXPLAIN_TEXT_H_
#define ZIGGY_EXPLAIN_TEXT_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "views/view.h"
#include "zig/component_table.h"

namespace ziggy {

/// \brief Options of the explanation generator.
struct ExplainOptions {
  /// At most this many components are verbalized in the headline (ordered
  /// by increasing p-value: "Ziggy chooses the Zig-Components associated
  /// with the highest levels of confidence").
  size_t max_headline_components = 3;
  /// Components above this p-value are never verbalized.
  double max_p_value = 0.05;
  /// Append one detail line per verbalized component with the raw numbers
  /// (means, deviations, correlations) so users can verify the claim.
  bool include_details = true;
};

/// \brief A generated explanation.
struct Explanation {
  std::string headline;              ///< one paper-style sentence
  std::vector<std::string> details;  ///< verifiable per-component lines
  double confidence = 0.0;           ///< 1 − view aggregated p-value
};

/// \brief Explains one view from its components.
Explanation ExplainView(const View& view, const ComponentTable& components,
                        const Schema& schema, const ExplainOptions& options = {});

/// \brief Renders one component as a verifiable detail line.
std::string DescribeComponent(const ZigComponent& component, const Schema& schema);

}  // namespace ziggy

#endif  // ZIGGY_EXPLAIN_TEXT_H_
