#include "explain/text.h"

#include <algorithm>

#include "common/string_util.h"

namespace ziggy {

namespace {

// A headline clause for one component, e.g. "particularly high values of
// population". Sign conventions: positive mean-shift = inside larger.
std::string ClauseFor(const ZigComponent& c, const Schema& schema) {
  const std::string a = schema.field(c.col_a).name;
  const std::string b = c.col_b == kNoColumn ? "" : schema.field(c.col_b).name;
  switch (c.kind) {
    case ComponentKind::kMeanShift:
      return (c.effect.value > 0 ? "particularly high values of "
                                 : "particularly low values of ") +
             a;
    case ComponentKind::kDispersionShift:
      return (c.effect.value > 0 ? "a high variance of " : "a low variance of ") + a;
    case ComponentKind::kCorrelationShift:
      return (c.effect.value > 0 ? "a stronger correlation between "
                                 : "a weaker correlation between ") +
             a + " and " + b;
    case ComponentKind::kFrequencyShift:
      if (!c.detail.empty()) {
        return "an over-representation of '" + c.detail + "' in " + a;
      }
      return "an unusual distribution of " + a;
    case ComponentKind::kAssociationShift:
      return (c.effect.value > 0 ? "a stronger association between "
                                 : "a weaker association between ") +
             a + " and " + b;
    case ComponentKind::kContingencyShift:
      return (c.effect.value > 0 ? "a stronger dependency between "
                                 : "a weaker dependency between ") +
             a + " and " + b;
    case ComponentKind::kRankShift:
      return (c.effect.value > 0 ? "systematically higher values of "
                                 : "systematically lower values of ") +
             a;
    case ComponentKind::kDistributionShift:
      if (!c.detail.empty()) {
        return "a concentration of " + a + " in the range " + c.detail;
      }
      return "a markedly different distribution of " + a;
  }
  return "an unusual distribution of " + a;
}

std::string JoinClauses(const std::vector<std::string>& clauses) {
  if (clauses.empty()) return "";
  if (clauses.size() == 1) return clauses[0];
  std::string out;
  for (size_t i = 0; i + 1 < clauses.size(); ++i) {
    if (i > 0) out += ", ";
    out += clauses[i];
  }
  out += " and " + clauses.back();
  return out;
}

}  // namespace

std::string DescribeComponent(const ZigComponent& c, const Schema& schema) {
  const std::string a = schema.field(c.col_a).name;
  const std::string b = c.col_b == kNoColumn ? "" : schema.field(c.col_b).name;
  std::string out = ComponentKindToString(c.kind);
  out += " on ";
  out += a;
  if (!b.empty()) out += " x " + b;
  out += ": ";
  switch (c.kind) {
    case ComponentKind::kMeanShift:
      out += "mean " + FormatDouble(c.inside_value) + " inside vs " +
             FormatDouble(c.outside_value) + " outside (g=" +
             FormatDouble(c.effect.value, 3) + ")";
      break;
    case ComponentKind::kDispersionShift:
      out += "stddev " + FormatDouble(c.inside_value) + " inside vs " +
             FormatDouble(c.outside_value) + " outside (log-ratio=" +
             FormatDouble(c.effect.value, 3) + ")";
      break;
    case ComponentKind::kCorrelationShift:
      out += "r=" + FormatDouble(c.inside_value, 3) + " inside vs " +
             FormatDouble(c.outside_value, 3) + " outside";
      break;
    case ComponentKind::kFrequencyShift:
      out += "total-variation distance " + FormatDouble(c.inside_value, 3);
      if (!c.detail.empty()) out += ", most over-represented: '" + c.detail + "'";
      break;
    case ComponentKind::kAssociationShift:
      out += "eta=" + FormatDouble(c.inside_value, 3) + " inside vs " +
             FormatDouble(c.outside_value, 3) + " outside";
      break;
    case ComponentKind::kContingencyShift:
      out += "V=" + FormatDouble(c.inside_value, 3) + " inside vs " +
             FormatDouble(c.outside_value, 3) + " outside";
      break;
    case ComponentKind::kRankShift:
      out += "P(inside > outside) = " + FormatDouble(c.inside_value, 3) +
             " (Cliff's delta=" + FormatDouble(c.effect.value, 3) + ")";
      break;
    case ComponentKind::kDistributionShift:
      out += "histogram total-variation distance " + FormatDouble(c.inside_value, 3);
      if (!c.detail.empty()) out += ", mass concentrated in " + c.detail;
      break;
  }
  out += ", p=" + FormatDouble(c.p_value, 2);
  out += " [n_in=" + std::to_string(c.inside_n) +
         ", n_out=" + std::to_string(c.outside_n) + "]";
  return out;
}

Explanation ExplainView(const View& view, const ComponentTable& components,
                        const Schema& schema, const ExplainOptions& options) {
  Explanation out;
  out.confidence = 1.0 - view.aggregated_p_value;

  // Gather the view's components, most confident first.
  auto in_view = [&view](size_t col) {
    return std::find(view.columns.begin(), view.columns.end(), col) !=
           view.columns.end();
  };
  std::vector<const ZigComponent*> covered;
  for (const auto& c : components.components()) {
    const bool inside = IsPairKind(c.kind) ? (in_view(c.col_a) && in_view(c.col_b))
                                           : in_view(c.col_a);
    if (inside) covered.push_back(&c);
  }
  std::stable_sort(covered.begin(), covered.end(),
                   [](const ZigComponent* x, const ZigComponent* y) {
                     if (x->p_value != y->p_value) return x->p_value < y->p_value;
                     return x->Magnitude() > y->Magnitude();
                   });

  std::vector<std::string> clauses;
  for (const ZigComponent* c : covered) {
    if (clauses.size() >= options.max_headline_components) break;
    if (c->p_value > options.max_p_value) break;  // sorted: all further worse
    clauses.push_back(ClauseFor(*c, schema));
    if (options.include_details) out.details.push_back(DescribeComponent(*c, schema));
  }

  // Column list for the sentence prefix.
  std::vector<std::string> names;
  names.reserve(view.columns.size());
  for (size_t c : view.columns) names.push_back(schema.field(c).name);
  const std::string cols = JoinClauses(names);

  if (clauses.empty()) {
    out.headline = "On the column" + std::string(names.size() > 1 ? "s " : " ") + cols +
                   ", your selection differs from the rest of the data, but no "
                   "single indicator is individually significant.";
  } else {
    out.headline = "On the column" + std::string(names.size() > 1 ? "s " : " ") + cols +
                   ", your selection has " + JoinClauses(clauses) + ".";
  }
  return out;
}

}  // namespace ziggy
