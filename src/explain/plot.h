// ASCII plotting of characteristic views — the terminal stand-in for the
// scatter plots of paper Figure 1. Selected tuples render as '+', the rest
// as '.', so the "unusual statistical distribution" of the selection is
// visible exactly the way the paper presents it.

#ifndef ZIGGY_EXPLAIN_PLOT_H_
#define ZIGGY_EXPLAIN_PLOT_H_

#include <string>

#include "common/result.h"
#include "storage/selection.h"
#include "storage/table.h"

namespace ziggy {

/// \brief Plot dimensions and glyphs.
struct PlotOptions {
  size_t width = 60;   ///< character columns of the plot area
  size_t height = 20;  ///< character rows of the plot area
  char inside_glyph = '+';
  char outside_glyph = '.';
  /// When both kinds of points land in one cell, the selection wins the
  /// pixel (it is the minority class and the thing being inspected).
  bool draw_axes = true;
};

/// \brief Renders a 2-D scatter plot of two numeric columns with the
/// selection highlighted (one Figure-1 panel). Rows where either value is
/// NULL are skipped.
Result<std::string> ScatterPlot(const Table& table, const Selection& selection,
                                const std::string& x_column,
                                const std::string& y_column,
                                const PlotOptions& options = {});

/// \brief Renders side-by-side inside/outside histograms of one numeric
/// column (the 1-D analogue, for singleton views).
Result<std::string> HistogramPlot(const Table& table, const Selection& selection,
                                  const std::string& column, size_t bins = 24,
                                  size_t bar_width = 40);

}  // namespace ziggy

#endif  // ZIGGY_EXPLAIN_PLOT_H_
