// ZiggyEngine: the public facade of the library — the "tuple description
// engine" the paper's conclusion promises to distribute "as a library, to
// be included into external exploration systems".
//
// Lifecycle: construct once per table (the profile — Ziggy's shared
// statistics — is computed here), then call CharacterizeQuery() for every
// exploration query. Per-query work follows the three-stage pipeline of
// paper Figure 4: Preparation → View Search → Post-Processing.
//
// Ownership: the engine holds its table, profile and dendrogram as shared
// *immutable* state. A stand-alone engine simply owns the only reference;
// the serving layer (src/serve) creates one engine per session over the
// same shared snapshot, so a hundred sessions cost a hundred pointer
// triples, not a hundred profiles. Immutability is what makes concurrent
// sessions safe: nothing behind these pointers is ever written after
// construction.

#ifndef ZIGGY_ENGINE_ZIGGY_ENGINE_H_
#define ZIGGY_ENGINE_ZIGGY_ENGINE_H_

#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "explain/text.h"
#include "explain/validation.h"
#include "query/parser.h"
#include "query/simplify.h"
#include "storage/table.h"
#include "views/view_search.h"
#include "zig/component_builder.h"
#include "zig/profile.h"
#include "zig/selection_sketches.h"

namespace ziggy {

/// \brief All engine knobs, grouped per pipeline stage.
struct ZiggyOptions {
  ProfileOptions profile;
  ComponentBuildOptions build;
  ViewSearchOptions search;
  ValidationOptions validation;
  ExplainOptions explain;
  /// Reuse component tables across textually different but row-identical
  /// queries (keyed by selection fingerprint).
  bool cache_queries = true;
  /// Entry cap of the per-engine component cache (LRU eviction past it;
  /// 0 = unbounded). Long-lived serving sessions previously grew this
  /// cache without bound — one component table per distinct selection.
  size_t max_cached_queries = 64;
};

/// \brief Wall-clock cost of each pipeline stage, in milliseconds.
struct StageTimings {
  double preparation_ms = 0.0;
  double search_ms = 0.0;
  double post_processing_ms = 0.0;

  double total_ms() const { return preparation_ms + search_ms + post_processing_ms; }
};

/// \brief One output view with its explanation.
struct CharacterizedView {
  View view;
  Explanation explanation;
};

/// \brief Where a request's inside sketches came from.
enum class SketchSource {
  kNone,          ///< component cache hit: no sketches were needed at all
  kEngineScan,    ///< the engine's own Preparer (full scan or local delta)
  kCacheExact,    ///< serving-layer cache, exact fingerprint hit
  kCachePatched,  ///< serving-layer cache, XOR-delta patched near miss
  kCoalescedScan  ///< serving-layer batched scan (possibly shared)
};

const char* SketchSourceToString(SketchSource source);

/// \brief Full result of characterizing one query.
struct Characterization {
  std::vector<CharacterizedView> views;  ///< ranked by descending score
  StageTimings timings;
  int64_t inside_count = 0;
  int64_t outside_count = 0;
  size_t num_candidates = 0;   ///< candidate views generated
  size_t views_dropped = 0;    ///< candidates rejected as not significant
  bool cache_hit = false;      ///< preparation served from the query cache
  /// Preparation strategy used. Only meaningful when the engine's own
  /// Preparer ran, i.e. sketch_source == kEngineScan and !cache_hit.
  Preparer::Strategy strategy = Preparer::Strategy::kFullScan;
  /// Rows touched by an incremental update (0 otherwise).
  size_t delta_rows = 0;
  /// Provenance of the inside sketches (serving-layer observability).
  SketchSource sketch_source = SketchSource::kNone;
  /// True when the sketches were computed by a scan shared with other
  /// concurrent requests (only set by the serving layer).
  bool coalesced = false;

  /// Multi-line human-readable report (used by examples and the REPL).
  std::string ToString(const Schema& schema) const;
};

/// \brief Sketches handed to the engine by an external provider (the
/// serving layer's shared cache/batcher), plus their provenance.
struct ProvidedSketches {
  std::shared_ptr<const SelectionSketches> inside;
  SketchSource source = SketchSource::kCoalescedScan;
  size_t delta_rows = 0;  ///< rows patched for kCachePatched
  bool coalesced = false;
};

/// \brief The query characterization engine.
class ZiggyEngine {
 public:
  /// Hook through which a serving layer supplies inside sketches for a
  /// selection (by fingerprint) instead of the engine scanning locally.
  /// Returning nullopt (or a null sketch pointer) falls back to the
  /// engine's own Preparer.
  using SketchProvider = std::function<std::optional<ProvidedSketches>(
      const Selection& selection, uint64_t fingerprint)>;

  /// Builds the engine; computes the shared table profile (one-off cost,
  /// amortized over all subsequent queries).
  static Result<ZiggyEngine> Create(Table table, ZiggyOptions options = {});

  /// Builds an engine over externally owned shared state (the serving
  /// layer's per-session constructor: profile and dendrogram are computed
  /// once per table generation and shared by every session). All three
  /// pointers must be non-null; the state must be internally consistent
  /// (profile computed from `table`, dendrogram from `profile`).
  static Result<ZiggyEngine> CreateShared(
      std::shared_ptr<const Table> table,
      std::shared_ptr<const TableProfile> profile,
      std::shared_ptr<const Dendrogram> dendrogram, ZiggyOptions options = {});

  /// Characterizes the tuples selected by a query string. Accepts a bare
  /// predicate ("crime_rate > 1200 AND population > 5e5") or a full
  /// SELECT ... WHERE statement.
  Result<Characterization> CharacterizeQuery(const std::string& query_text);

  /// Characterizes an explicit selection (for front-ends that already
  /// evaluated the query themselves).
  Result<Characterization> Characterize(const Selection& selection);

  const Table& table() const { return *table_; }
  const TableProfile& profile() const { return *profile_; }
  const std::shared_ptr<const Table>& shared_table() const { return table_; }
  const std::shared_ptr<const TableProfile>& shared_profile() const {
    return profile_;
  }
  const std::shared_ptr<const Dendrogram>& shared_dendrogram() const {
    return dendrogram_;
  }
  const ZiggyOptions& options() const { return options_; }
  /// Options may be tuned between queries (e.g. moving the MIN_tight
  /// slider); the profile is unaffected.
  ZiggyOptions* mutable_options() { return &options_; }

  /// Installs (or clears, with nullptr) the external sketch provider.
  void set_sketch_provider(SketchProvider provider) {
    sketch_provider_ = std::move(provider);
  }

  /// ASCII dendrogram over all columns — the paper's "visual support to
  /// help setting the parameter MIN_tight".
  std::string DendrogramAscii() const;

  /// \name Query-cache statistics.
  /// @{
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }
  size_t cache_evictions() const { return cache_evictions_; }
  size_t cache_entries() const { return component_cache_.size(); }
  void ClearCache() {
    component_cache_.clear();
    cache_order_.clear();
  }
  /// @}

 private:
  ZiggyEngine(std::shared_ptr<const Table> table,
              std::shared_ptr<const TableProfile> profile,
              std::shared_ptr<const Dendrogram> dendrogram, ZiggyOptions options)
      : table_(std::move(table)),
        profile_(std::move(profile)),
        dendrogram_(std::move(dendrogram)),
        options_(std::move(options)) {}

  std::shared_ptr<const Table> table_;
  std::shared_ptr<const TableProfile> profile_;
  // The column dendrogram depends only on the profile; computed once and
  // shared by every query's view search.
  std::shared_ptr<const Dendrogram> dendrogram_;
  ZiggyOptions options_;
  // Stateful preparation: reuses the previous query's sketches when the
  // new selection overlaps it (exploration queries usually do).
  std::unique_ptr<Preparer> preparer_;
  ComponentBuildOptions preparer_options_;
  SketchProvider sketch_provider_;
  // Component cache: fingerprint -> (table, position in the recency list).
  // Bounded by options_.max_cached_queries; cache_order_ front = MRU.
  struct CachedComponents {
    ComponentTable components;
    std::list<uint64_t>::iterator order;
  };
  /// Promotes `it` to MRU and returns its component table; inserts evict
  /// the LRU entry past the cap.
  const ComponentTable* TouchCacheEntry(
      std::unordered_map<uint64_t, CachedComponents>::iterator it);
  const ComponentTable* InsertCacheEntry(uint64_t fingerprint,
                                         ComponentTable components);
  std::unordered_map<uint64_t, CachedComponents> component_cache_;
  std::list<uint64_t> cache_order_;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  size_t cache_evictions_ = 0;
};

}  // namespace ziggy

#endif  // ZIGGY_ENGINE_ZIGGY_ENGINE_H_
