#include "engine/ziggy_engine.h"

#include <chrono>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace ziggy {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

const char* SketchSourceToString(SketchSource source) {
  switch (source) {
    case SketchSource::kNone:
      return "none";
    case SketchSource::kEngineScan:
      return "engine-scan";
    case SketchSource::kCacheExact:
      return "cache-exact";
    case SketchSource::kCachePatched:
      return "cache-patched";
    case SketchSource::kCoalescedScan:
      return "coalesced-scan";
  }
  return "unknown";
}

std::string Characterization::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "Characterized " << inside_count << " selected tuples against "
     << outside_count << " others (" << num_candidates << " candidate views, "
     << views_dropped << " dropped as not significant)\n";
  os << "Stage timings: preparation " << FormatDouble(timings.preparation_ms, 4)
     << " ms, view search " << FormatDouble(timings.search_ms, 4)
     << " ms, post-processing " << FormatDouble(timings.post_processing_ms, 4)
     << " ms\n";
  size_t rank = 1;
  for (const auto& cv : views) {
    os << "\n#" << rank++ << " " << cv.view.ColumnNames(schema)
       << "  score=" << FormatDouble(cv.view.score.total, 3)
       << " tightness=" << FormatDouble(cv.view.tightness, 3)
       << " p=" << FormatDouble(cv.view.aggregated_p_value, 2) << "\n";
    os << "   " << cv.explanation.headline << "\n";
    for (const auto& d : cv.explanation.details) os << "   - " << d << "\n";
  }
  return os.str();
}

Result<ZiggyEngine> ZiggyEngine::Create(Table table, ZiggyOptions options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot characterize an empty table");
  }
  ZIGGY_ASSIGN_OR_RETURN(TableProfile profile,
                         TableProfile::Compute(table, options.profile));
  ZIGGY_ASSIGN_OR_RETURN(Dendrogram dendrogram, BuildColumnDendrogram(profile));
  return ZiggyEngine(std::make_shared<const Table>(std::move(table)),
                     std::make_shared<const TableProfile>(std::move(profile)),
                     std::make_shared<const Dendrogram>(std::move(dendrogram)),
                     std::move(options));
}

Result<ZiggyEngine> ZiggyEngine::CreateShared(
    std::shared_ptr<const Table> table, std::shared_ptr<const TableProfile> profile,
    std::shared_ptr<const Dendrogram> dendrogram, ZiggyOptions options) {
  if (table == nullptr || profile == nullptr || dendrogram == nullptr) {
    return Status::InvalidArgument("shared engine state must be non-null");
  }
  if (table->num_rows() == 0) {
    return Status::InvalidArgument("cannot characterize an empty table");
  }
  if (profile->num_columns() != table->num_columns()) {
    return Status::InvalidArgument("shared profile does not match table shape");
  }
  return ZiggyEngine(std::move(table), std::move(profile), std::move(dendrogram),
                     std::move(options));
}

Result<Characterization> ZiggyEngine::CharacterizeQuery(const std::string& query_text) {
  ZIGGY_ASSIGN_OR_RETURN(ExprPtr predicate, ParseQuery(query_text));
  // Normalization is semantics-preserving; it keeps mechanically assembled
  // refinement predicates (nested ANDs, duplicated atoms) cheap to evaluate.
  predicate = SimplifyPredicate(std::move(predicate));
  ZIGGY_ASSIGN_OR_RETURN(Selection selection, predicate->Evaluate(*table_));
  return Characterize(selection);
}

Result<Characterization> ZiggyEngine::Characterize(const Selection& selection) {
  if (selection.num_rows() != table_->num_rows()) {
    return Status::InvalidArgument("selection does not match table row count");
  }
  Characterization out;

  // ---- Stage 1: Preparation ------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  const uint64_t fp = selection.Fingerprint();
  const ComponentTable* components = nullptr;
  ComponentTable freshly_built;
  if (options_.cache_queries) {
    auto it = component_cache_.find(fp);
    if (it != component_cache_.end()) {
      components = TouchCacheEntry(it);
      out.cache_hit = true;
      ++cache_hits_;
    }
  }
  if (components == nullptr) {
    bool provided = false;
    if (sketch_provider_) {
      // Serving-layer path: sketches come from the shared cache or a
      // coalesced scan. Validation must run first — providers only handle
      // well-formed selections.
      ZIGGY_RETURN_NOT_OK(
          ValidateCharacterizationInput(*table_, *profile_, selection));
      std::optional<ProvidedSketches> supplied = sketch_provider_(selection, fp);
      if (supplied.has_value() && supplied->inside != nullptr) {
        SelectionSketches outside;
        outside.InitShapes(*table_, *profile_);
        outside.DeriveAsComplement(*profile_, *supplied->inside);
        ZIGGY_ASSIGN_OR_RETURN(
            freshly_built,
            BuildComponentsFromSketches(*table_, *profile_, selection,
                                        *supplied->inside, outside, options_.build));
        out.sketch_source = supplied->source;
        out.delta_rows = supplied->delta_rows;
        out.coalesced = supplied->coalesced;
        provided = true;
      }
    }
    if (!provided) {
      // The Preparer is created lazily and recreated when the build options
      // change between queries; it binds to the shared immutable state.
      if (preparer_ == nullptr || !(preparer_options_ == options_.build)) {
        preparer_ = std::make_unique<Preparer>(table_.get(), profile_.get(),
                                               options_.build);
        preparer_options_ = options_.build;
      }
      ZIGGY_ASSIGN_OR_RETURN(freshly_built, preparer_->Prepare(selection));
      out.strategy = preparer_->last_strategy();
      out.delta_rows = preparer_->last_delta_rows();
      out.sketch_source = SketchSource::kEngineScan;
    }
    ++cache_misses_;
    if (options_.cache_queries) {
      components = InsertCacheEntry(fp, std::move(freshly_built));
    } else {
      components = &freshly_built;
    }
  }
  out.timings.preparation_ms = ElapsedMs(t0);
  out.inside_count = components->inside_count();
  out.outside_count = components->outside_count();

  // ---- Stage 2: View search --------------------------------------------------
  t0 = std::chrono::steady_clock::now();
  ZIGGY_ASSIGN_OR_RETURN(
      ViewSearchResult search,
      SearchViews(*profile_, *components, options_.search, dendrogram_.get()));
  out.timings.search_ms = ElapsedMs(t0);
  out.num_candidates = search.num_candidates;

  // ---- Stage 3: Post-processing ----------------------------------------------
  t0 = std::chrono::steady_clock::now();
  out.views_dropped = ValidateViews(&search.views, *components, options_.validation);
  out.views.reserve(search.views.size());
  for (View& v : search.views) {
    CharacterizedView cv;
    cv.explanation = ExplainView(v, *components, table_->schema(), options_.explain);
    cv.view = std::move(v);
    out.views.push_back(std::move(cv));
  }
  out.timings.post_processing_ms = ElapsedMs(t0);
  return out;
}

const ComponentTable* ZiggyEngine::TouchCacheEntry(
    std::unordered_map<uint64_t, CachedComponents>::iterator it) {
  cache_order_.splice(cache_order_.begin(), cache_order_, it->second.order);
  return &it->second.components;
}

const ComponentTable* ZiggyEngine::InsertCacheEntry(uint64_t fingerprint,
                                                    ComponentTable components) {
  // Only reached on a confirmed miss (Characterize looked the fingerprint
  // up under the same lock), so this is always a fresh insertion.
  cache_order_.push_front(fingerprint);
  auto [it, inserted] = component_cache_.emplace(
      fingerprint, CachedComponents{std::move(components), cache_order_.begin()});
  ZIGGY_DCHECK(inserted);
  const size_t cap = options_.max_cached_queries;
  while (cap > 0 && component_cache_.size() > cap) {
    component_cache_.erase(cache_order_.back());
    cache_order_.pop_back();
    ++cache_evictions_;
  }
  return &it->second.components;
}

std::string ZiggyEngine::DendrogramAscii() const {
  return dendrogram_->ToAscii(table_->schema().field_names());
}

}  // namespace ziggy
