#include "engine/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace ziggy {

namespace {

void AppendEscapedCodeUnit(std::string* out, unsigned code_unit) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\u%04x", code_unit);
  *out += buf;
}

// Escapes one Unicode code point as \uXXXX — a surrogate pair for
// anything beyond the basic plane. JSON strings can only carry code
// points above U+FFFF as pairs; emitting a single \uXXXXX-style token
// (or a raw five-hex-digit truncation) is invalid JSON.
void AppendEscapedCodePoint(std::string* out, uint32_t code_point) {
  if (code_point <= 0xFFFF) {
    AppendEscapedCodeUnit(out, code_point);
    return;
  }
  const uint32_t v = code_point - 0x10000;
  AppendEscapedCodeUnit(out, 0xD800 | (v >> 10));
  AppendEscapedCodeUnit(out, 0xDC00 | (v & 0x3FF));
}

// Decodes one UTF-8 sequence starting at s[i]; on success advances i past
// it and returns the code point, on malformed input consumes one byte and
// returns U+FFFD (the replacement character) so the escaped output is
// always valid JSON even for byte garbage (e.g. Latin-1 CSV labels).
uint32_t DecodeUtf8(const std::string& s, size_t* i) {
  const auto byte = [&](size_t k) -> unsigned {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned b0 = byte(*i);
  size_t len = 0;
  uint32_t code = 0;
  if (b0 < 0x80) {
    ++*i;
    return b0;
  } else if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    code = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    code = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    code = b0 & 0x07;
  } else {
    ++*i;
    return 0xFFFD;
  }
  if (*i + len > s.size()) {
    ++*i;
    return 0xFFFD;
  }
  for (size_t k = 1; k < len; ++k) {
    const unsigned bk = byte(*i + k);
    if ((bk & 0xC0) != 0x80) {
      ++*i;
      return 0xFFFD;
    }
    code = (code << 6) | (bk & 0x3F);
  }
  // Reject overlong encodings, surrogate code points, and out-of-range
  // values — none may appear in a JSON escape.
  static constexpr uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (code < kMinForLen[len] || code > 0x10FFFF ||
      (code >= 0xD800 && code <= 0xDFFF)) {
    ++*i;
    return 0xFFFD;
  }
  *i += len;
  return code;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      AppendEscapedCodeUnit(&out, c);
      ++i;
    } else if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
    } else {
      // Non-ASCII: escape the decoded code point so replies are pure
      // ASCII regardless of the input's encoding hygiene — non-BMP
      // labels become surrogate pairs, invalid bytes become U+FFFD.
      AppendEscapedCodePoint(&out, DecodeUtf8(s, &i));
    }
  }
  return out;
}

Result<std::string> JsonUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) return Status::ParseError("truncated escape");
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        const auto read_hex4 = [&]() -> Result<unsigned> {
          if (i + 4 >= s.size()) {
            return Status::ParseError("truncated \\u escape");
          }
          unsigned code = 0;
          for (size_t k = 0; k < 4; ++k) {
            const char h = s[++i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::ParseError("bad hex digit in \\u escape");
            }
          }
          return code;
        };
        ZIGGY_ASSIGN_OR_RETURN(unsigned first, read_hex4());
        uint32_t code = first;
        if (first >= 0xDC00 && first <= 0xDFFF) {
          return Status::ParseError("unpaired low surrogate \\u escape");
        }
        if (first >= 0xD800 && first <= 0xDBFF) {
          // High surrogate: JsonEscape emits non-BMP code points as
          // surrogate pairs, so the matching low half must follow.
          if (i + 2 >= s.size() || s[i + 1] != '\\' || s[i + 2] != 'u') {
            return Status::ParseError("unpaired high surrogate \\u escape");
          }
          i += 2;  // consume "\u"
          ZIGGY_ASSIGN_OR_RETURN(unsigned second, read_hex4());
          if (second < 0xDC00 || second > 0xDFFF) {
            return Status::ParseError("unpaired high surrogate \\u escape");
          }
          code = 0x10000 + ((static_cast<uint32_t>(first) - 0xD800) << 10) +
                 (second - 0xDC00);
        }
        // UTF-8 encode the code point.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (code >> 18));
          out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape: \\") + s[i]);
    }
  }
  return out;
}

namespace {

// JSON has no NaN/Infinity; map them to null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string CharacterizationToJson(const Characterization& result,
                                   const Schema& schema) {
  std::ostringstream os;
  os << "{";
  os << "\"inside_count\":" << result.inside_count;
  os << ",\"outside_count\":" << result.outside_count;
  os << ",\"num_candidates\":" << result.num_candidates;
  os << ",\"views_dropped\":" << result.views_dropped;
  os << ",\"cache_hit\":" << (result.cache_hit ? "true" : "false");
  os << ",\"timings_ms\":{"
     << "\"preparation\":" << JsonNumber(result.timings.preparation_ms)
     << ",\"view_search\":" << JsonNumber(result.timings.search_ms)
     << ",\"post_processing\":" << JsonNumber(result.timings.post_processing_ms) << "}";
  os << ",\"views\":[";
  for (size_t i = 0; i < result.views.size(); ++i) {
    const CharacterizedView& cv = result.views[i];
    if (i > 0) os << ",";
    os << "{\"rank\":" << (i + 1);
    os << ",\"columns\":[";
    for (size_t j = 0; j < cv.view.columns.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << JsonEscape(schema.field(cv.view.columns[j]).name) << "\"";
    }
    os << "]";
    os << ",\"score\":" << JsonNumber(cv.view.score.total);
    os << ",\"score_breakdown\":{";
    bool first = true;
    for (size_t k = 0; k < kNumComponentKinds; ++k) {
      if (cv.view.score.count_per_kind[k] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << ComponentKindToString(static_cast<ComponentKind>(k))
         << "\":" << JsonNumber(cv.view.score.per_kind[k]);
    }
    os << "}";
    os << ",\"tightness\":" << JsonNumber(cv.view.tightness);
    os << ",\"p_value\":" << JsonNumber(cv.view.aggregated_p_value);
    os << ",\"headline\":\"" << JsonEscape(cv.explanation.headline) << "\"";
    os << ",\"details\":[";
    for (size_t j = 0; j < cv.explanation.details.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << JsonEscape(cv.explanation.details[j]) << "\"";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ziggy
