#include "engine/json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ziggy {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// JSON has no NaN/Infinity; map them to null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string CharacterizationToJson(const Characterization& result,
                                   const Schema& schema) {
  std::ostringstream os;
  os << "{";
  os << "\"inside_count\":" << result.inside_count;
  os << ",\"outside_count\":" << result.outside_count;
  os << ",\"num_candidates\":" << result.num_candidates;
  os << ",\"views_dropped\":" << result.views_dropped;
  os << ",\"cache_hit\":" << (result.cache_hit ? "true" : "false");
  os << ",\"timings_ms\":{"
     << "\"preparation\":" << JsonNumber(result.timings.preparation_ms)
     << ",\"view_search\":" << JsonNumber(result.timings.search_ms)
     << ",\"post_processing\":" << JsonNumber(result.timings.post_processing_ms) << "}";
  os << ",\"views\":[";
  for (size_t i = 0; i < result.views.size(); ++i) {
    const CharacterizedView& cv = result.views[i];
    if (i > 0) os << ",";
    os << "{\"rank\":" << (i + 1);
    os << ",\"columns\":[";
    for (size_t j = 0; j < cv.view.columns.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << JsonEscape(schema.field(cv.view.columns[j]).name) << "\"";
    }
    os << "]";
    os << ",\"score\":" << JsonNumber(cv.view.score.total);
    os << ",\"score_breakdown\":{";
    bool first = true;
    for (size_t k = 0; k < kNumComponentKinds; ++k) {
      if (cv.view.score.count_per_kind[k] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << ComponentKindToString(static_cast<ComponentKind>(k))
         << "\":" << JsonNumber(cv.view.score.per_kind[k]);
    }
    os << "}";
    os << ",\"tightness\":" << JsonNumber(cv.view.tightness);
    os << ",\"p_value\":" << JsonNumber(cv.view.aggregated_p_value);
    os << ",\"headline\":\"" << JsonEscape(cv.explanation.headline) << "\"";
    os << ",\"details\":[";
    for (size_t j = 0; j < cv.explanation.details.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << JsonEscape(cv.explanation.details[j]) << "\"";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ziggy
