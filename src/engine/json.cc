#include "engine/json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ziggy {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Result<std::string> JsonUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) return Status::ParseError("truncated escape");
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= s.size()) return Status::ParseError("truncated \\u escape");
        unsigned code = 0;
        for (size_t k = 0; k < 4; ++k) {
          const char h = s[++i];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return Status::ParseError("bad hex digit in \\u escape");
        }
        if (code >= 0xD800 && code <= 0xDFFF) {
          return Status::ParseError("surrogate \\u escapes are not supported");
        }
        // UTF-8 encode the basic-plane code point.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape: \\") + s[i]);
    }
  }
  return out;
}

namespace {

// JSON has no NaN/Infinity; map them to null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string CharacterizationToJson(const Characterization& result,
                                   const Schema& schema) {
  std::ostringstream os;
  os << "{";
  os << "\"inside_count\":" << result.inside_count;
  os << ",\"outside_count\":" << result.outside_count;
  os << ",\"num_candidates\":" << result.num_candidates;
  os << ",\"views_dropped\":" << result.views_dropped;
  os << ",\"cache_hit\":" << (result.cache_hit ? "true" : "false");
  os << ",\"timings_ms\":{"
     << "\"preparation\":" << JsonNumber(result.timings.preparation_ms)
     << ",\"view_search\":" << JsonNumber(result.timings.search_ms)
     << ",\"post_processing\":" << JsonNumber(result.timings.post_processing_ms) << "}";
  os << ",\"views\":[";
  for (size_t i = 0; i < result.views.size(); ++i) {
    const CharacterizedView& cv = result.views[i];
    if (i > 0) os << ",";
    os << "{\"rank\":" << (i + 1);
    os << ",\"columns\":[";
    for (size_t j = 0; j < cv.view.columns.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << JsonEscape(schema.field(cv.view.columns[j]).name) << "\"";
    }
    os << "]";
    os << ",\"score\":" << JsonNumber(cv.view.score.total);
    os << ",\"score_breakdown\":{";
    bool first = true;
    for (size_t k = 0; k < kNumComponentKinds; ++k) {
      if (cv.view.score.count_per_kind[k] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << ComponentKindToString(static_cast<ComponentKind>(k))
         << "\":" << JsonNumber(cv.view.score.per_kind[k]);
    }
    os << "}";
    os << ",\"tightness\":" << JsonNumber(cv.view.tightness);
    os << ",\"p_value\":" << JsonNumber(cv.view.aggregated_p_value);
    os << ",\"headline\":\"" << JsonEscape(cv.explanation.headline) << "\"";
    os << ",\"details\":[";
    for (size_t j = 0; j < cv.explanation.details.size(); ++j) {
      if (j > 0) os << ",";
      os << "\"" << JsonEscape(cv.explanation.details[j]) << "\"";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ziggy
