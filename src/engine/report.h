// Deterministic rendering of a Characterization: everything the pipeline
// computed except wall-clock timings and sketch provenance. One format,
// three consumers — the golden end-to-end test, the daemon's VIEWS verb,
// and the CI e2e driver — so "the daemon serves exactly what the library
// computes" is checkable byte-for-byte against one golden file.

#ifndef ZIGGY_ENGINE_REPORT_H_
#define ZIGGY_ENGINE_REPORT_H_

#include <string>

#include "engine/ziggy_engine.h"

namespace ziggy {

/// \brief Renders counts, candidate totals, and every ranked view (score,
/// tightness, p-value, per-kind breakdown, explanation) in a fixed format
/// with fixed float precision. Timings and cache provenance are excluded:
/// the output is a pure function of the characterization.
std::string RenderCharacterizationReport(const Characterization& result,
                                         const Schema& schema);

}  // namespace ziggy

#endif  // ZIGGY_ENGINE_REPORT_H_
