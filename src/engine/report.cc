#include "engine/report.h"

#include <sstream>

#include "common/string_util.h"
#include "zig/component.h"

namespace ziggy {

std::string RenderCharacterizationReport(const Characterization& result,
                                         const Schema& schema) {
  std::ostringstream os;
  os << "inside=" << result.inside_count << " outside=" << result.outside_count
     << "\n";
  os << "candidates=" << result.num_candidates
     << " dropped=" << result.views_dropped << "\n";
  size_t rank = 1;
  for (const auto& cv : result.views) {
    os << "#" << rank++ << " " << cv.view.ColumnNames(schema) << "\n";
    os << "  score=" << FormatDouble(cv.view.score.total, 10)
       << " tightness=" << FormatDouble(cv.view.tightness, 10)
       << " p=" << FormatDouble(cv.view.aggregated_p_value, 10) << "\n";
    os << "  kinds=";
    for (size_t k = 0; k < kNumComponentKinds; ++k) {
      if (k > 0) os << ",";
      os << FormatDouble(cv.view.score.per_kind[k], 8);
    }
    os << "\n";
    os << "  " << cv.explanation.headline << "\n";
    for (const auto& d : cv.explanation.details) os << "  - " << d << "\n";
  }
  return os.str();
}

}  // namespace ziggy
