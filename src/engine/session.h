// ExplorationSession: the session layer an exploration front-end keeps per
// user. It wraps a ZiggyEngine with:
//
//  * query history (text, row counts, timings),
//  * novelty filtering — a view shown for an earlier query is demoted or
//    suppressed when it reappears unchanged, so every iteration of the
//    explore-inspect-refine loop surfaces something *new* ("the users can
//    interpret these explanations as hints for further exploration"), and
//  * session statistics (cache behaviour, per-stage time totals).

#ifndef ZIGGY_ENGINE_SESSION_H_
#define ZIGGY_ENGINE_SESSION_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "engine/ziggy_engine.h"

namespace ziggy {

/// \brief Options of the session layer.
struct SessionOptions {
  /// What to do with a view whose column set was already shown:
  /// demote = move it after the novel views; suppress = drop it.
  enum class NoveltyPolicy { kOff, kDemote, kSuppress };
  NoveltyPolicy novelty = NoveltyPolicy::kDemote;
  /// Number of history entries retained (0 = unbounded).
  size_t max_history = 0;
};

/// \brief One history entry.
struct SessionEntry {
  std::string query_text;
  int64_t inside_count = 0;
  double total_ms = 0.0;
  size_t views_returned = 0;
  bool ok = false;
  std::string error;  ///< set when ok is false
};

/// \brief Aggregate session statistics.
struct SessionStats {
  size_t queries_run = 0;
  size_t queries_failed = 0;
  double preparation_ms = 0.0;
  double search_ms = 0.0;
  double post_processing_ms = 0.0;
  size_t views_shown = 0;
  size_t views_demoted = 0;
  size_t views_suppressed = 0;
};

/// \brief A per-user exploration session over one table.
class ExplorationSession {
 public:
  /// The engine is owned by the session.
  ExplorationSession(ZiggyEngine engine, SessionOptions options = {});

  /// Runs a query; applies the novelty policy; records history. Each view
  /// in the returned Characterization is annotated as novel or repeated
  /// via IsNovel() below (keyed by column set).
  Result<Characterization> Explore(const std::string& query_text);

  /// True if this exact column set has NOT been shown earlier in the
  /// session (state as of the most recent Explore call).
  bool WasShownBefore(const std::vector<size_t>& columns) const;

  const std::vector<SessionEntry>& history() const { return history_; }
  const SessionStats& stats() const { return stats_; }

  ZiggyEngine& engine() { return engine_; }
  const ZiggyEngine& engine() const { return engine_; }

  /// Forgets shown-view state and history (engine caches are kept).
  void Reset();

 private:
  uint64_t ViewKey(const std::vector<size_t>& columns) const;

  ZiggyEngine engine_;
  SessionOptions options_;
  std::vector<SessionEntry> history_;
  SessionStats stats_;
  std::set<uint64_t> shown_views_;
};

}  // namespace ziggy

#endif  // ZIGGY_ENGINE_SESSION_H_
