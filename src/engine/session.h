// ExplorationSession: the session layer an exploration front-end keeps per
// user. It wraps a ZiggyEngine with:
//
//  * query history (text, row counts, timings),
//  * novelty filtering — a view shown for an earlier query is demoted or
//    suppressed when it reappears unchanged, so every iteration of the
//    explore-inspect-refine loop surfaces something *new* ("the users can
//    interpret these explanations as hints for further exploration"), and
//  * session statistics (cache behaviour, per-stage time totals).
//
// The novelty logic lives in NoveltyTracker, a small free-standing class,
// because two session types need it: the library's ExplorationSession
// (which owns its engine) and the serving layer's server-side sessions
// (which share one engine state across many users and are rebuilt on table
// appends — the tracker survives the rebuild so users never see repeats
// across generations).

#ifndef ZIGGY_ENGINE_SESSION_H_
#define ZIGGY_ENGINE_SESSION_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "engine/ziggy_engine.h"

namespace ziggy {

/// \brief Options of the session layer.
struct SessionOptions {
  /// What to do with a view whose column set was already shown:
  /// demote = move it after the novel views; suppress = drop it.
  enum class NoveltyPolicy { kOff, kDemote, kSuppress };
  NoveltyPolicy novelty = NoveltyPolicy::kDemote;
  /// Number of history entries retained (0 = unbounded).
  size_t max_history = 0;
};

/// \brief One history entry.
struct SessionEntry {
  std::string query_text;
  int64_t inside_count = 0;
  double total_ms = 0.0;
  size_t views_returned = 0;
  bool ok = false;
  std::string error;  ///< set when ok is false
};

/// \brief Aggregate session statistics.
struct SessionStats {
  size_t queries_run = 0;
  size_t queries_failed = 0;
  double preparation_ms = 0.0;
  double search_ms = 0.0;
  double post_processing_ms = 0.0;
  size_t views_shown = 0;
  size_t views_demoted = 0;
  size_t views_suppressed = 0;
};

/// \brief Remembers which view column sets a user has already seen and
/// applies the novelty policy to fresh results. Not thread-safe; callers
/// synchronize per session.
class NoveltyTracker {
 public:
  struct Outcome {
    size_t demoted = 0;
    size_t suppressed = 0;
  };

  /// Reorders/prunes `views` per the policy (repeats after novel views for
  /// kDemote, removed for kSuppress), then records every surviving view as
  /// shown.
  Outcome ApplyAndObserve(SessionOptions::NoveltyPolicy policy,
                          std::vector<CharacterizedView>* views);

  /// True if this exact column set was recorded by an earlier
  /// ApplyAndObserve.
  bool WasShownBefore(const std::vector<size_t>& columns) const;

  void Clear() { shown_.clear(); }
  size_t num_shown() const { return shown_.size(); }

 private:
  static uint64_t ViewKey(const std::vector<size_t>& columns);

  std::set<uint64_t> shown_;
};

/// \brief Shared per-result bookkeeping of every session flavor
/// (ExplorationSession and the serving layer's server-side sessions):
/// accumulates stage timings into `stats`, applies the novelty policy via
/// `novelty`, and updates the shown/demoted/suppressed counters.
void ObserveCharacterization(Characterization* result,
                             SessionOptions::NoveltyPolicy policy,
                             NoveltyTracker* novelty, SessionStats* stats);

/// \brief A per-user exploration session over one table.
class ExplorationSession {
 public:
  /// The engine is owned by the session.
  ExplorationSession(ZiggyEngine engine, SessionOptions options = {});

  /// Runs a query; applies the novelty policy; records history. Each view
  /// in the returned Characterization is annotated as novel or repeated
  /// via IsNovel() below (keyed by column set).
  Result<Characterization> Explore(const std::string& query_text);

  /// True if this exact column set has NOT been shown earlier in the
  /// session (state as of the most recent Explore call).
  bool WasShownBefore(const std::vector<size_t>& columns) const;

  const std::vector<SessionEntry>& history() const { return history_; }
  const SessionStats& stats() const { return stats_; }

  ZiggyEngine& engine() { return engine_; }
  const ZiggyEngine& engine() const { return engine_; }

  /// Forgets shown-view state and history (engine caches are kept).
  void Reset();

 private:
  ZiggyEngine engine_;
  SessionOptions options_;
  std::vector<SessionEntry> history_;
  SessionStats stats_;
  NoveltyTracker novelty_;
};

}  // namespace ziggy

#endif  // ZIGGY_ENGINE_SESSION_H_
