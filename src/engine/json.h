// JSON rendering of characterization results, for exploration front-ends
// that consume Ziggy as a service (the paper's long-term goal: "distribute
// our tuple description engine as a library, to be included into external
// exploration systems").

#ifndef ZIGGY_ENGINE_JSON_H_
#define ZIGGY_ENGINE_JSON_H_

#include <string>
#include <string_view>

#include "engine/ziggy_engine.h"

namespace ziggy {

/// \brief Escapes a string for embedding in a JSON document. Output is
/// pure ASCII: control characters and all non-ASCII input are emitted as
/// \uXXXX escapes — code points beyond the basic plane (emoji, rare CJK)
/// as surrogate pairs, which is the only way JSON can carry them; bytes
/// that are not valid UTF-8 become U+FFFD so the result is always valid
/// JSON.
std::string JsonEscape(const std::string& s);

/// \brief Inverse of JsonEscape: decodes backslash escapes (\" \\ \/ \n
/// \r \t \b \f and \uXXXX, including surrogate *pairs* for non-BMP code
/// points — lone surrogates are rejected). The input is the string
/// *body*, without the surrounding quotes. Errors on truncated or
/// unknown escapes.
Result<std::string> JsonUnescape(std::string_view s);

/// \brief Serializes a Characterization as a self-contained JSON object:
/// counts, stage timings, and one entry per view with columns, score,
/// per-kind score breakdown, tightness, p-value, headline and details.
std::string CharacterizationToJson(const Characterization& result,
                                   const Schema& schema);

}  // namespace ziggy

#endif  // ZIGGY_ENGINE_JSON_H_
