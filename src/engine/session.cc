#include "engine/session.h"

#include <algorithm>

namespace ziggy {

ExplorationSession::ExplorationSession(ZiggyEngine engine, SessionOptions options)
    : engine_(std::move(engine)), options_(options) {}

uint64_t ExplorationSession::ViewKey(const std::vector<size_t>& columns) const {
  // FNV-1a over the sorted column ids (views always store them sorted).
  uint64_t h = 1469598103934665603ull;
  for (size_t c : columns) {
    for (size_t byte = 0; byte < sizeof(size_t); ++byte) {
      h ^= (c >> (8 * byte)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool ExplorationSession::WasShownBefore(const std::vector<size_t>& columns) const {
  return shown_views_.count(ViewKey(columns)) > 0;
}

Result<Characterization> ExplorationSession::Explore(const std::string& query_text) {
  Result<Characterization> result = engine_.CharacterizeQuery(query_text);

  SessionEntry entry;
  entry.query_text = query_text;
  entry.ok = result.ok();
  if (!result.ok()) {
    entry.error = result.status().ToString();
    ++stats_.queries_failed;
  }
  ++stats_.queries_run;

  if (result.ok()) {
    Characterization& c = result.ValueOrDie();
    entry.inside_count = c.inside_count;
    entry.total_ms = c.timings.total_ms();
    stats_.preparation_ms += c.timings.preparation_ms;
    stats_.search_ms += c.timings.search_ms;
    stats_.post_processing_ms += c.timings.post_processing_ms;

    // Novelty pass: stable-partition novel views first (kDemote) or drop
    // repeats entirely (kSuppress).
    if (options_.novelty != SessionOptions::NoveltyPolicy::kOff) {
      auto repeated = [this](const CharacterizedView& cv) {
        return WasShownBefore(cv.view.columns);
      };
      const size_t before = c.views.size();
      if (options_.novelty == SessionOptions::NoveltyPolicy::kSuppress) {
        c.views.erase(std::remove_if(c.views.begin(), c.views.end(), repeated),
                      c.views.end());
        stats_.views_suppressed += before - c.views.size();
      } else {
        auto mid = std::stable_partition(
            c.views.begin(), c.views.end(),
            [&repeated](const CharacterizedView& cv) { return !repeated(cv); });
        stats_.views_demoted +=
            static_cast<size_t>(std::distance(mid, c.views.end()));
      }
    }
    for (const auto& cv : c.views) shown_views_.insert(ViewKey(cv.view.columns));
    stats_.views_shown += c.views.size();
    entry.views_returned = c.views.size();
  }

  history_.push_back(std::move(entry));
  if (options_.max_history > 0 && history_.size() > options_.max_history) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<int64_t>(history_.size() -
                                                           options_.max_history));
  }
  return result;
}

void ExplorationSession::Reset() {
  history_.clear();
  shown_views_.clear();
  stats_ = SessionStats{};
}

}  // namespace ziggy
