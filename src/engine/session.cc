#include "engine/session.h"

#include <algorithm>

namespace ziggy {

uint64_t NoveltyTracker::ViewKey(const std::vector<size_t>& columns) {
  // FNV-1a over the sorted column ids (views always store them sorted).
  uint64_t h = 1469598103934665603ull;
  for (size_t c : columns) {
    for (size_t byte = 0; byte < sizeof(size_t); ++byte) {
      h ^= (c >> (8 * byte)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool NoveltyTracker::WasShownBefore(const std::vector<size_t>& columns) const {
  return shown_.count(ViewKey(columns)) > 0;
}

NoveltyTracker::Outcome NoveltyTracker::ApplyAndObserve(
    SessionOptions::NoveltyPolicy policy, std::vector<CharacterizedView>* views) {
  Outcome outcome;
  if (policy != SessionOptions::NoveltyPolicy::kOff) {
    auto repeated = [this](const CharacterizedView& cv) {
      return WasShownBefore(cv.view.columns);
    };
    const size_t before = views->size();
    if (policy == SessionOptions::NoveltyPolicy::kSuppress) {
      views->erase(std::remove_if(views->begin(), views->end(), repeated),
                   views->end());
      outcome.suppressed = before - views->size();
    } else {
      // Stable-partition novel views first; repeats keep their relative
      // order after them.
      auto mid = std::stable_partition(
          views->begin(), views->end(),
          [&repeated](const CharacterizedView& cv) { return !repeated(cv); });
      outcome.demoted = static_cast<size_t>(std::distance(mid, views->end()));
    }
  }
  for (const auto& cv : *views) shown_.insert(ViewKey(cv.view.columns));
  return outcome;
}

void ObserveCharacterization(Characterization* result,
                             SessionOptions::NoveltyPolicy policy,
                             NoveltyTracker* novelty, SessionStats* stats) {
  stats->preparation_ms += result->timings.preparation_ms;
  stats->search_ms += result->timings.search_ms;
  stats->post_processing_ms += result->timings.post_processing_ms;
  const NoveltyTracker::Outcome outcome =
      novelty->ApplyAndObserve(policy, &result->views);
  stats->views_demoted += outcome.demoted;
  stats->views_suppressed += outcome.suppressed;
  stats->views_shown += result->views.size();
}

ExplorationSession::ExplorationSession(ZiggyEngine engine, SessionOptions options)
    : engine_(std::move(engine)), options_(options) {}

bool ExplorationSession::WasShownBefore(const std::vector<size_t>& columns) const {
  return novelty_.WasShownBefore(columns);
}

Result<Characterization> ExplorationSession::Explore(const std::string& query_text) {
  Result<Characterization> result = engine_.CharacterizeQuery(query_text);

  SessionEntry entry;
  entry.query_text = query_text;
  entry.ok = result.ok();
  if (!result.ok()) {
    entry.error = result.status().ToString();
    ++stats_.queries_failed;
  }
  ++stats_.queries_run;

  if (result.ok()) {
    Characterization& c = result.ValueOrDie();
    entry.inside_count = c.inside_count;
    entry.total_ms = c.timings.total_ms();
    ObserveCharacterization(&c, options_.novelty, &novelty_, &stats_);
    entry.views_returned = c.views.size();
  }

  history_.push_back(std::move(entry));
  if (options_.max_history > 0 && history_.size() > options_.max_history) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<int64_t>(history_.size() -
                                                           options_.max_history));
  }
  return result;
}

void ExplorationSession::Reset() {
  history_.clear();
  novelty_.Clear();
  stats_ = SessionStats{};
}

}  // namespace ziggy
