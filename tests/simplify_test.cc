// Tests for the predicate simplifier (query/simplify.h). Every rewrite is
// checked for semantic preservation by evaluating original and simplified
// forms over a table with NULLs (the NULL rows are where naive rewrites
// would go wrong).

#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/simplify.h"

namespace ziggy {
namespace {

Table MakeTable() {
  return Table::FromColumns(
             {Column::FromNumeric("x", {1, 2, 3, 4, 5, NullNumeric()}),
              Column::FromNumeric("y", {10, 20, 30, 40, 50, 60}),
              Column::FromStrings("s", {"a", "b", "a", "b", "", "c"})})
      .ValueOrDie();
}

// Simplifies and asserts semantics are unchanged; returns the rendering.
std::string SimplifyChecked(const std::string& predicate) {
  Table t = MakeTable();
  ExprPtr original = ParsePredicate(predicate).ValueOrDie();
  Selection before = original->Evaluate(t).ValueOrDie();
  ExprPtr simplified = SimplifyPredicate(std::move(original));
  Selection after = simplified->Evaluate(t).ValueOrDie();
  EXPECT_EQ(before.ToIndices(), after.ToIndices()) << predicate;
  // The simplified form must itself be parseable (round-trippable).
  ExprPtr reparsed = ParsePredicate(simplified->ToString()).ValueOrDie();
  EXPECT_EQ(reparsed->Evaluate(t).ValueOrDie().ToIndices(), after.ToIndices());
  return simplified->ToString();
}

TEST(SimplifyTest, DoubleNegationCancels) {
  const std::string out = SimplifyChecked("NOT (NOT x > 2)");
  EXPECT_EQ(out.find("NOT"), std::string::npos) << out;
}

TEST(SimplifyTest, QuadrupleNegationCancels) {
  const std::string out = SimplifyChecked("NOT (NOT (NOT (NOT s = 'a')))");
  EXPECT_EQ(out.find("NOT"), std::string::npos) << out;
}

TEST(SimplifyTest, SingleNegationKept) {
  // NOT over a comparison must NOT be rewritten to a flipped operator —
  // NULL rows differ. SimplifyChecked verifies semantics on the NULL row.
  const std::string out = SimplifyChecked("NOT x > 2");
  EXPECT_NE(out.find("NOT"), std::string::npos);
}

TEST(SimplifyTest, NestedConjunctionsFlatten) {
  const std::string out = SimplifyChecked("x > 1 AND (y > 15 AND s = 'a')");
  // Flat conjunction: no nested parenthesized AND of ANDs; rendering shows
  // three atoms joined by two ANDs at one level.
  EXPECT_EQ(std::count(out.begin(), out.end(), '('), 3);  // one per atom wrap
}

TEST(SimplifyTest, DuplicateAtomsDeduped) {
  Table t = MakeTable();
  ExprPtr e = ParsePredicate("x > 2 AND x > 2 AND x > 2").ValueOrDie();
  ExprPtr s = SimplifyPredicate(std::move(e));
  // A single atom remains: rendering contains exactly one "x > 2".
  const std::string out = s->ToString();
  size_t count = 0;
  size_t pos = 0;
  while ((pos = out.find("x > 2", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SimplifyTest, RangePairBecomesBetween) {
  const std::string out = SimplifyChecked("x >= 2 AND x <= 4");
  EXPECT_NE(out.find("BETWEEN"), std::string::npos) << out;
}

TEST(SimplifyTest, RangePairWithOtherAtomsStillMerges) {
  const std::string out = SimplifyChecked("s = 'a' AND x >= 1 AND y > 5 AND x <= 3");
  EXPECT_NE(out.find("BETWEEN"), std::string::npos) << out;
  EXPECT_NE(out.find("s = 'a'"), std::string::npos);
}

TEST(SimplifyTest, InvertedRangeNotMerged) {
  // lo > hi would change semantics (empty range vs conjunction that is
  // already empty — same result, but keep the conservative rule testable).
  const std::string out = SimplifyChecked("x >= 4 AND x <= 2");
  EXPECT_EQ(out.find("BETWEEN"), std::string::npos) << out;
}

TEST(SimplifyTest, DisjunctionFlattensAndDedupes) {
  const std::string out = SimplifyChecked("x > 4 OR (x > 4 OR s = 'c')");
  size_t count = 0;
  size_t pos = 0;
  while ((pos = out.find("x > 4", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SimplifyTest, MixedAndOrKeepsStructure) {
  // AND inside OR must not be flattened across kinds.
  const std::string out = SimplifyChecked("(x > 1 AND y > 15) OR s = 'c'");
  EXPECT_NE(out.find("AND"), std::string::npos);
  EXPECT_NE(out.find("OR"), std::string::npos);
}

TEST(SimplifyTest, LeafPredicatesUntouched) {
  for (const std::string p :
       {"x > 3", "s LIKE 'a%'", "x IS NULL", "x IN (1, 2)", "x BETWEEN 1 AND 3"}) {
    Table t = MakeTable();
    ExprPtr before = ParsePredicate(p).ValueOrDie();
    const std::string rendered = before->ToString();
    ExprPtr after = SimplifyPredicate(std::move(before));
    EXPECT_EQ(after->ToString(), rendered);
  }
}

TEST(SimplifyTest, NullInputPassesThrough) {
  EXPECT_EQ(SimplifyPredicate(nullptr), nullptr);
}

TEST(SimplifyTest, PreservesSemanticsOnRandomishCompositions) {
  for (const std::string p : {
           "NOT (NOT (x > 1 AND (x > 1 AND y <= 40)))",
           "(x >= 2 AND (x <= 4 AND s != 'b')) AND y > 0",
           "s = 'a' OR (s = 'a' OR (s = 'b' OR s = 'b'))",
           "NOT (x >= 2 AND x <= 4)",
           "x IS NOT NULL AND (x >= 0 AND x <= 100)",
       }) {
    SimplifyChecked(p);
  }
}

TEST(CloneTest, DeepCopyIsIndependentAndEquivalent) {
  Table t = MakeTable();
  ExprPtr original =
      ParsePredicate("NOT (x > 1 AND s IN ('a', 'b')) OR y BETWEEN 15 AND 45")
          .ValueOrDie();
  ExprPtr copy = original->Clone();
  EXPECT_EQ(copy->ToString(), original->ToString());
  EXPECT_EQ(copy->Evaluate(t).ValueOrDie().ToIndices(),
            original->Evaluate(t).ValueOrDie().ToIndices());
  original.reset();  // copy must survive the original
  EXPECT_GT(copy->Evaluate(t).ValueOrDie().Count(), 0u);
}

}  // namespace
}  // namespace ziggy
