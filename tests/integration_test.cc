// Integration tests: the full pipeline on the paper's use-case datasets.
// The key acceptance criterion is Figure-1-style recovery: on the crime
// analogue, the top views must cover the planted themes, grouped correctly.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/subspace_search.h"
#include "data/synthetic.h"
#include "engine/ziggy_engine.h"
#include "storage/csv.h"

namespace ziggy {
namespace {

// Returns the fraction of planted views that are "recovered": some output
// view contains at least half of the planted view's columns and nothing
// contradicts the grouping.
double RecoveryRate(const std::vector<std::vector<size_t>>& planted,
                    const std::vector<CharacterizedView>& found) {
  size_t recovered = 0;
  for (const auto& gt : planted) {
    for (const auto& cv : found) {
      size_t overlap = 0;
      for (size_t c : gt) {
        if (std::find(cv.view.columns.begin(), cv.view.columns.end(), c) !=
            cv.view.columns.end()) {
          ++overlap;
        }
      }
      if (2 * overlap >= gt.size()) {
        ++recovered;
        break;
      }
    }
  }
  return planted.empty() ? 1.0
                         : static_cast<double>(recovered) /
                               static_cast<double>(planted.size());
}

TEST(IntegrationTest, CrimeRecoversAllPlantedThemes) {
  SyntheticDataset ds = MakeCrimeDataset().ValueOrDie();
  const auto planted_views = ds.planted_views;
  const std::string query = ds.selection_predicate;
  ZiggyOptions opts;
  opts.search.min_tightness = 0.3;
  opts.search.max_views = 12;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(query).ValueOrDie();
  ASSERT_GE(r.views.size(), 4u);
  EXPECT_GE(RecoveryRate(planted_views, r.views), 0.8);
}

TEST(IntegrationTest, CrimeTopViewsAreThePlantedThemesNotNoise) {
  SyntheticDataset ds = MakeCrimeDataset().ValueOrDie();
  const std::string query = ds.selection_predicate;
  std::set<size_t> planted_cols;
  for (const auto& v : ds.planted_views) planted_cols.insert(v.begin(), v.end());
  // Driver column is trivially characteristic too.
  planted_cols.insert(0);
  ZiggyOptions opts;
  opts.search.min_tightness = 0.3;
  opts.search.max_views = 5;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(query).ValueOrDie();
  // Every column of the top-5 views must be planted (no noise columns).
  for (const auto& cv : r.views) {
    for (size_t c : cv.view.columns) {
      EXPECT_TRUE(planted_cols.count(c) > 0)
          << "noise column " << engine.table().schema().field(c).name
          << " in a top view";
    }
  }
}

TEST(IntegrationTest, CrimeExplanationsMatchPlantedDirections) {
  SyntheticDataset ds = MakeCrimeDataset().ValueOrDie();
  const std::string query = ds.selection_predicate;
  ZiggyOptions opts;
  opts.search.min_tightness = 0.3;
  opts.search.max_views = 12;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(query).ValueOrDie();
  // population_* planted +1.8 sd; education_* planted -1.4 sd.
  bool pop_checked = false;
  bool edu_checked = false;
  for (const auto& cv : r.views) {
    const std::string names = cv.view.ColumnNames(engine.table().schema());
    if (names.find("population") != std::string::npos) {
      EXPECT_NE(cv.explanation.headline.find("particularly high values"),
                std::string::npos)
          << cv.explanation.headline;
      pop_checked = true;
    }
    if (names.find("education") != std::string::npos) {
      EXPECT_NE(cv.explanation.headline.find("particularly low values"),
                std::string::npos)
          << cv.explanation.headline;
      edu_checked = true;
    }
  }
  EXPECT_TRUE(pop_checked);
  EXPECT_TRUE(edu_checked);
}

TEST(IntegrationTest, BoxOfficeEndToEndWithWorkload) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  Rng rng(8);
  auto workload = GenerateWorkload(ds.table, 10, &rng);
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  for (const auto& q : workload) {
    Result<Characterization> r = engine.CharacterizeQuery(q);
    // Random bands can occasionally select everything; those are the only
    // admissible failures.
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsFailedPrecondition()) << q << ": " << r.status();
      continue;
    }
    for (const auto& cv : r->views) {
      EXPECT_FALSE(cv.explanation.headline.empty());
      EXPECT_GE(cv.view.score.total, 0.0);
      EXPECT_LE(cv.view.score.total, 1.0);
    }
  }
}

TEST(IntegrationTest, ZiggyAgreesWithExhaustiveOnStrongestSignal) {
  // On a small table, the column Ziggy ranks on top must also be the
  // exhaustive KL search's top singleton (both should find the dominant
  // divergence).
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  Table table_copy = ds.table;
  const std::string query = ds.selection_predicate;
  ZiggyOptions opts;
  opts.search.max_views = 3;
  // Exclude the driver column trivially selected by the query itself from
  // the comparison by scoring with weights on mean only.
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(query).ValueOrDie();
  ASSERT_FALSE(r.views.empty());

  ExprPtr e = ParseQuery(query).ValueOrDie();
  Selection sel = e->Evaluate(table_copy).ValueOrDie();
  GaussianKlScorer scorer(table_copy, sel);
  auto exhaustive = ExhaustiveSubspaceSearch(scorer, 1, 3);
  ASSERT_FALSE(exhaustive.empty());
  // The KL-top column must appear in Ziggy's top-3 views.
  const size_t kl_top = exhaustive[0].columns[0];
  bool covered = false;
  for (const auto& cv : r.views) {
    covered |= std::find(cv.view.columns.begin(), cv.view.columns.end(), kl_top) !=
               cv.view.columns.end();
  }
  EXPECT_TRUE(covered);
}

TEST(IntegrationTest, CsvRoundTripThroughEngine) {
  // Export a synthetic table to CSV, re-import, characterize: results must
  // match the in-memory path (CSV is lossless for doubles).
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  const std::string query = ds.selection_predicate;
  const std::string csv = WriteCsvString(ds.table);
  Table reloaded = ReadCsvString(csv).ValueOrDie();
  ZiggyEngine e1 = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  ZiggyEngine e2 = ZiggyEngine::Create(std::move(reloaded)).ValueOrDie();
  Characterization r1 = e1.CharacterizeQuery(query).ValueOrDie();
  Characterization r2 = e2.CharacterizeQuery(query).ValueOrDie();
  ASSERT_EQ(r1.views.size(), r2.views.size());
  for (size_t i = 0; i < r1.views.size(); ++i) {
    EXPECT_EQ(r1.views[i].view.columns, r2.views[i].view.columns);
    EXPECT_NEAR(r1.views[i].view.score.total, r2.views[i].view.score.total, 1e-9);
  }
}

}  // namespace
}  // namespace ziggy
