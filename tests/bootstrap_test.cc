// Tests for stats/bootstrap.h.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/bootstrap.h"

namespace ziggy {
namespace {

std::vector<double> Sample(Rng* rng, size_t n, double mean, double sd) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Normal(mean, sd);
  return v;
}

TEST(BootstrapTest, IntervalContainsPointEstimate) {
  Rng rng(1);
  auto inside = Sample(&rng, 150, 2.0, 1.0);
  auto outside = Sample(&rng, 400, 0.0, 1.0);
  BootstrapInterval ci =
      BootstrapTwoSample(inside, outside, MeanDifferenceStatistic);
  ASSERT_TRUE(ci.defined);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(BootstrapTest, DetectsRealMeanDifference) {
  Rng rng(2);
  auto inside = Sample(&rng, 200, 2.0, 1.0);
  auto outside = Sample(&rng, 500, 0.0, 1.0);
  BootstrapInterval ci =
      BootstrapTwoSample(inside, outside, MeanDifferenceStatistic);
  ASSERT_TRUE(ci.defined);
  EXPECT_TRUE(ci.Excludes(0.0));
  EXPECT_NEAR(ci.point, 2.0, 0.3);
}

TEST(BootstrapTest, NullDifferenceIntervalCoversZero) {
  Rng rng(3);
  auto inside = Sample(&rng, 200, 1.0, 1.0);
  auto outside = Sample(&rng, 500, 1.0, 1.0);
  BootstrapInterval ci =
      BootstrapTwoSample(inside, outside, MeanDifferenceStatistic);
  ASSERT_TRUE(ci.defined);
  EXPECT_FALSE(ci.Excludes(0.0));
}

TEST(BootstrapTest, MedianStatisticRobustToOutliers) {
  Rng rng(4);
  auto inside = Sample(&rng, 200, 1.0, 0.5);
  auto outside = Sample(&rng, 400, 0.0, 0.5);
  // Poison the inside mean with extreme outliers; the median CI must still
  // sit near +1.
  inside.push_back(-1e6);
  inside.push_back(-1e6);
  BootstrapInterval ci =
      BootstrapTwoSample(inside, outside, MedianDifferenceStatistic);
  ASSERT_TRUE(ci.defined);
  EXPECT_NEAR(ci.point, 1.0, 0.3);
  EXPECT_TRUE(ci.Excludes(0.0));
}

TEST(BootstrapTest, LogStdRatioDetectsDispersion) {
  Rng rng(5);
  auto inside = Sample(&rng, 300, 0.0, 3.0);
  auto outside = Sample(&rng, 300, 0.0, 1.0);
  BootstrapInterval ci = BootstrapTwoSample(inside, outside, LogStdRatioStatistic);
  ASSERT_TRUE(ci.defined);
  EXPECT_NEAR(ci.point, std::log(3.0), 0.2);
  EXPECT_TRUE(ci.Excludes(0.0));
}

TEST(BootstrapTest, WiderConfidenceMakesWiderInterval) {
  Rng rng(6);
  auto inside = Sample(&rng, 100, 0.5, 1.0);
  auto outside = Sample(&rng, 100, 0.0, 1.0);
  BootstrapOptions narrow;
  narrow.confidence = 0.8;
  BootstrapOptions wide;
  wide.confidence = 0.99;
  BootstrapInterval ci_n =
      BootstrapTwoSample(inside, outside, MeanDifferenceStatistic, narrow);
  BootstrapInterval ci_w =
      BootstrapTwoSample(inside, outside, MeanDifferenceStatistic, wide);
  ASSERT_TRUE(ci_n.defined && ci_w.defined);
  EXPECT_GT(ci_w.hi - ci_w.lo, ci_n.hi - ci_n.lo);
}

TEST(BootstrapTest, DeterministicForSeed) {
  Rng rng(7);
  auto inside = Sample(&rng, 50, 0.5, 1.0);
  auto outside = Sample(&rng, 80, 0.0, 1.0);
  BootstrapInterval a = BootstrapTwoSample(inside, outside, MeanDifferenceStatistic);
  BootstrapInterval b = BootstrapTwoSample(inside, outside, MeanDifferenceStatistic);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, UndefinedOnTinySamples) {
  EXPECT_FALSE(
      BootstrapTwoSample({1.0}, {1.0, 2.0}, MeanDifferenceStatistic).defined);
  EXPECT_FALSE(
      BootstrapTwoSample({1.0, 2.0}, {1.0}, MeanDifferenceStatistic).defined);
  BootstrapOptions few;
  few.resamples = 1;
  EXPECT_FALSE(
      BootstrapTwoSample({1.0, 2.0}, {1.0, 2.0}, MeanDifferenceStatistic, few)
          .defined);
}

// Coverage property: over repeated null experiments, a 90% interval should
// cover zero roughly 90% of the time (loose tolerance, small trials).
TEST(BootstrapTest, CoverageRoughlyCalibrated) {
  Rng rng(8);
  BootstrapOptions opts;
  opts.confidence = 0.90;
  opts.resamples = 120;
  int covered = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    opts.seed = static_cast<uint64_t>(t) + 100;
    auto inside = Sample(&rng, 60, 0.0, 1.0);
    auto outside = Sample(&rng, 60, 0.0, 1.0);
    BootstrapInterval ci =
        BootstrapTwoSample(inside, outside, MeanDifferenceStatistic, opts);
    if (!ci.Excludes(0.0)) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.75);
  EXPECT_LE(rate, 1.0);
}

}  // namespace
}  // namespace ziggy
