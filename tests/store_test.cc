// The persistence subsystem end to end:
//
//  * ZiggyStore — manifest lifecycle, checkpoint/load round trips, name
//    safety, atomic staging (no temp litter).
//  * Warm restart byte-identity — the acceptance bar of the store PR: a
//    server booted from a checkpoint renders CHARACTERIZE/VIEWS reports
//    byte-identical to the cold-profiled server that wrote it, including
//    after appends, and with a warm sketch cache whose first hit is exact.
//  * Corruption policy — table/profile damage fails cleanly and installs
//    nothing; sketch damage only costs warmth; legacy ZIGPROF1 profiles
//    are rejected with an explicit version error.
//  * Catalog integration — OpenFromStore, SaveToStore generations,
//    checkpoint-on-append, persist flags.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "data/synthetic.h"
#include "engine/report.h"
#include "persist/fs_util.h"
#include "persist/manifest.h"
#include "persist/store.h"
#include "serve/catalog.h"
#include "serve/daemon/handler.h"
#include "storage/csv.h"
#include "storage/table_io.h"

namespace ziggy {
namespace {

ServeOptions GoldenServeOptions() {
  ServeOptions options;
  options.engine.search.min_tightness = 0.4;
  options.engine.search.max_views = 10;
  return options;
}

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  return testing::TempDir() + "/ziggy_store_test_" + tag + "_" +
         std::to_string(++counter);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void FlipByte(const std::string& path, size_t offset) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x20);
  WriteFileBytes(path, bytes);
}

bool DirHasTempLitter(const std::string& dir) {
  namespace fs = std::filesystem;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------- manifest ----

TEST(ManifestTest, RoundTripAndValidation) {
  Manifest m;
  m.Upsert(ManifestEntry{"zeta", 3, true, 3, {}});
  m.Upsert(ManifestEntry{"alpha", 0, false, 0, {}});
  m.Upsert(ManifestEntry{"zeta", 4, false, 1, {2, 4}});  // replaces

  const std::string text = m.Serialize();
  Manifest parsed = Manifest::Parse(text).ValueOrDie();
  ASSERT_EQ(parsed.entries().size(), 2u);
  EXPECT_EQ(parsed.entries()[0].name, "alpha");  // sorted
  EXPECT_EQ(parsed.entries()[0].base_generation, 0u);
  EXPECT_TRUE(parsed.entries()[0].delta_generations.empty());
  EXPECT_EQ(parsed.entries()[1].name, "zeta");
  EXPECT_EQ(parsed.entries()[1].generation, 4u);
  EXPECT_FALSE(parsed.entries()[1].has_sketches);
  EXPECT_EQ(parsed.entries()[1].base_generation, 1u);
  EXPECT_EQ(parsed.entries()[1].delta_generations,
            (std::vector<uint64_t>{2, 4}));

  EXPECT_TRUE(parsed.Remove("alpha"));
  EXPECT_FALSE(parsed.Remove("alpha"));

  EXPECT_FALSE(Manifest::Parse("").ok());
  EXPECT_FALSE(Manifest::Parse("not-a-manifest 1\n").ok());
  EXPECT_TRUE(Manifest::Parse("ziggy-store 99\n")
                  .status()
                  .IsFailedPrecondition());  // future version
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable x\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable a 1 2\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable a -3 0\n").ok());
  EXPECT_FALSE(
      Manifest::Parse("ziggy-store 1\ntable a 1 0\ntable a 2 0\n").ok());
  // Path-traversal names never survive parsing.
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable .. 0 0\n").ok());
  // v1 manifests (no chain fields) parse as full snapshots.
  Manifest legacy =
      Manifest::Parse("ziggy-store 1\ntable a 5 0\n").ValueOrDie();
  ASSERT_EQ(legacy.entries().size(), 1u);
  EXPECT_EQ(legacy.entries()[0].base_generation, 5u);
  EXPECT_TRUE(legacy.entries()[0].delta_generations.empty());
  // v1 lines must not carry chain fields; v2 lines must.
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable a 5 0 5 0\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 2\ntable a 5 0\n").ok());
  // Chain validation: strictly increasing, above the base, ending at the
  // current generation, and count-consistent.
  EXPECT_TRUE(Manifest::Parse("ziggy-store 2\ntable a 4 0 1 2 2 4\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 2\ntable a 4 0 1 2 4 2\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 2\ntable a 4 0 5 1 4\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 2\ntable a 4 0 1 1 3\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 2\ntable a 4 0 1 3 2 4\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 2\ntable a 4 0 5 0\n").ok());
}

TEST(ManifestTest, StoreNameRejectsPathSpecials) {
  EXPECT_TRUE(IsValidStoreTableName("ok_Name-1.2"));
  EXPECT_FALSE(IsValidStoreTableName(""));
  EXPECT_FALSE(IsValidStoreTableName("."));
  EXPECT_FALSE(IsValidStoreTableName(".."));
  EXPECT_FALSE(IsValidStoreTableName("a/b"));
  EXPECT_FALSE(IsValidStoreTableName("has space"));
}

// -------------------------------------------------------------- store ----

TEST(ZiggyStoreTest, SaveLoadRoundTripIsExact) {
  const std::string dir = UniqueDir("roundtrip");
  auto store = ZiggyStore::Open(dir).ValueOrDie();

  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  TableProfile profile = TableProfile::Compute(ds.table).ValueOrDie();
  ASSERT_TRUE(store->SaveTable("box", ds.table, 0, profile, {}).ok());

  EXPECT_TRUE(store->Has("box"));
  EXPECT_FALSE(store->Has("nope"));
  EXPECT_EQ(store->StoredGeneration("box").ValueOrDie(), 0u);
  EXPECT_TRUE(store->StoredGeneration("nope").status().IsNotFound());

  StoredTable loaded = store->LoadTable("box").ValueOrDie();
  EXPECT_EQ(loaded.generation, 0u);
  EXPECT_EQ(loaded.table.num_rows(), ds.table.num_rows());
  EXPECT_EQ(loaded.table.schema(), ds.table.schema());
  EXPECT_TRUE(loaded.profile.Equals(profile));
  EXPECT_TRUE(loaded.sketches.empty());
  EXPECT_TRUE(loaded.sketches_status.ok());

  EXPECT_FALSE(DirHasTempLitter(dir));
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(ZiggyStoreTest, ReopenSeesPersistedManifest) {
  const std::string dir = UniqueDir("reopen");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  TableProfile profile = TableProfile::Compute(ds.table).ValueOrDie();
  {
    auto store = ZiggyStore::Open(dir).ValueOrDie();
    ASSERT_TRUE(store->SaveTable("box", ds.table, 2, profile, {}).ok());
  }
  auto reopened = ZiggyStore::Open(dir).ValueOrDie();
  ASSERT_EQ(reopened->List().size(), 1u);
  EXPECT_EQ(reopened->List()[0].name, "box");
  EXPECT_EQ(reopened->List()[0].generation, 2u);

  ASSERT_TRUE(reopened->RemoveTable("box").ok());
  EXPECT_TRUE(reopened->RemoveTable("box").IsNotFound());
  EXPECT_FALSE(PathExists(reopened->TableDir("box")));
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(ZiggyStoreTest, RejectsUnsafeNamesAndCorruptManifest) {
  const std::string dir = UniqueDir("names");
  auto store = ZiggyStore::Open(dir).ValueOrDie();
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  TableProfile profile = TableProfile::Compute(ds.table).ValueOrDie();
  EXPECT_TRUE(
      store->SaveTable("..", ds.table, 0, profile, {}).IsInvalidArgument());
  EXPECT_TRUE(
      store->SaveTable("a/b", ds.table, 0, profile, {}).IsInvalidArgument());

  WriteFileBytes(store->ManifestPath(), "garbage\n");
  EXPECT_FALSE(ZiggyStore::Open(dir).ok());
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// ------------------------------------------------- warm restart parity ----

TEST(StoreWarmRestartTest, WarmServerRendersByteIdenticalReports) {
  const std::string dir = UniqueDir("warm");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  const std::vector<std::string> queries = {
      ds.selection_predicate, "revenue_index > 1.0",
      "budget_0 > 0.5 AND budget_1 > 0.5", ds.selection_predicate};

  // Cold boot: profile computed from scratch; render, then checkpoint.
  auto cold =
      ZiggyServer::Create(ds.table, GoldenServeOptions()).ValueOrDie();
  const uint64_t cold_sid = cold->OpenSession();
  std::vector<std::string> cold_reports;
  const Schema& schema = cold->state()->table().schema();
  for (const std::string& q : queries) {
    auto result = cold->Characterize(cold_sid, q);
    ASSERT_TRUE(result.ok()) << q;
    cold_reports.push_back(RenderCharacterizationReport(*result, schema));
  }
  auto store = ZiggyStore::Open(dir).ValueOrDie();
  ASSERT_TRUE(store
                  ->SaveTable("box", cold->state()->table(),
                              cold->state()->generation(),
                              *cold->state()->profile,
                              cold->ExportSketchCache())
                  .ok());

  // Warm boot: checkpointed table + profile + sketch cache.
  StoredTable stored = store->LoadTable("box").ValueOrDie();
  ASSERT_TRUE(stored.sketches_status.ok());
  EXPECT_FALSE(stored.sketches.empty());
  auto warm = ZiggyServer::CreateFromState(std::move(stored.table),
                                           stored.generation,
                                           std::move(stored.profile),
                                           GoldenServeOptions())
                  .ValueOrDie();
  EXPECT_EQ(warm->WarmSketchCache(stored.sketches), stored.sketches.size());

  const uint64_t warm_sid = warm->OpenSession();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = warm->Characterize(warm_sid, queries[i]);
    ASSERT_TRUE(result.ok()) << queries[i];
    EXPECT_EQ(RenderCharacterizationReport(*result, schema), cold_reports[i])
        << "query " << i << " diverged after warm restart";
  }
  // The warmed cache served the repeats without a single scan miss.
  const ServeStats stats = warm->stats();
  EXPECT_EQ(stats.cache_warmed_entries, stored.sketches.size());
  EXPECT_EQ(stats.sketch_misses, 0u);
  EXPECT_GT(stats.sketch_exact_hits, 0u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(StoreWarmRestartTest, CheckpointAfterAppendRestoresGeneration) {
  const std::string dir = UniqueDir("gen");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  auto cold = ZiggyServer::Create(ds.table, GoldenServeOptions()).ValueOrDie();
  ASSERT_TRUE(cold->Append(tail.table).ok());
  ASSERT_TRUE(cold->Append(tail.table).ok());
  ASSERT_EQ(cold->state()->generation(), 2u);

  const uint64_t sid = cold->OpenSession();
  auto cold_result = cold->Characterize(sid, ds.selection_predicate);
  ASSERT_TRUE(cold_result.ok());
  const Schema& schema = cold->state()->table().schema();
  const std::string cold_report =
      RenderCharacterizationReport(*cold_result, schema);

  auto store = ZiggyStore::Open(dir).ValueOrDie();
  ASSERT_TRUE(store
                  ->SaveTable("box", cold->state()->table(), 2,
                              *cold->state()->profile, {})
                  .ok());

  StoredTable stored = store->LoadTable("box").ValueOrDie();
  EXPECT_EQ(stored.generation, 2u);
  EXPECT_EQ(stored.table.num_rows(), 2700u);
  auto warm = ZiggyServer::CreateFromState(std::move(stored.table), 2,
                                           std::move(stored.profile),
                                           GoldenServeOptions())
                  .ValueOrDie();
  EXPECT_EQ(warm->state()->generation(), 2u);
  const uint64_t warm_sid = warm->OpenSession();
  auto warm_result = warm->Characterize(warm_sid, ds.selection_predicate);
  ASSERT_TRUE(warm_result.ok());
  EXPECT_EQ(RenderCharacterizationReport(*warm_result, schema), cold_report);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// --------------------------------------------------- corruption policy ----

class StoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueDir("corrupt");
    auto store = ZiggyStore::Open(dir_).ValueOrDie();
    SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
    auto server =
        ZiggyServer::Create(ds.table, GoldenServeOptions()).ValueOrDie();
    const uint64_t sid = server->OpenSession();
    ASSERT_TRUE(server->Characterize(sid, ds.selection_predicate).ok());
    ASSERT_TRUE(store
                    ->SaveTable("box", server->state()->table(), 0,
                                *server->state()->profile,
                                server->ExportSketchCache())
                    .ok());
    store_ = std::move(store);
  }

  void TearDown() override {
    store_.reset();
    ASSERT_TRUE(RemoveDirectory(dir_).ok());
  }

  std::string dir_;
  std::unique_ptr<ZiggyStore> store_;
};

TEST_F(StoreCorruptionTest, CorruptTableFailsCleanlyAndInstallsNothing) {
  FlipByte(store_->TablePath("box", 0),
           ReadFileBytes(store_->TablePath("box", 0)).size() / 2);
  Result<StoredTable> loaded = store_->LoadTable("box");
  EXPECT_FALSE(loaded.ok());

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  // Attach to the same (damaged) store: OpenFromStore must fail without
  // publishing a table.
  ASSERT_TRUE(catalog.AttachStore(dir_).ok());
  EXPECT_FALSE(catalog.OpenFromStore("box").ok());
  EXPECT_EQ(catalog.num_tables(), 0u);
}

TEST_F(StoreCorruptionTest, OpenFallsBackToColdSourceWhenCheckpointIsBad) {
  // Availability over warmth: a damaged checkpoint must not make the name
  // unopenable when the OPEN carried a valid cold source.
  FlipByte(store_->TablePath("box", 0),
           ReadFileBytes(store_->TablePath("box", 0)).size() / 2);
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir_).ok());
  DaemonHandler handler(&catalog);
  auto open = LineProtocol::ParseRequest("OPEN box demo://boxoffice?seed=7");
  ASSERT_TRUE(open.ok());
  WireResponse reply = handler.Handle(*open);
  ASSERT_TRUE(reply.ok) << reply.body;
  EXPECT_EQ(reply.body,
            "{\"table\":\"box\",\"rows\":900,\"columns\":12,\"generation\":0}");
  EXPECT_EQ(catalog.stats().store_opens, 0u);  // the cold path served it
  EXPECT_EQ(catalog.num_tables(), 1u);
}

TEST_F(StoreCorruptionTest, TruncatedProfileFailsCleanly) {
  const std::string path = store_->ProfilePath("box", 0);
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 3));
  EXPECT_FALSE(store_->LoadTable("box").ok());
}

TEST_F(StoreCorruptionTest, WrongMagicProfileFailsCleanly) {
  WriteFileBytes(store_->ProfilePath("box", 0), "NOTAPROF-garbage-bytes");
  Result<StoredTable> loaded = store_->LoadTable("box");
  EXPECT_TRUE(loaded.status().IsParseError());
}

TEST_F(StoreCorruptionTest, LegacyProfileVersionExplicitlyRejected) {
  // A ZIGPROF1 payload must produce the version-mismatch error, not a
  // generic bad-magic parse error (satellite: the recompute note in
  // profile_io.cc becomes an actionable Status).
  std::string bytes = ReadFileBytes(store_->ProfilePath("box", 0));
  ASSERT_GE(bytes.size(), 8u);
  bytes[7] = '1';  // ZIGPROF2 -> ZIGPROF1
  WriteFileBytes(store_->ProfilePath("box", 0), bytes);
  Result<StoredTable> loaded = store_->LoadTable("box");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("recompute"), std::string::npos);
}

TEST_F(StoreCorruptionTest, CorruptSketchesOnlyCostWarmth) {
  FlipByte(store_->SketchesPath("box", 0),
           ReadFileBytes(store_->SketchesPath("box", 0)).size() / 2);
  StoredTable loaded = store_->LoadTable("box").ValueOrDie();
  EXPECT_TRUE(loaded.sketches.empty());
  EXPECT_FALSE(loaded.sketches_status.ok());

  // The table still serves (cold cache) through the catalog.
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir_).ok());
  auto server = catalog.OpenFromStore("box");
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_EQ((*server)->stats().cache_warmed_entries, 0u);
}

// Sketch-file bit flips / truncations / splices never crashing or
// installing entries is covered by the shared torture harness
// (codec_torture_test.cc, ZIGSKC01 codec-level and store-level runs).

TEST_F(StoreCorruptionTest, TruncatedTableEveryCutFailsCleanly) {
  const std::string path = store_->TablePath("box", 0);
  const std::string bytes = ReadFileBytes(path);
  for (size_t cut : {size_t{0}, size_t{4}, size_t{11}, bytes.size() / 4,
                     bytes.size() / 2, bytes.size() - 2}) {
    WriteFileBytes(path, bytes.substr(0, cut));
    EXPECT_FALSE(store_->LoadTable("box").ok()) << "cut=" << cut;
  }
  WriteFileBytes(path, bytes);
  EXPECT_TRUE(store_->LoadTable("box").ok());
}

// ------------------------------------------------------- delta chains ----

std::string TableImage(const Table& table) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(WriteTable(table, &out).ok());
  return out.str();
}

class StoreDeltaTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kLineage = 42;

  void SetUp() override {
    dir_ = UniqueDir("delta");
    ds_ = MakeBoxOfficeDataset(7).ValueOrDie();
    tail_ = MakeBoxOfficeDataset(19).ValueOrDie();
    profile_ = TableProfile::Compute(ds_.table).ValueOrDie();
  }

  void TearDown() override { ASSERT_TRUE(RemoveDirectory(dir_).ok()); }

  /// Saves `table` at `generation` and returns the store's save stats.
  static Status Save(ZiggyStore* store, const Table& table,
                     uint64_t generation, const TableProfile& profile,
                     uint64_t lineage = kLineage) {
    return store->SaveTable("box", table, generation, profile, {}, lineage);
  }

  std::string dir_;
  SyntheticDataset ds_;
  SyntheticDataset tail_;
  TableProfile profile_;
};

TEST_F(StoreDeltaTest, AppendCheckpointWritesDeltaNotFullTable) {
  // Byte-level O(delta) assertion: pin compression off so the segment
  // size compares against an uncompressed base whatever the environment
  // says (compressed delta chains are covered in dict_pool_test).
  StoreOptions plain;
  plain.compression = StoreCompression::kOff;
  auto store = ZiggyStore::Open(dir_, plain).ValueOrDie();
  ASSERT_TRUE(Save(store.get(), ds_.table, 0, profile_).ok());
  const std::string base_bytes = ReadFileBytes(store->TablePath("box", 0));

  const Table live = ds_.table.WithAppendedRows(tail_.table).ValueOrDie();
  TableProfile live_profile = TableProfile::Compute(live).ValueOrDie();
  ASSERT_TRUE(Save(store.get(), live, 1, live_profile).ok());

  // The append checkpoint produced a delta segment; the base file was not
  // rewritten (byte-identical), and the manifest records the chain.
  EXPECT_TRUE(PathExists(store->DeltaPath("box", 1)));
  EXPECT_FALSE(PathExists(store->TablePath("box", 1)));
  EXPECT_EQ(ReadFileBytes(store->TablePath("box", 0)), base_bytes);
  const std::vector<ManifestEntry> entries = store->List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].generation, 1u);
  EXPECT_EQ(entries[0].base_generation, 0u);
  EXPECT_EQ(entries[0].delta_generations, (std::vector<uint64_t>{1}));

  const StoreStats stats = store->stats();
  EXPECT_EQ(stats.full_checkpoints, 1u);
  EXPECT_EQ(stats.delta_checkpoints, 1u);
  EXPECT_EQ(stats.compactions, 0u);
  // O(delta): the segment is much smaller than a base rewrite (equal-size
  // tail here, so "smaller than the 2x base it replaces" is the bound; the
  // bench pins the small-tail ratio).
  EXPECT_LT(stats.last_checkpoint_bytes, base_bytes.size());

  // Warm load replays base+delta to the exact live table.
  StoredTable loaded = store->LoadTable("box").ValueOrDie();
  EXPECT_EQ(loaded.generation, 1u);
  EXPECT_EQ(TableImage(loaded.table), TableImage(live));
  EXPECT_TRUE(loaded.profile.Equals(live_profile));
  EXPECT_FALSE(DirHasTempLitter(dir_));
}

TEST_F(StoreDeltaTest, ChainReplaysAcrossReopenAndStampsLineage) {
  // The synthetic tails are as large as the base, so disable the
  // byte-fraction compaction — this test is about chain replay.
  StoreOptions chain_options;
  chain_options.max_delta_fraction = 1e9;
  Table live = ds_.table;
  {
    auto store = ZiggyStore::Open(dir_, chain_options).ValueOrDie();
    ASSERT_TRUE(Save(store.get(), live, 0, profile_).ok());
    for (uint64_t g = 1; g <= 3; ++g) {
      SyntheticDataset tail = MakeBoxOfficeDataset(100 + g).ValueOrDie();
      live = live.WithAppendedRows(tail.table).ValueOrDie();
      TableProfile p = TableProfile::Compute(live).ValueOrDie();
      ASSERT_TRUE(Save(store.get(), live, g, p).ok());
    }
    EXPECT_EQ(store->stats().delta_checkpoints, 3u);
  }
  // A fresh store process parses the v2 manifest and replays the chain.
  auto reopened = ZiggyStore::Open(dir_, chain_options).ValueOrDie();
  StoredTable loaded = reopened->LoadTable("box", kLineage).ValueOrDie();
  EXPECT_EQ(loaded.generation, 3u);
  EXPECT_EQ(TableImage(loaded.table), TableImage(live));

  // The load stamped the persisted shape with our lineage: the next
  // append checkpoint extends the chain instead of rewriting the base.
  SyntheticDataset tail = MakeBoxOfficeDataset(200).ValueOrDie();
  live = live.WithAppendedRows(tail.table).ValueOrDie();
  TableProfile p = TableProfile::Compute(live).ValueOrDie();
  ASSERT_TRUE(Save(reopened.get(), live, 4, p).ok());
  EXPECT_EQ(reopened->stats().delta_checkpoints, 1u);
  EXPECT_EQ(reopened->stats().full_checkpoints, 0u);
}

TEST_F(StoreDeltaTest, ChainLengthTriggersCompaction) {
  StoreOptions options;
  options.max_delta_chain = 2;
  options.max_delta_fraction = 100.0;  // only the length limit fires
  auto store = ZiggyStore::Open(dir_, options).ValueOrDie();
  Table live = ds_.table;
  ASSERT_TRUE(Save(store.get(), live, 0, profile_).ok());
  for (uint64_t g = 1; g <= 3; ++g) {
    SyntheticDataset tail = MakeBoxOfficeDataset(100 + g).ValueOrDie();
    live = live.WithAppendedRows(tail.table).ValueOrDie();
    TableProfile p = TableProfile::Compute(live).ValueOrDie();
    ASSERT_TRUE(Save(store.get(), live, g, p).ok());
  }
  // Saves 1 and 2 were deltas; save 3 hit the chain limit and compacted.
  const StoreStats stats = store->stats();
  EXPECT_EQ(stats.delta_checkpoints, 2u);
  EXPECT_EQ(stats.full_checkpoints, 2u);  // initial base + compaction
  EXPECT_EQ(stats.compactions, 1u);
  const std::vector<ManifestEntry> entries = store->List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].base_generation, 3u);
  EXPECT_TRUE(entries[0].delta_generations.empty());
  // The compaction swept the old base and the compacted-away segments.
  EXPECT_FALSE(PathExists(store->TablePath("box", 0)));
  EXPECT_FALSE(PathExists(store->DeltaPath("box", 1)));
  EXPECT_FALSE(PathExists(store->DeltaPath("box", 2)));
  StoredTable loaded = store->LoadTable("box").ValueOrDie();
  EXPECT_EQ(TableImage(loaded.table), TableImage(live));
}

TEST_F(StoreDeltaTest, ChainWeightTriggersCompaction) {
  StoreOptions options;
  options.max_delta_chain = 100;   // only the byte-fraction limit fires
  options.max_delta_fraction = 0.5;
  auto store = ZiggyStore::Open(dir_, options).ValueOrDie();
  Table live = ds_.table;
  ASSERT_TRUE(Save(store.get(), live, 0, profile_).ok());
  // Each tail is as large as the base, so one delta already outweighs
  // max_delta_fraction of the base and the next save must compact.
  live = live.WithAppendedRows(tail_.table).ValueOrDie();
  TableProfile p1 = TableProfile::Compute(live).ValueOrDie();
  ASSERT_TRUE(Save(store.get(), live, 1, p1).ok());
  EXPECT_EQ(store->stats().delta_checkpoints, 1u);
  live = live.WithAppendedRows(tail_.table).ValueOrDie();
  TableProfile p2 = TableProfile::Compute(live).ValueOrDie();
  ASSERT_TRUE(Save(store.get(), live, 2, p2).ok());
  EXPECT_EQ(store->stats().compactions, 1u);
  EXPECT_EQ(store->List()[0].base_generation, 2u);
}

TEST_F(StoreDeltaTest, UnknownLineageAlwaysWritesFullSnapshots) {
  auto store = ZiggyStore::Open(dir_).ValueOrDie();
  ASSERT_TRUE(Save(store.get(), ds_.table, 0, profile_, /*lineage=*/0).ok());
  const Table live = ds_.table.WithAppendedRows(tail_.table).ValueOrDie();
  TableProfile p = TableProfile::Compute(live).ValueOrDie();
  // Lineage 0 (unknown provenance) and a lineage mismatch both force a
  // full snapshot — the shape checks alone cannot prove the new table
  // extends the persisted bytes.
  ASSERT_TRUE(Save(store.get(), live, 1, p, /*lineage=*/0).ok());
  EXPECT_EQ(store->stats().delta_checkpoints, 0u);
  ASSERT_TRUE(Save(store.get(), live, 2, p, /*lineage=*/kLineage).ok());
  EXPECT_EQ(store->stats().delta_checkpoints, 0u);
  EXPECT_EQ(store->stats().full_checkpoints, 3u);
}

TEST_F(StoreDeltaTest, CorruptDeltaSegmentFailsCleanlyBaseSurvives) {
  StoreOptions chain_options;
  chain_options.max_delta_fraction = 1e9;  // keep both segments as deltas
  auto store = ZiggyStore::Open(dir_, chain_options).ValueOrDie();
  Table live = ds_.table;
  ASSERT_TRUE(Save(store.get(), live, 0, profile_).ok());
  for (uint64_t g = 1; g <= 2; ++g) {
    SyntheticDataset tail = MakeBoxOfficeDataset(100 + g).ValueOrDie();
    live = live.WithAppendedRows(tail.table).ValueOrDie();
    TableProfile p = TableProfile::Compute(live).ValueOrDie();
    ASSERT_TRUE(Save(store.get(), live, g, p).ok());
  }
  ASSERT_TRUE(store->LoadTable("box").ok());
  const std::string base_image = ReadFileBytes(store->TablePath("box", 0));

  for (uint64_t g = 1; g <= 2; ++g) {
    const std::string path = store->DeltaPath("box", g);
    const std::string bytes = ReadFileBytes(path);
    // Strided bit flips across the segment: every one a clean failure.
    const size_t stride = bytes.size() / 64 + 1;
    for (size_t pos = 0; pos < bytes.size(); pos += stride) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ 0x08);
      WriteFileBytes(path, mutated);
      Result<StoredTable> loaded = store->LoadTable("box");
      EXPECT_FALSE(loaded.ok()) << "delta g" << g << " pos=" << pos;
    }
    // Truncations, including an empty segment.
    for (size_t cut : {size_t{0}, size_t{4}, bytes.size() / 2,
                       bytes.size() - 1}) {
      WriteFileBytes(path, bytes.substr(0, cut));
      EXPECT_FALSE(store->LoadTable("box").ok())
          << "delta g" << g << " cut=" << cut;
    }
    // The base checkpoint under the damaged chain is byte-untouched on
    // disk (a compressed base is only readable through the store's
    // dictionary resolver, so equality is the right "survives" check) —
    // a full re-save repairs the store.
    EXPECT_EQ(ReadFileBytes(store->TablePath("box", 0)), base_image);
    WriteFileBytes(path, bytes);
  }
  // Restored segments: the chain loads again.
  StoredTable loaded = store->LoadTable("box").ValueOrDie();
  EXPECT_EQ(TableImage(loaded.table), TableImage(live));

  // A deleted segment (chain file missing entirely) also fails cleanly,
  // and a subsequent full save repairs the table.
  ASSERT_TRUE(RemoveFileIfExists(store->DeltaPath("box", 1)).ok());
  EXPECT_FALSE(store->LoadTable("box").ok());
  TableProfile p = TableProfile::Compute(live).ValueOrDie();
  ASSERT_TRUE(store->SaveTable("box", live, 3, p, {}, /*lineage=*/0).ok());
  EXPECT_EQ(TableImage(store->LoadTable("box").ValueOrDie().table),
            TableImage(live));
}

// -------------------------------------------------- catalog integration ----

TEST(CatalogStoreTest, OpenFromStoreServesAndCounts) {
  const std::string dir = UniqueDir("catalog");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  EXPECT_FALSE(catalog.HasStore());
  EXPECT_TRUE(catalog.SaveToStore("box").status().IsFailedPrecondition());
  EXPECT_TRUE(catalog.SetPersist("box", true).IsFailedPrecondition());
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  EXPECT_TRUE(catalog.AttachStore(dir).IsFailedPrecondition());  // once

  ASSERT_TRUE(catalog.Open("box", ds.table).ok());
  EXPECT_TRUE(catalog.SaveToStore("nope").status().IsNotFound());
  EXPECT_EQ(catalog.SaveToStore("box").ValueOrDie(), 0u);
  EXPECT_TRUE(catalog.StoreHas("box"));

  // Close + warm reopen from the checkpoint.
  ASSERT_TRUE(catalog.Close("box").ok());
  auto warm = catalog.OpenFromStore("box");
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ((*warm)->state()->table().num_rows(), 900u);

  CatalogStats stats = catalog.stats();
  EXPECT_TRUE(stats.store_attached);
  EXPECT_EQ(stats.store_tables, 1u);
  EXPECT_EQ(stats.store_opens, 1u);
  EXPECT_EQ(stats.store_saves, 1u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CatalogStoreTest, AppendCheckpointsWhenPersistIsOn) {
  const std::string dir = UniqueDir("persist");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());

  // Persist off: append does not checkpoint.
  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());
  EXPECT_FALSE(catalog.StoreHas("box"));

  // Persist on: the next append checkpoints generation 2.
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());
  ASSERT_TRUE(catalog.StoreHas("box"));
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 2u);

  // only_if_newer: saving the same generation again is a no-op skip.
  EXPECT_EQ(catalog.SaveToStore("box", /*only_if_newer=*/true).ValueOrDie(),
            2u);
  EXPECT_EQ(catalog.stats().store_saves, 1u);  // still just the append's
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CatalogStoreTest, AppendCheckpointsAreDeltasAndWarmBootExtendsChain) {
  const std::string dir = UniqueDir("catalog_delta");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  {
    CatalogOptions options;
    options.serve = GoldenServeOptions();
    ServerCatalog catalog(options);
    ASSERT_TRUE(catalog.AttachStore(dir).ok());
    ASSERT_TRUE(catalog.Open("box", ds.table).ok());
    ASSERT_TRUE(catalog.SaveToStore("box").ok());
    ASSERT_TRUE(catalog.SetPersist("box", true).ok());
    Status checkpoint = Status::OK();
    ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
    EXPECT_TRUE(checkpoint.ok());
    // The catalog handed its lineage through: the append's checkpoint is
    // an O(delta) segment, not a base rewrite.
    CatalogStats stats = catalog.stats();
    EXPECT_EQ(stats.store_full_checkpoints, 1u);
    EXPECT_EQ(stats.store_delta_checkpoints, 1u);
    EXPECT_TRUE(PathExists(catalog.store()->DeltaPath("box", 1)));
  }
  {
    // Warm restart: OpenFromStore replays the chain and stamps a fresh
    // lineage, so the next append checkpoint extends the chain instead of
    // rewriting the base. (The equal-size synthetic tail would trip the
    // byte-fraction compaction, so widen it — compaction has its own
    // tests.)
    CatalogOptions options;
    options.serve = GoldenServeOptions();
    options.store.max_delta_fraction = 1e9;
    ServerCatalog catalog(options);
    ASSERT_TRUE(catalog.AttachStore(dir).ok());
    auto warm = catalog.OpenFromStore("box");
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ((*warm)->state()->table().num_rows(), 1800u);
    ASSERT_TRUE(catalog.SetPersist("box", true).ok());
    Status checkpoint = Status::OK();
    ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
    EXPECT_TRUE(checkpoint.ok());
    CatalogStats stats = catalog.stats();
    EXPECT_EQ(stats.store_full_checkpoints, 0u);
    EXPECT_EQ(stats.store_delta_checkpoints, 1u);
    EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 2u);
  }
  // But a COLD re-open of the name (new lineage, arbitrary data) must
  // never be delta-saved on top of the old chain.
  {
    CatalogOptions options;
    options.serve = GoldenServeOptions();
    ServerCatalog catalog(options);
    ASSERT_TRUE(catalog.AttachStore(dir).ok());
    ASSERT_TRUE(catalog.Open("box", ds.table).ok());
    ASSERT_TRUE(catalog.SetPersist("box", true).ok());
    Status checkpoint = Status::OK();
    // Generations 1..2 are behind the stored generation 2 -> the
    // only_if_newer guard skips; append once more to get past it.
    ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
    ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
    ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
    EXPECT_TRUE(checkpoint.ok());
    CatalogStats stats = catalog.stats();
    EXPECT_EQ(stats.store_delta_checkpoints, 0u);
    EXPECT_GE(stats.store_full_checkpoints, 1u);
  }
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CatalogStoreTest, StaleCheckpointNeverClobbersNewerStoredGeneration) {
  // Regression for the only_if_newer race: the store already holds a
  // generation PAST the server's (a concurrent append checkpointed ahead
  // of us, or — as staged here — the server was rebuilt from scratch
  // while the store kept serving). With the old `==` comparison the save
  // proceeded and overwrote generation 5 with generation 1.
  const std::string dir = UniqueDir("stale");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();
  {
    auto store = ZiggyStore::Open(dir).ValueOrDie();
    TableProfile profile = TableProfile::Compute(ds.table).ValueOrDie();
    ASSERT_TRUE(store->SaveTable("box", ds.table, 5, profile, {}).ok());
  }

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());  // cold: generation 0
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());
  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());  // skipped, not failed
  // The stored (newer) generation survived; nothing was written.
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 5u);
  EXPECT_EQ(catalog.stats().store_saves, 0u);
  // The explicit only_if_newer save reports the durable generation.
  EXPECT_EQ(catalog.SaveToStore("box", /*only_if_newer=*/true).ValueOrDie(),
            5u);
  // A forced save (only_if_newer=false) still overwrites deliberately.
  EXPECT_EQ(catalog.SaveToStore("box").ValueOrDie(), 1u);
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 1u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CatalogStoreTest, SaveAllContinuesPastFailuresAndReportsEach) {
  const std::string dir = UniqueDir("saveall");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  // "." is a valid *catalog* name but an invalid *store* name (path
  // special), so its save fails — and it sorts before "box", so the old
  // stop-at-first-failure loop would have left "box" unsaved.
  ASSERT_TRUE(catalog.Open(".", ds.table).ok());
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());

  Result<std::vector<TableSaveResult>> results = catalog.SaveAllToStore();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].name, ".");
  EXPECT_TRUE((*results)[0].status.IsInvalidArgument());
  EXPECT_EQ((*results)[1].name, "box");
  EXPECT_TRUE((*results)[1].status.ok()) << (*results)[1].status;
  EXPECT_EQ((*results)[1].generation, 0u);
  EXPECT_TRUE(catalog.StoreHas("box"));
  EXPECT_FALSE(catalog.StoreHas("."));

  // The wire verb surfaces both the success and the per-table error.
  DaemonHandler handler(&catalog);
  WireResponse reply =
      handler.Handle(*LineProtocol::ParseRequest("SAVE"));
  ASSERT_TRUE(reply.ok) << reply.body;
  EXPECT_NE(reply.body.find("\"saved\":[{\"table\":\"box\",\"generation\":0}]"),
            std::string::npos)
      << reply.body;
  EXPECT_NE(reply.body.find("\"errors\":[{\"table\":\".\""),
            std::string::npos)
      << reply.body;
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// ---------------------------------------------------- background flusher ----

TEST(CatalogFlusherTest, FlusherPersistsAppendsOffTheRequestPath) {
  const std::string dir = UniqueDir("flusher");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  options.flush_interval_ms = 20;
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  EXPECT_TRUE(catalog.stats().flusher_active);
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());
  ASSERT_TRUE(catalog.SaveToStore("box").ok());
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());

  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());  // durability is pending, not failed

  // The flusher checkpoints the dirty table within a few intervals (the
  // poll watches the counter, which is bumped after the save completes).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (catalog.stats().flushed_tables < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 1u);
  CatalogStats stats = catalog.stats();
  EXPECT_GE(stats.flushed_tables, 1u);
  EXPECT_GE(stats.flush_cycles, 1u);
  EXPECT_EQ(stats.flush_failures, 0u);
  // The background save cut a delta segment, not a base rewrite.
  EXPECT_EQ(stats.store_delta_checkpoints, 1u);

  // StopFlusher drains synchronously: a second append marked dirty just
  // before shutdown is checkpointed, not dropped.
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  catalog.StopFlusher();
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 2u);
  EXPECT_FALSE(catalog.stats().flusher_active);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CatalogFlusherTest, CloseDrainsThePendingFlushFirst) {
  const std::string dir = UniqueDir("flusher_close");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  // An interval far beyond the test's lifetime: only the drain paths can
  // persist the append.
  options.flush_interval_ms = 600'000;
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());
  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());
  EXPECT_FALSE(catalog.StoreHas("box"));  // still only dirty
  EXPECT_EQ(catalog.stats().dirty_tables, 1u);

  ASSERT_TRUE(catalog.Close("box").ok());
  // Close flushed the pending generation before unpublishing the name.
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 1u);
  EXPECT_EQ(catalog.stats().dirty_tables, 0u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// ------------------------------------------------- injected store faults ----

/// The sites a checkpoint crosses, each with a first-hit fault: the store's
/// section writer (every table/profile/sketch codec funnels through it),
/// the atomic whole-file writer (the manifest), and the commit trio's
/// fsync/rename.
const char* const kSaveFaultSpecs[] = {
    "store.write:n1#ENOSPC",
    "fs.write:n1#EIO",
    "fs.fsync:n1#EIO",
    "fs.rename:n1#ENOSPC",
};

class StoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = MakeBoxOfficeDataset(7).ValueOrDie();
    tail_ = MakeBoxOfficeDataset(19).ValueOrDie();
    profile_ = TableProfile::Compute(ds_.table).ValueOrDie();
  }

  SyntheticDataset ds_;
  SyntheticDataset tail_;
  TableProfile profile_;
};

TEST_F(StoreFaultTest, FirstSaveFailsCleanAndInstallsNothing) {
  for (const char* spec : kSaveFaultSpecs) {
    const std::string dir = UniqueDir("fault_first");
    // Arm AFTER Open: initializing the store commits a manifest through
    // the same fs sites, and this test is about the save path.
    auto store = ZiggyStore::Open(dir).ValueOrDie();
    Status st;
    {
      ScopedFault fault(spec);
      ASSERT_TRUE(fault.status().ok()) << spec;
      st = store->SaveTable("box", ds_.table, 0, profile_, {});
    }
    ASSERT_FALSE(st.ok()) << spec;
    EXPECT_TRUE(st.IsIOError()) << spec << ": " << st;
    EXPECT_NE(st.message().find("injected fault"), std::string::npos) << st;
    // Nothing installed, and the live handle agrees with a fresh process.
    EXPECT_FALSE(store->Has("box")) << spec;
    EXPECT_FALSE(DirHasTempLitter(dir)) << spec;
    auto reopened = ZiggyStore::Open(dir).ValueOrDie();
    EXPECT_TRUE(reopened->List().empty()) << spec;
    // Healed: the identical save lands and loads exactly.
    ASSERT_TRUE(
        reopened->SaveTable("box", ds_.table, 0, profile_, {}).ok())
        << spec;
    StoredTable loaded = reopened->LoadTable("box").ValueOrDie();
    EXPECT_EQ(TableImage(loaded.table), TableImage(ds_.table)) << spec;
    ASSERT_TRUE(RemoveDirectory(dir).ok());
  }
}

TEST_F(StoreFaultTest, FailedResaveKeepsPreviousGenerationByteIdentical) {
  for (const char* spec : kSaveFaultSpecs) {
    const std::string dir = UniqueDir("fault_resave");
    auto store = ZiggyStore::Open(dir).ValueOrDie();
    ASSERT_TRUE(store->SaveTable("box", ds_.table, 0, profile_, {}).ok());
    const std::string base_bytes = ReadFileBytes(store->TablePath("box", 0));
    const Table live = ds_.table.WithAppendedRows(tail_.table).ValueOrDie();
    TableProfile live_profile = TableProfile::Compute(live).ValueOrDie();

    Status st;
    {
      ScopedFault fault(spec);
      ASSERT_TRUE(fault.status().ok()) << spec;
      st = store->SaveTable("box", live, 1, live_profile, {});
    }
    ASSERT_FALSE(st.ok()) << spec;
    // The previous checkpoint is still what the store serves — manifest,
    // generation, and bytes — on the live handle and after a reopen.
    EXPECT_EQ(store->StoredGeneration("box").ValueOrDie(), 0u) << spec;
    EXPECT_EQ(ReadFileBytes(store->TablePath("box", 0)), base_bytes) << spec;
    StoredTable survived = store->LoadTable("box").ValueOrDie();
    EXPECT_EQ(survived.generation, 0u) << spec;
    EXPECT_EQ(TableImage(survived.table), TableImage(ds_.table)) << spec;
    EXPECT_FALSE(DirHasTempLitter(dir)) << spec;
    auto reopened = ZiggyStore::Open(dir).ValueOrDie();
    EXPECT_EQ(reopened->StoredGeneration("box").ValueOrDie(), 0u) << spec;
    // Healed: the resave lands.
    ASSERT_TRUE(store->SaveTable("box", live, 1, live_profile, {}).ok())
        << spec;
    EXPECT_EQ(TableImage(store->LoadTable("box").ValueOrDie().table),
              TableImage(live))
        << spec;
    ASSERT_TRUE(RemoveDirectory(dir).ok());
  }
}

TEST_F(StoreFaultTest, FailedDeltaSaveLeavesChainReplayable) {
  constexpr uint64_t kLineage = 42;
  for (const char* spec : kSaveFaultSpecs) {
    const std::string dir = UniqueDir("fault_delta");
    StoreOptions options;
    options.max_delta_fraction = 1e9;  // equal-size tails must stay deltas
    auto store = ZiggyStore::Open(dir, options).ValueOrDie();
    ASSERT_TRUE(
        store->SaveTable("box", ds_.table, 0, profile_, {}, kLineage).ok());
    const Table live = ds_.table.WithAppendedRows(tail_.table).ValueOrDie();
    TableProfile p1 = TableProfile::Compute(live).ValueOrDie();
    ASSERT_TRUE(store->SaveTable("box", live, 1, p1, {}, kLineage).ok());
    ASSERT_EQ(store->stats().delta_checkpoints, 1u);
    const Table next = live.WithAppendedRows(tail_.table).ValueOrDie();
    TableProfile p2 = TableProfile::Compute(next).ValueOrDie();

    Status st;
    {
      ScopedFault fault(spec);
      ASSERT_TRUE(fault.status().ok()) << spec;
      st = store->SaveTable("box", next, 2, p2, {}, kLineage);
    }
    ASSERT_FALSE(st.ok()) << spec;
    // The base + delta chain up to generation 1 still replays exactly.
    StoredTable survived = store->LoadTable("box", kLineage).ValueOrDie();
    EXPECT_EQ(survived.generation, 1u) << spec;
    EXPECT_EQ(TableImage(survived.table), TableImage(live)) << spec;
    EXPECT_FALSE(DirHasTempLitter(dir)) << spec;
    // Healed: the chain extends past the failure.
    ASSERT_TRUE(store->SaveTable("box", next, 2, p2, {}, kLineage).ok())
        << spec;
    EXPECT_EQ(TableImage(store->LoadTable("box", kLineage).ValueOrDie().table),
              TableImage(next))
        << spec;
    ASSERT_TRUE(RemoveDirectory(dir).ok());
  }
}

TEST(CatalogFlusherTest, FailingStoreBacksOffInsteadOfHotLooping) {
  const std::string dir = UniqueDir("flusher_backoff");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  options.flush_interval_ms = 5;
  options.flush_backoff_initial_ms = 200;
  options.flush_backoff_max_ms = 400;
  options.degraded_after_failures = 0;  // isolate backoff from degraded mode
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());

  // Every store write fails until healed (the ScopedFault window below
  // ends at the heal point).
  std::optional<ScopedFault> fault;
  fault.emplace("store.write:p1.0");
  ASSERT_TRUE(fault->status().ok());
  const auto t0 = std::chrono::steady_clock::now();
  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());  // durability is pending, not failed

  // Retries keep coming (the table is requeued, never dropped) ...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (catalog.stats().flush_failures < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  CatalogStats stats = catalog.stats();
  ASSERT_GE(stats.flush_failures, 2u);
  EXPECT_EQ(stats.flush_backoff_tables, 1u);
  EXPECT_EQ(stats.dirty_tables, 1u);
  // ... but at the backoff pace, not the flusher interval: a hot loop at
  // 5ms would have logged ~elapsed/5 failures by now. The bound scales
  // with real elapsed time, so a stalled CI machine cannot trip it.
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LE(stats.flush_failures,
            2u + static_cast<uint64_t>(elapsed_ms) / 200u)
      << "elapsed " << elapsed_ms << "ms";

  // Heal: the next backoff retry lands, the entry clears, and the
  // appended generation is durable.
  fault.reset();
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (catalog.stats().flushed_tables < 1 &&
         std::chrono::steady_clock::now() < heal_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 1u);
  stats = catalog.stats();
  EXPECT_EQ(stats.flush_backoff_tables, 0u);
  EXPECT_EQ(stats.dirty_tables, 0u);
  catalog.StopFlusher();
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CatalogDegradedTest, TripsAfterKFailuresAndAutoClearsOnHeal) {
  const std::string dir = UniqueDir("degraded");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  options.flush_interval_ms = 5;
  options.flush_backoff_initial_ms = 10;
  options.flush_backoff_max_ms = 40;
  options.degraded_after_failures = 3;
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());

  std::optional<ScopedFault> fault;
  fault.emplace("store.write:p1.0");
  ASSERT_TRUE(fault->status().ok());
  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());

  // Three consecutive background failures trip the latch.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!catalog.Health().degraded &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  CatalogHealth health = catalog.Health();
  ASSERT_TRUE(health.degraded);
  EXPECT_GE(health.consecutive_failures, 3u);
  EXPECT_GT(health.retry_after_ms, 0u);

  // Degraded = read-only: writes are refused up front (nothing lands in
  // memory that the store could then never converge to), reads keep
  // serving.
  EXPECT_TRUE(
      catalog.Append("box", tail.table, &checkpoint).status().IsUnavailable());
  EXPECT_TRUE(catalog.SaveToStore("box").status().IsUnavailable());
  ASSERT_TRUE(catalog.Find("box").ok());
  EXPECT_EQ((*catalog.Find("box"))->state()->generation(), 1u);  // no new gen
  EXPECT_TRUE(catalog.stats().degraded);

  // Heal the store: the flusher's retry of the still-dirty table succeeds
  // and auto-clears the mode — no restart, no operator action.
  fault.reset();
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (catalog.Health().degraded &&
         std::chrono::steady_clock::now() < heal_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  health = catalog.Health();
  ASSERT_FALSE(health.degraded);
  EXPECT_EQ(health.consecutive_failures, 0u);
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 1u);

  // Writes flow again end to end.
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  catalog.StopFlusher();
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 2u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

}  // namespace
}  // namespace ziggy
