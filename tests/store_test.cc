// The persistence subsystem end to end:
//
//  * ZiggyStore — manifest lifecycle, checkpoint/load round trips, name
//    safety, atomic staging (no temp litter).
//  * Warm restart byte-identity — the acceptance bar of the store PR: a
//    server booted from a checkpoint renders CHARACTERIZE/VIEWS reports
//    byte-identical to the cold-profiled server that wrote it, including
//    after appends, and with a warm sketch cache whose first hit is exact.
//  * Corruption policy — table/profile damage fails cleanly and installs
//    nothing; sketch damage only costs warmth; legacy ZIGPROF1 profiles
//    are rejected with an explicit version error.
//  * Catalog integration — OpenFromStore, SaveToStore generations,
//    checkpoint-on-append, persist flags.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "engine/report.h"
#include "persist/fs_util.h"
#include "persist/manifest.h"
#include "persist/store.h"
#include "serve/catalog.h"
#include "serve/daemon/handler.h"
#include "storage/csv.h"

namespace ziggy {
namespace {

ServeOptions GoldenServeOptions() {
  ServeOptions options;
  options.engine.search.min_tightness = 0.4;
  options.engine.search.max_views = 10;
  return options;
}

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  return testing::TempDir() + "/ziggy_store_test_" + tag + "_" +
         std::to_string(++counter);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void FlipByte(const std::string& path, size_t offset) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x20);
  WriteFileBytes(path, bytes);
}

bool DirHasTempLitter(const std::string& dir) {
  namespace fs = std::filesystem;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------- manifest ----

TEST(ManifestTest, RoundTripAndValidation) {
  Manifest m;
  m.Upsert(ManifestEntry{"zeta", 3, true});
  m.Upsert(ManifestEntry{"alpha", 0, false});
  m.Upsert(ManifestEntry{"zeta", 4, false});  // replaces

  const std::string text = m.Serialize();
  Manifest parsed = Manifest::Parse(text).ValueOrDie();
  ASSERT_EQ(parsed.entries().size(), 2u);
  EXPECT_EQ(parsed.entries()[0].name, "alpha");  // sorted
  EXPECT_EQ(parsed.entries()[1].name, "zeta");
  EXPECT_EQ(parsed.entries()[1].generation, 4u);
  EXPECT_FALSE(parsed.entries()[1].has_sketches);

  EXPECT_TRUE(parsed.Remove("alpha"));
  EXPECT_FALSE(parsed.Remove("alpha"));

  EXPECT_FALSE(Manifest::Parse("").ok());
  EXPECT_FALSE(Manifest::Parse("not-a-manifest 1\n").ok());
  EXPECT_TRUE(Manifest::Parse("ziggy-store 99\n")
                  .status()
                  .IsFailedPrecondition());  // future version
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable x\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable a 1 2\n").ok());
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable a -3 0\n").ok());
  EXPECT_FALSE(
      Manifest::Parse("ziggy-store 1\ntable a 1 0\ntable a 2 0\n").ok());
  // Path-traversal names never survive parsing.
  EXPECT_FALSE(Manifest::Parse("ziggy-store 1\ntable .. 0 0\n").ok());
}

TEST(ManifestTest, StoreNameRejectsPathSpecials) {
  EXPECT_TRUE(IsValidStoreTableName("ok_Name-1.2"));
  EXPECT_FALSE(IsValidStoreTableName(""));
  EXPECT_FALSE(IsValidStoreTableName("."));
  EXPECT_FALSE(IsValidStoreTableName(".."));
  EXPECT_FALSE(IsValidStoreTableName("a/b"));
  EXPECT_FALSE(IsValidStoreTableName("has space"));
}

// -------------------------------------------------------------- store ----

TEST(ZiggyStoreTest, SaveLoadRoundTripIsExact) {
  const std::string dir = UniqueDir("roundtrip");
  auto store = ZiggyStore::Open(dir).ValueOrDie();

  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  TableProfile profile = TableProfile::Compute(ds.table).ValueOrDie();
  ASSERT_TRUE(store->SaveTable("box", ds.table, 0, profile, {}).ok());

  EXPECT_TRUE(store->Has("box"));
  EXPECT_FALSE(store->Has("nope"));
  EXPECT_EQ(store->StoredGeneration("box").ValueOrDie(), 0u);
  EXPECT_TRUE(store->StoredGeneration("nope").status().IsNotFound());

  StoredTable loaded = store->LoadTable("box").ValueOrDie();
  EXPECT_EQ(loaded.generation, 0u);
  EXPECT_EQ(loaded.table.num_rows(), ds.table.num_rows());
  EXPECT_EQ(loaded.table.schema(), ds.table.schema());
  EXPECT_TRUE(loaded.profile.Equals(profile));
  EXPECT_TRUE(loaded.sketches.empty());
  EXPECT_TRUE(loaded.sketches_status.ok());

  EXPECT_FALSE(DirHasTempLitter(dir));
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(ZiggyStoreTest, ReopenSeesPersistedManifest) {
  const std::string dir = UniqueDir("reopen");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  TableProfile profile = TableProfile::Compute(ds.table).ValueOrDie();
  {
    auto store = ZiggyStore::Open(dir).ValueOrDie();
    ASSERT_TRUE(store->SaveTable("box", ds.table, 2, profile, {}).ok());
  }
  auto reopened = ZiggyStore::Open(dir).ValueOrDie();
  ASSERT_EQ(reopened->List().size(), 1u);
  EXPECT_EQ(reopened->List()[0].name, "box");
  EXPECT_EQ(reopened->List()[0].generation, 2u);

  ASSERT_TRUE(reopened->RemoveTable("box").ok());
  EXPECT_TRUE(reopened->RemoveTable("box").IsNotFound());
  EXPECT_FALSE(PathExists(reopened->TableDir("box")));
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(ZiggyStoreTest, RejectsUnsafeNamesAndCorruptManifest) {
  const std::string dir = UniqueDir("names");
  auto store = ZiggyStore::Open(dir).ValueOrDie();
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  TableProfile profile = TableProfile::Compute(ds.table).ValueOrDie();
  EXPECT_TRUE(
      store->SaveTable("..", ds.table, 0, profile, {}).IsInvalidArgument());
  EXPECT_TRUE(
      store->SaveTable("a/b", ds.table, 0, profile, {}).IsInvalidArgument());

  WriteFileBytes(store->ManifestPath(), "garbage\n");
  EXPECT_FALSE(ZiggyStore::Open(dir).ok());
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// ------------------------------------------------- warm restart parity ----

TEST(StoreWarmRestartTest, WarmServerRendersByteIdenticalReports) {
  const std::string dir = UniqueDir("warm");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  const std::vector<std::string> queries = {
      ds.selection_predicate, "revenue_index > 1.0",
      "budget_0 > 0.5 AND budget_1 > 0.5", ds.selection_predicate};

  // Cold boot: profile computed from scratch; render, then checkpoint.
  auto cold =
      ZiggyServer::Create(ds.table, GoldenServeOptions()).ValueOrDie();
  const uint64_t cold_sid = cold->OpenSession();
  std::vector<std::string> cold_reports;
  const Schema& schema = cold->state()->table().schema();
  for (const std::string& q : queries) {
    auto result = cold->Characterize(cold_sid, q);
    ASSERT_TRUE(result.ok()) << q;
    cold_reports.push_back(RenderCharacterizationReport(*result, schema));
  }
  auto store = ZiggyStore::Open(dir).ValueOrDie();
  ASSERT_TRUE(store
                  ->SaveTable("box", cold->state()->table(),
                              cold->state()->generation(),
                              *cold->state()->profile,
                              cold->ExportSketchCache())
                  .ok());

  // Warm boot: checkpointed table + profile + sketch cache.
  StoredTable stored = store->LoadTable("box").ValueOrDie();
  ASSERT_TRUE(stored.sketches_status.ok());
  EXPECT_FALSE(stored.sketches.empty());
  auto warm = ZiggyServer::CreateFromState(std::move(stored.table),
                                           stored.generation,
                                           std::move(stored.profile),
                                           GoldenServeOptions())
                  .ValueOrDie();
  EXPECT_EQ(warm->WarmSketchCache(stored.sketches), stored.sketches.size());

  const uint64_t warm_sid = warm->OpenSession();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = warm->Characterize(warm_sid, queries[i]);
    ASSERT_TRUE(result.ok()) << queries[i];
    EXPECT_EQ(RenderCharacterizationReport(*result, schema), cold_reports[i])
        << "query " << i << " diverged after warm restart";
  }
  // The warmed cache served the repeats without a single scan miss.
  const ServeStats stats = warm->stats();
  EXPECT_EQ(stats.cache_warmed_entries, stored.sketches.size());
  EXPECT_EQ(stats.sketch_misses, 0u);
  EXPECT_GT(stats.sketch_exact_hits, 0u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(StoreWarmRestartTest, CheckpointAfterAppendRestoresGeneration) {
  const std::string dir = UniqueDir("gen");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  auto cold = ZiggyServer::Create(ds.table, GoldenServeOptions()).ValueOrDie();
  ASSERT_TRUE(cold->Append(tail.table).ok());
  ASSERT_TRUE(cold->Append(tail.table).ok());
  ASSERT_EQ(cold->state()->generation(), 2u);

  const uint64_t sid = cold->OpenSession();
  auto cold_result = cold->Characterize(sid, ds.selection_predicate);
  ASSERT_TRUE(cold_result.ok());
  const Schema& schema = cold->state()->table().schema();
  const std::string cold_report =
      RenderCharacterizationReport(*cold_result, schema);

  auto store = ZiggyStore::Open(dir).ValueOrDie();
  ASSERT_TRUE(store
                  ->SaveTable("box", cold->state()->table(), 2,
                              *cold->state()->profile, {})
                  .ok());

  StoredTable stored = store->LoadTable("box").ValueOrDie();
  EXPECT_EQ(stored.generation, 2u);
  EXPECT_EQ(stored.table.num_rows(), 2700u);
  auto warm = ZiggyServer::CreateFromState(std::move(stored.table), 2,
                                           std::move(stored.profile),
                                           GoldenServeOptions())
                  .ValueOrDie();
  EXPECT_EQ(warm->state()->generation(), 2u);
  const uint64_t warm_sid = warm->OpenSession();
  auto warm_result = warm->Characterize(warm_sid, ds.selection_predicate);
  ASSERT_TRUE(warm_result.ok());
  EXPECT_EQ(RenderCharacterizationReport(*warm_result, schema), cold_report);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// --------------------------------------------------- corruption policy ----

class StoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueDir("corrupt");
    auto store = ZiggyStore::Open(dir_).ValueOrDie();
    SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
    auto server =
        ZiggyServer::Create(ds.table, GoldenServeOptions()).ValueOrDie();
    const uint64_t sid = server->OpenSession();
    ASSERT_TRUE(server->Characterize(sid, ds.selection_predicate).ok());
    ASSERT_TRUE(store
                    ->SaveTable("box", server->state()->table(), 0,
                                *server->state()->profile,
                                server->ExportSketchCache())
                    .ok());
    store_ = std::move(store);
  }

  void TearDown() override {
    store_.reset();
    ASSERT_TRUE(RemoveDirectory(dir_).ok());
  }

  std::string dir_;
  std::unique_ptr<ZiggyStore> store_;
};

TEST_F(StoreCorruptionTest, CorruptTableFailsCleanlyAndInstallsNothing) {
  FlipByte(store_->TablePath("box", 0),
           ReadFileBytes(store_->TablePath("box", 0)).size() / 2);
  Result<StoredTable> loaded = store_->LoadTable("box");
  EXPECT_FALSE(loaded.ok());

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  // Attach to the same (damaged) store: OpenFromStore must fail without
  // publishing a table.
  ASSERT_TRUE(catalog.AttachStore(dir_).ok());
  EXPECT_FALSE(catalog.OpenFromStore("box").ok());
  EXPECT_EQ(catalog.num_tables(), 0u);
}

TEST_F(StoreCorruptionTest, OpenFallsBackToColdSourceWhenCheckpointIsBad) {
  // Availability over warmth: a damaged checkpoint must not make the name
  // unopenable when the OPEN carried a valid cold source.
  FlipByte(store_->TablePath("box", 0),
           ReadFileBytes(store_->TablePath("box", 0)).size() / 2);
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir_).ok());
  DaemonHandler handler(&catalog);
  auto open = LineProtocol::ParseRequest("OPEN box demo://boxoffice?seed=7");
  ASSERT_TRUE(open.ok());
  WireResponse reply = handler.Handle(*open);
  ASSERT_TRUE(reply.ok) << reply.body;
  EXPECT_EQ(reply.body,
            "{\"table\":\"box\",\"rows\":900,\"columns\":12,\"generation\":0}");
  EXPECT_EQ(catalog.stats().store_opens, 0u);  // the cold path served it
  EXPECT_EQ(catalog.num_tables(), 1u);
}

TEST_F(StoreCorruptionTest, TruncatedProfileFailsCleanly) {
  const std::string path = store_->ProfilePath("box", 0);
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 3));
  EXPECT_FALSE(store_->LoadTable("box").ok());
}

TEST_F(StoreCorruptionTest, WrongMagicProfileFailsCleanly) {
  WriteFileBytes(store_->ProfilePath("box", 0), "NOTAPROF-garbage-bytes");
  Result<StoredTable> loaded = store_->LoadTable("box");
  EXPECT_TRUE(loaded.status().IsParseError());
}

TEST_F(StoreCorruptionTest, LegacyProfileVersionExplicitlyRejected) {
  // A ZIGPROF1 payload must produce the version-mismatch error, not a
  // generic bad-magic parse error (satellite: the recompute note in
  // profile_io.cc becomes an actionable Status).
  std::string bytes = ReadFileBytes(store_->ProfilePath("box", 0));
  ASSERT_GE(bytes.size(), 8u);
  bytes[7] = '1';  // ZIGPROF2 -> ZIGPROF1
  WriteFileBytes(store_->ProfilePath("box", 0), bytes);
  Result<StoredTable> loaded = store_->LoadTable("box");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsFailedPrecondition()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("recompute"), std::string::npos);
}

TEST_F(StoreCorruptionTest, CorruptSketchesOnlyCostWarmth) {
  FlipByte(store_->SketchesPath("box", 0),
           ReadFileBytes(store_->SketchesPath("box", 0)).size() / 2);
  StoredTable loaded = store_->LoadTable("box").ValueOrDie();
  EXPECT_TRUE(loaded.sketches.empty());
  EXPECT_FALSE(loaded.sketches_status.ok());

  // The table still serves (cold cache) through the catalog.
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir_).ok());
  auto server = catalog.OpenFromStore("box");
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_EQ((*server)->stats().cache_warmed_entries, 0u);
}

TEST_F(StoreCorruptionTest, SketchBitFlipsNeverCrashOrInstall) {
  const std::string path = store_->SketchesPath("box", 0);
  const std::string bytes = ReadFileBytes(path);
  const size_t stride = bytes.size() / 256 + 1;
  for (size_t pos = 0; pos < bytes.size(); pos += stride) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    WriteFileBytes(path, mutated);
    StoredTable loaded = store_->LoadTable("box").ValueOrDie();
    // Either the flip was caught (cold boot) or it was inside a section
    // that still checksummed — impossible with CRC32 for a single flip.
    EXPECT_TRUE(loaded.sketches.empty()) << "pos=" << pos;
    EXPECT_FALSE(loaded.sketches_status.ok()) << "pos=" << pos;
  }
  WriteFileBytes(path, bytes);
}

TEST_F(StoreCorruptionTest, TruncatedTableEveryCutFailsCleanly) {
  const std::string path = store_->TablePath("box", 0);
  const std::string bytes = ReadFileBytes(path);
  for (size_t cut : {size_t{0}, size_t{4}, size_t{11}, bytes.size() / 4,
                     bytes.size() / 2, bytes.size() - 2}) {
    WriteFileBytes(path, bytes.substr(0, cut));
    EXPECT_FALSE(store_->LoadTable("box").ok()) << "cut=" << cut;
  }
  WriteFileBytes(path, bytes);
  EXPECT_TRUE(store_->LoadTable("box").ok());
}

// -------------------------------------------------- catalog integration ----

TEST(CatalogStoreTest, OpenFromStoreServesAndCounts) {
  const std::string dir = UniqueDir("catalog");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  EXPECT_FALSE(catalog.HasStore());
  EXPECT_TRUE(catalog.SaveToStore("box").status().IsFailedPrecondition());
  EXPECT_TRUE(catalog.SetPersist("box", true).IsFailedPrecondition());
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  EXPECT_TRUE(catalog.AttachStore(dir).IsFailedPrecondition());  // once

  ASSERT_TRUE(catalog.Open("box", ds.table).ok());
  EXPECT_TRUE(catalog.SaveToStore("nope").status().IsNotFound());
  EXPECT_EQ(catalog.SaveToStore("box").ValueOrDie(), 0u);
  EXPECT_TRUE(catalog.StoreHas("box"));

  // Close + warm reopen from the checkpoint.
  ASSERT_TRUE(catalog.Close("box").ok());
  auto warm = catalog.OpenFromStore("box");
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ((*warm)->state()->table().num_rows(), 900u);

  CatalogStats stats = catalog.stats();
  EXPECT_TRUE(stats.store_attached);
  EXPECT_EQ(stats.store_tables, 1u);
  EXPECT_EQ(stats.store_opens, 1u);
  EXPECT_EQ(stats.store_saves, 1u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CatalogStoreTest, AppendCheckpointsWhenPersistIsOn) {
  const std::string dir = UniqueDir("persist");
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  ASSERT_TRUE(catalog.Open("box", ds.table).ok());

  // Persist off: append does not checkpoint.
  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());
  EXPECT_FALSE(catalog.StoreHas("box"));

  // Persist on: the next append checkpoints generation 2.
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());
  ASSERT_TRUE(catalog.Append("box", tail.table, &checkpoint).ok());
  EXPECT_TRUE(checkpoint.ok());
  ASSERT_TRUE(catalog.StoreHas("box"));
  EXPECT_EQ(catalog.store()->StoredGeneration("box").ValueOrDie(), 2u);

  // only_if_newer: saving the same generation again is a no-op skip.
  EXPECT_EQ(catalog.SaveToStore("box", /*only_if_newer=*/true).ValueOrDie(),
            2u);
  EXPECT_EQ(catalog.stats().store_saves, 1u);  // still just the append's
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

}  // namespace
}  // namespace ziggy
