// Unit tests for CSV import/export (storage/csv.h).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/csv.h"

namespace ziggy {
namespace {

TEST(CsvTest, BasicParseWithHeader) {
  auto t = ReadCsvString("a,b,s\n1,2.5,x\n3,4.5,y\n").ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kNumeric);
  EXPECT_EQ(t.schema().field(2).type, ColumnType::kCategorical);
  EXPECT_DOUBLE_EQ(t.column(1).numeric_data()[1], 4.5);
  EXPECT_EQ(t.column(2).ValueAsString(0), "x");
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions opts;
  opts.has_header = false;
  auto t = ReadCsvString("1,foo\n2,bar\n", opts).ValueOrDie();
  EXPECT_EQ(t.schema().field(0).name, "col0");
  EXPECT_EQ(t.schema().field(1).name, "col1");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvTest, NullTokens) {
  auto t = ReadCsvString("a,s\nNA,x\n2,?\n,NULL\n").ValueOrDie();
  EXPECT_EQ(t.column(0).null_count(), 2u);
  EXPECT_EQ(t.column(1).null_count(), 2u);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndEscapes) {
  auto t = ReadCsvString("s\n\"a,b\"\n\"he said \"\"hi\"\"\"\n").ValueOrDie();
  EXPECT_EQ(t.column(0).ValueAsString(0), "a,b");
  EXPECT_EQ(t.column(0).ValueAsString(1), "he said \"hi\"");
}

TEST(CsvTest, UnterminatedQuoteIsParseError) {
  auto r = ReadCsvString("s\n\"unclosed\n");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, RaggedRecordIsParseError) {
  auto r = ReadCsvString("a,b\n1,2\n3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, EmptyInputIsParseError) {
  EXPECT_TRUE(ReadCsvString("").status().IsParseError());
  EXPECT_TRUE(ReadCsvString("\n\n").status().IsParseError());
}

TEST(CsvTest, TypeInferenceFallsBackWhenLaterRowsDisagree) {
  // Inference sample says numeric, a later row is textual: column must
  // gracefully become categorical.
  CsvOptions opts;
  opts.inference_rows = 2;
  std::string text = "a\n1\n2\n";
  for (int i = 0; i < 50; ++i) text += std::to_string(i) + "\n";
  text += "oops\n";
  auto t = ReadCsvString(text, opts).ValueOrDie();
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kCategorical);
  EXPECT_EQ(t.column(0).ValueAsString(0), "1");
}

TEST(CsvTest, AllNullColumnIsCategorical) {
  auto t = ReadCsvString("a,b\nNA,1\nNA,2\n").ValueOrDie();
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kCategorical);
  EXPECT_EQ(t.column(0).null_count(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  auto t = ReadCsvString("a;b\n1;2\n", opts).ValueOrDie();
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(t.column(1).numeric_data()[0], 2.0);
}

TEST(CsvTest, CrLfLineEndings) {
  auto t = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n").ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.column(0).numeric_data()[1], 3.0);
}

TEST(CsvTest, WriteReadRoundTrip) {
  auto t = ReadCsvString("num,txt\n1.5,alpha\n-2,\"with,comma\"\n,beta\n").ValueOrDie();
  const std::string serialized = WriteCsvString(t);
  auto t2 = ReadCsvString(serialized).ValueOrDie();
  ASSERT_EQ(t2.num_rows(), t.num_rows());
  ASSERT_EQ(t2.num_columns(), t.num_columns());
  EXPECT_DOUBLE_EQ(t2.column(0).numeric_data()[0], 1.5);
  EXPECT_TRUE(t2.column(0).IsNull(2));
  EXPECT_EQ(t2.column(1).ValueAsString(1), "with,comma");
}

TEST(CsvTest, FileRoundTrip) {
  auto t = ReadCsvString("x\n1\n2\n").ValueOrDie();
  const std::string path = testing::TempDir() + "/ziggy_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto t2 = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(t2.num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/path/data.csv").status().IsIOError());
}

TEST(CsvTest, NumericPrecisionSurvivesRoundTrip) {
  auto t = Table::FromColumns({Column::FromNumeric("v", {0.1, 1e-17, 12345678.9012345})})
               .ValueOrDie();
  auto t2 = ReadCsvString(WriteCsvString(t)).ValueOrDie();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(t2.column(0).numeric_data()[i], t.column(0).numeric_data()[i]);
  }
}

}  // namespace
}  // namespace ziggy
