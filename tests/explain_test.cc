// Unit tests for src/explain: view validation (significance aggregation)
// and rule-based text generation.

#include <gtest/gtest.h>

#include "common/random.h"
#include "explain/text.h"
#include "explain/validation.h"
#include "views/view_search.h"
#include "zig/component_builder.h"

namespace ziggy {
namespace {

struct ExplainFixture {
  Table table;
  Selection selection;
  TableProfile profile;
  ComponentTable components;
};

// Columns: up (planted high), down (planted low), flat (no shift),
// cat (skewed inside).
ExplainFixture MakeExplainFixture(uint64_t seed = 31) {
  Rng rng(seed);
  const size_t n = 500;
  std::vector<double> up(n);
  std::vector<double> down(n);
  std::vector<double> flat(n);
  std::vector<std::string> cat(n);
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inside = i < n / 5;
    if (inside) sel.Set(i);
    up[i] = (inside ? 2.0 : 0.0) + rng.Normal();
    down[i] = (inside ? -2.0 : 0.0) + rng.Normal();
    flat[i] = rng.Normal();
    cat[i] = (inside && rng.Bernoulli(0.7)) ? "special"
                                            : "c" + std::to_string(rng.UniformInt(0, 2));
  }
  Table t = Table::FromColumns(
                {Column::FromNumeric("up", up), Column::FromNumeric("down", down),
                 Column::FromNumeric("flat", flat), Column::FromStrings("cat", cat)})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  return {std::move(t), std::move(sel), std::move(p), std::move(ct)};
}

View MakeView(std::vector<size_t> cols, double p_value = 1.0) {
  View v;
  v.columns = std::move(cols);
  v.aggregated_p_value = p_value;
  return v;
}

// -------------------------------------------------------------- validation --

TEST(ValidationTest, CollectsPValuesOfCoveredComponents) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({0});
  auto ps = CollectViewPValues(v, fx.components);
  // Column 0 is numeric: mean-shift + dispersion-shift at least.
  EXPECT_GE(ps.size(), 2u);
}

TEST(ValidationTest, SignificantViewSurvives) {
  ExplainFixture fx = MakeExplainFixture();
  std::vector<View> views{MakeView({0})};
  ValidationOptions opts;
  const size_t dropped = ValidateViews(&views, fx.components, opts);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_LT(views[0].aggregated_p_value, 0.01);
}

TEST(ValidationTest, InsignificantViewDropped) {
  ExplainFixture fx = MakeExplainFixture();
  std::vector<View> views{MakeView({2})};  // flat column: no real shift
  ValidationOptions opts;
  opts.max_p_value = 1e-6;  // strict budget
  const size_t dropped = ValidateViews(&views, fx.components, opts);
  EXPECT_EQ(dropped, 1u);
  EXPECT_TRUE(views.empty());
}

TEST(ValidationTest, AnnotateOnlyModeKeepsViews) {
  ExplainFixture fx = MakeExplainFixture();
  std::vector<View> views{MakeView({2})};
  ValidationOptions opts;
  opts.max_p_value = 1e-9;
  opts.drop_insignificant = false;
  EXPECT_EQ(ValidateViews(&views, fx.components, opts), 0u);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_GT(views[0].aggregated_p_value, 1e-9);
}

TEST(ValidationTest, BonferroniIsMoreConservativeThanMinimum) {
  ExplainFixture fx = MakeExplainFixture();
  std::vector<View> v1{MakeView({0, 1})};
  std::vector<View> v2{MakeView({0, 1})};
  ValidationOptions min_opts;
  min_opts.method = CorrectionMethod::kMinimum;
  min_opts.drop_insignificant = false;
  ValidationOptions bonf_opts;
  bonf_opts.method = CorrectionMethod::kBonferroni;
  bonf_opts.drop_insignificant = false;
  ValidateViews(&v1, fx.components, min_opts);
  ValidateViews(&v2, fx.components, bonf_opts);
  EXPECT_LE(v1[0].aggregated_p_value, v2[0].aggregated_p_value + 1e-15);
}

// -------------------------------------------------------------------- text --

TEST(ExplainTest, HighValuesPhraseForPositiveShift) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({0}, 0.001);
  Explanation e = ExplainView(v, fx.components, fx.table.schema());
  EXPECT_NE(e.headline.find("particularly high values of up"), std::string::npos)
      << e.headline;
  EXPECT_NEAR(e.confidence, 0.999, 1e-9);
}

TEST(ExplainTest, LowValuesPhraseForNegativeShift) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({1}, 0.001);
  Explanation e = ExplainView(v, fx.components, fx.table.schema());
  EXPECT_NE(e.headline.find("particularly low values of down"), std::string::npos)
      << e.headline;
}

TEST(ExplainTest, CategoricalPhraseNamesCategory) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({3}, 0.001);
  Explanation e = ExplainView(v, fx.components, fx.table.schema());
  EXPECT_NE(e.headline.find("'special'"), std::string::npos) << e.headline;
}

TEST(ExplainTest, InsignificantComponentsNotVerbalized) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({2}, 0.9);  // flat column
  ExplainOptions opts;
  opts.max_p_value = 1e-6;
  Explanation e = ExplainView(v, fx.components, fx.table.schema(), opts);
  EXPECT_NE(e.headline.find("no single indicator"), std::string::npos) << e.headline;
  EXPECT_TRUE(e.details.empty());
}

TEST(ExplainTest, HeadlineComponentBudgetRespected) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({0, 1, 3}, 0.001);
  ExplainOptions opts;
  opts.max_headline_components = 1;
  Explanation e = ExplainView(v, fx.components, fx.table.schema(), opts);
  EXPECT_EQ(e.details.size(), 1u);
}

TEST(ExplainTest, DetailsAreVerifiable) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({0}, 0.001);
  Explanation e = ExplainView(v, fx.components, fx.table.schema());
  ASSERT_FALSE(e.details.empty());
  // Detail lines carry the raw inside/outside numbers and sample sizes.
  EXPECT_NE(e.details[0].find("inside"), std::string::npos);
  EXPECT_NE(e.details[0].find("n_in="), std::string::npos);
  EXPECT_NE(e.details[0].find("p="), std::string::npos);
}

TEST(ExplainTest, DetailsCanBeDisabled) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({0}, 0.001);
  ExplainOptions opts;
  opts.include_details = false;
  Explanation e = ExplainView(v, fx.components, fx.table.schema(), opts);
  EXPECT_TRUE(e.details.empty());
  EXPECT_FALSE(e.headline.empty());
}

TEST(ExplainTest, MultiColumnHeadlineListsAllColumns) {
  ExplainFixture fx = MakeExplainFixture();
  View v = MakeView({0, 1}, 0.001);
  Explanation e = ExplainView(v, fx.components, fx.table.schema());
  EXPECT_NE(e.headline.find("columns up and down"), std::string::npos) << e.headline;
}

TEST(DescribeComponentTest, EachKindRenders) {
  ExplainFixture fx = MakeExplainFixture();
  for (const auto& c : fx.components.components()) {
    const std::string d = DescribeComponent(c, fx.table.schema());
    EXPECT_NE(d.find(ComponentKindToString(c.kind)), std::string::npos);
    EXPECT_FALSE(d.empty());
  }
}

}  // namespace
}  // namespace ziggy
