// Cross-cutting property and fuzz tests:
//  * random tables survive CSV round trips bit-exactly,
//  * the vectorized predicate evaluator matches a naive row-at-a-time
//    reference interpreter on randomly generated predicates,
//  * the Mann-Whitney walk matches the O(n^2) definition,
//  * end-to-end invariants of the engine hold on random workloads.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "engine/ziggy_engine.h"
#include "query/parser.h"
#include "storage/csv.h"

namespace ziggy {
namespace {

// ------------------------------------------------------------ CSV fuzzing --

Table RandomTable(Rng* rng, size_t rows, size_t cols) {
  std::vector<Column> columns;
  for (size_t c = 0; c < cols; ++c) {
    if (rng->Bernoulli(0.6)) {
      std::vector<double> v(rows);
      for (double& x : v) {
        if (rng->Bernoulli(0.05)) {
          x = NullNumeric();
        } else if (rng->Bernoulli(0.1)) {
          x = rng->Uniform(-1e12, 1e12);  // extreme magnitudes
        } else {
          x = rng->Normal(0, 10);
        }
      }
      columns.push_back(Column::FromNumeric("n" + std::to_string(c), std::move(v)));
    } else {
      // Labels deliberately include CSV-hostile characters.
      static const std::vector<std::string> pool = {
          "plain", "with,comma", "with\"quote", "multi word", "x",
          "trailing ",  // trailing blank preserved by quoting
      };
      Column col = Column::Categorical("s" + std::to_string(c));
      for (size_t r = 0; r < rows; ++r) {
        if (rng->Bernoulli(0.05)) {
          col.AppendLabel("");
        } else {
          col.AppendLabel(pool[static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1))]);
        }
      }
      columns.push_back(std::move(col));
    }
  }
  return Table::FromColumns(std::move(columns)).ValueOrDie();
}

class CsvFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzProperty, RoundTripPreservesEveryCell) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 40 + static_cast<size_t>(rng.UniformInt(0, 60)),
                        1 + static_cast<size_t>(rng.UniformInt(0, 6)));
  Result<Table> back = ReadCsvString(WriteCsvString(t));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.column(c).IsNull(r)) {
        EXPECT_TRUE(back->column(c).IsNull(r)) << "col " << c << " row " << r;
      } else if (t.column(c).is_numeric()) {
        EXPECT_DOUBLE_EQ(back->column(c).numeric_data()[r],
                         t.column(c).numeric_data()[r]);
      } else {
        // Labels with trailing spaces may legitimately round-trip through
        // quoting; compare exactly.
        EXPECT_EQ(back->column(c).ValueAsString(r), t.column(c).ValueAsString(r));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// -------------------------------------------- reference predicate semantics --

// Reference interpreter: evaluates a random predicate description row by
// row, independent of the AST implementation.
struct RandomAtom {
  size_t col;
  int op;         // 0 <, 1 >, 2 =, 3 BETWEEN, 4 IS NULL
  double a, b;    // thresholds for numeric ops
  std::string label;  // for categorical equality
};

struct RandomPredicate {
  std::vector<RandomAtom> atoms;
  bool conjunctive;  // AND of atoms vs OR of atoms
  std::string text;
};

RandomPredicate MakeRandomPredicate(const Table& t, Rng* rng) {
  RandomPredicate p;
  p.conjunctive = rng->Bernoulli(0.5);
  const size_t n_atoms = 1 + static_cast<size_t>(rng->UniformInt(0, 2));
  std::vector<std::string> parts;
  for (size_t i = 0; i < n_atoms; ++i) {
    RandomAtom atom;
    atom.col =
        static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(t.num_columns()) - 1));
    const Column& col = t.column(atom.col);
    if (col.is_numeric()) {
      atom.op = static_cast<int>(rng->UniformInt(0, 3));
      atom.a = rng->Normal(0, 10);
      atom.b = atom.a + std::fabs(rng->Normal(0, 10));
      switch (atom.op) {
        case 0:
          parts.push_back(col.name() + " < " + FormatDouble(atom.a, 17));
          break;
        case 1:
          parts.push_back(col.name() + " > " + FormatDouble(atom.a, 17));
          break;
        case 2:
          parts.push_back(col.name() + " = " + FormatDouble(atom.a, 17));
          break;
        default:
          parts.push_back(col.name() + " BETWEEN " + FormatDouble(atom.a, 17) +
                          " AND " + FormatDouble(atom.b, 17));
      }
    } else if (rng->Bernoulli(0.3)) {
      atom.op = 4;
      parts.push_back(col.name() + " IS NULL");
    } else {
      atom.op = 2;
      atom.label = col.cardinality() > 0
                       ? col.dictionary()[static_cast<size_t>(rng->UniformInt(
                             0, static_cast<int64_t>(col.cardinality()) - 1))]
                       : "nope";
      parts.push_back(col.name() + " = '" + atom.label + "'");
    }
    p.atoms.push_back(std::move(atom));
  }
  p.text = Join(parts, p.conjunctive ? " AND " : " OR ");
  return p;
}

bool ReferenceAtomEval(const Table& t, const RandomAtom& atom, size_t row) {
  const Column& col = t.column(atom.col);
  if (atom.op == 4) return col.IsNull(row);
  if (col.IsNull(row)) return false;
  if (col.is_numeric()) {
    const double v = col.numeric_data()[row];
    switch (atom.op) {
      case 0:
        return v < atom.a;
      case 1:
        return v > atom.a;
      case 2:
        return v == atom.a;
      default:
        return v >= atom.a && v <= atom.b;
    }
  }
  return col.dictionary()[static_cast<size_t>(col.codes()[row])] == atom.label;
}

class PredicateSemanticsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateSemanticsProperty, VectorizedMatchesReference) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 200, 5);
  for (int trial = 0; trial < 20; ++trial) {
    RandomPredicate p = MakeRandomPredicate(t, &rng);
    Result<ExprPtr> parsed = ParsePredicate(p.text);
    ASSERT_TRUE(parsed.ok()) << p.text << ": " << parsed.status();
    Result<Selection> got = (*parsed)->Evaluate(t);
    ASSERT_TRUE(got.ok()) << p.text;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      bool expected = p.conjunctive;
      for (const auto& atom : p.atoms) {
        const bool v = ReferenceAtomEval(t, atom, r);
        expected = p.conjunctive ? (expected && v) : (expected || v);
      }
      ASSERT_EQ(got->Contains(r), expected)
          << "row " << r << " predicate: " << p.text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateSemanticsProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

// ------------------------------------------------ Mann-Whitney brute force --

class RankShiftProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankShiftProperty, CliffsDeltaMatchesBruteForce) {
  Rng rng(GetParam());
  const size_t n = 120;
  std::vector<double> data(n);
  for (double& v : data) {
    // Coarse grid to force plenty of ties.
    v = std::round(rng.Normal(0, 2));
  }
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.35)) sel.Set(i);
  }
  if (sel.Count() < 3 || sel.Count() > n - 3) GTEST_SKIP();

  Table t = Table::FromColumns({Column::FromNumeric("x", data)}).ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  const ZigComponent* rank = ct.Find(ComponentKind::kRankShift, 0);
  ASSERT_NE(rank, nullptr);

  // O(n^2) reference: count pairs with inside > outside (+ half-ties).
  double u = 0.0;
  int64_t n_in = 0;
  int64_t n_out = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!sel.Contains(i)) continue;
    ++n_in;
    for (size_t j = 0; j < n; ++j) {
      if (sel.Contains(j)) continue;
      if (data[i] > data[j]) u += 1.0;
      if (data[i] == data[j]) u += 0.5;
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (!sel.Contains(j)) ++n_out;
  }
  const double delta_ref =
      2.0 * u / (static_cast<double>(n_in) * static_cast<double>(n_out)) - 1.0;
  EXPECT_NEAR(rank->effect.value, delta_ref, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankShiftProperty,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

// ----------------------------------------------------- engine invariants ----

class EngineInvariantProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineInvariantProperty, RandomWorkloadRespectsContracts) {
  SyntheticDataset ds = MakeBoxOfficeDataset(GetParam()).ValueOrDie();
  Rng rng(GetParam() * 31);
  auto workload = GenerateWorkload(ds.table, 8, &rng);
  ZiggyOptions opts;
  opts.search.min_tightness = 0.25;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  for (const auto& q : workload) {
    Result<Characterization> r = engine.CharacterizeQuery(q);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsFailedPrecondition()) << q;
      continue;
    }
    EXPECT_EQ(r->inside_count + r->outside_count,
              static_cast<int64_t>(engine.table().num_rows()));
    std::set<size_t> seen;
    double prev_score = std::numeric_limits<double>::infinity();
    for (const auto& cv : r->views) {
      // Sorted by score, disjoint, tight, significant, in-bounds.
      EXPECT_LE(cv.view.score.total, prev_score + 1e-12);
      prev_score = cv.view.score.total;
      EXPECT_GE(cv.view.score.total, 0.0);
      EXPECT_LE(cv.view.score.total, 1.0);
      EXPECT_LE(cv.view.aggregated_p_value, opts.validation.max_p_value);
      if (cv.view.columns.size() > 1) {
        EXPECT_GE(cv.view.tightness, opts.search.min_tightness - 1e-9);
      }
      for (size_t c : cv.view.columns) {
        EXPECT_LT(c, engine.table().num_columns());
        EXPECT_TRUE(seen.insert(c).second);
      }
      EXPECT_FALSE(cv.explanation.headline.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariantProperty,
                         ::testing::Values(3, 6, 9, 12));

}  // namespace
}  // namespace ziggy
