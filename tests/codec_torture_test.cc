// Torture-tests every on-disk format through the shared harness
// (tests/codec_torture.h): ZIGTBL01/ZIGTBL02 tables (the v2 both with
// inline and pooled dictionaries), ZIGDLT01/ZIGDLT02 delta segments,
// ZIGSKC01 sketch snapshots, and ZIGDIC01 pooled dictionary files. Each
// format first proves the unmutated image round-trips (so a codec that
// rejects everything cannot pass), then survives every-offset
// truncation, exhaustive bit flips, and random splices with a clean
// rejection each time. The store-level sketch run additionally pins the
// degrade contract: a damaged sketch file never installs entries and
// never fails the table load.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codec_torture.h"
#include "data/synthetic.h"
#include "persist/dict_pool.h"
#include "persist/fs_util.h"
#include "persist/sketch_codec.h"
#include "persist/store.h"
#include "serve/ziggy_server.h"
#include "storage/table_io.h"

namespace ziggy {
namespace {

Table MakeMixedTable() {
  std::vector<Column> columns;
  columns.push_back(Column::FromNumeric(
      "num", {1.5, -2.25, NullNumeric(), 0.0, 1e300, -0.0}));
  columns.push_back(
      Column::FromStrings("cat", {"red", "", "blue", "red", "green", "blue"}));
  columns.push_back(Column::FromNumeric(
      "num2", {0.1, 0.2, 0.3, 0.4, 0.5, std::nextafter(1.0, 2.0)}));
  return Table::FromColumns(std::move(columns)).ValueOrDie();
}

std::string SerializeTable(const Table& table, const TableWriteOptions& opts) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(WriteTable(table, &out, opts).ok());
  return out.str();
}

Result<Table> ParseTable(const std::string& bytes,
                         const TableReadOptions& opts = {}) {
  std::istringstream in(bytes, std::ios::binary);
  return ReadTable(&in, opts);
}

// ------------------------------------------------------------ tables ----

TEST(CodecTortureTest, TableV1) {
  const Table table = MakeMixedTable();
  const std::string image = SerializeTable(table, {});
  ASSERT_TRUE(ParseTable(image).ok());
  torture::TortureImage("ZIGTBL01", image, [](const std::string& bytes) {
    return !ParseTable(bytes).ok();
  });
}

TEST(CodecTortureTest, TableV2Inline) {
  const Table table = MakeMixedTable();
  TableWriteOptions write;
  write.compress = true;
  const std::string image = SerializeTable(table, write);
  ASSERT_TRUE(ParseTable(image).ok());
  torture::TortureImage("ZIGTBL02/inline", image, [](const std::string& bytes) {
    return !ParseTable(bytes).ok();
  });
}

TEST(CodecTortureTest, TableV2ExternalDict) {
  const std::string dir =
      testing::TempDir() + "/ziggy_codec_torture_extdict";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  auto pool = DictPool::Open(dir).ValueOrDie();

  const Table table = MakeMixedTable();
  TableWriteOptions write;
  write.compress = true;
  const DictRef ref = pool->Acquire(table.column(1).dictionary()).ValueOrDie();
  write.external_dicts[1] = ref;
  const std::string image = SerializeTable(table, write);

  TableReadOptions read;
  DictPool* raw_pool = pool.get();
  read.resolve_dict = [raw_pool](const DictRef& r) {
    return raw_pool->Resolve(r);
  };
  ASSERT_TRUE(ParseTable(image, read).ok());
  // Without a resolver the external reference must fail cleanly, not
  // crash or fall back to a wrong dictionary.
  EXPECT_FALSE(ParseTable(image).ok());

  torture::TortureImage(
      "ZIGTBL02/external-dict", image,
      [&read](const std::string& bytes) { return !ParseTable(bytes, read).ok(); });
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(CodecTortureTest, TableV2LargeSampled) {
  // A synthetic fixture exercises wide numeric payloads and a real
  // dictionary through the compressed codecs; the harness strides.
  SyntheticDataset ds = MakeBoxOfficeDataset(7, /*value_decimals=*/3)
                            .ValueOrDie();
  TableWriteOptions write;
  write.compress = true;
  const std::string image = SerializeTable(ds.table, write);
  ASSERT_TRUE(ParseTable(image).ok());
  torture::TortureImage("ZIGTBL02/large", image, [](const std::string& bytes) {
    return !ParseTable(bytes).ok();
  });
}

// ----------------------------------------------------- delta segments ----

Table MakeAppendTail() {
  std::vector<Column> columns;
  columns.push_back(Column::FromNumeric("num", {9.75, NullNumeric(), -3.5}));
  columns.push_back(Column::FromStrings("cat", {"violet", "red", ""}));
  columns.push_back(Column::FromNumeric("num2", {0.6, -0.0, 7e-200}));
  return Table::FromColumns(std::move(columns)).ValueOrDie();
}

std::vector<size_t> DictSizesOf(const Table& table) {
  std::vector<size_t> sizes(table.num_columns(), 0);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).is_categorical()) {
      sizes[c] = table.column(c).dictionary().size();
    }
  }
  return sizes;
}

void TortureDelta(const char* label, bool compress) {
  const Table base = MakeMixedTable();
  const Table live = base.WithAppendedRows(MakeAppendTail()).ValueOrDie();
  std::ostringstream out(std::ios::binary);
  TableWriteOptions write;
  write.compress = compress;
  ASSERT_TRUE(
      WriteTableDelta(live, base.num_rows(), DictSizesOf(base), &out, write)
          .ok());
  const std::string image = out.str();

  auto apply = [&base](const std::string& bytes) {
    std::istringstream in(bytes, std::ios::binary);
    return ApplyTableDelta(base, &in);
  };
  ASSERT_TRUE(apply(image).ok());
  torture::TortureImage(label, image, [&apply](const std::string& bytes) {
    return !apply(bytes).ok();
  });
}

TEST(CodecTortureTest, DeltaV1) { TortureDelta("ZIGDLT01", false); }
TEST(CodecTortureTest, DeltaV2) { TortureDelta("ZIGDLT02", true); }

// ------------------------------------------------- pooled dictionaries ----

TEST(CodecTortureTest, PooledDictionary) {
  const std::vector<std::string> labels = {"alpha", "beta", "gamma", "delta",
                                           "epsilon"};
  const uint64_t hash = DictPool::ChainHash(labels);
  const std::string image = DictPool::SerializeDict(labels).ValueOrDie();
  ASSERT_TRUE(DictPool::ParseDict(image, hash).ok());
  torture::TortureImage("ZIGDIC01", image, [hash](const std::string& bytes) {
    return !DictPool::ParseDict(bytes, hash).ok();
  });
}

// ---------------------------------------------------- sketch snapshots ----

struct SketchFixture {
  Table table;
  TableProfile profile;
  std::string image;
};

SketchFixture MakeSketchFixture() {
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  ServeOptions options;
  options.engine.search.min_tightness = 0.4;
  options.engine.search.max_views = 10;
  auto server = ZiggyServer::Create(ds.table, options).ValueOrDie();
  const uint64_t sid = server->OpenSession();
  EXPECT_TRUE(server->Characterize(sid, ds.selection_predicate).ok());
  const std::vector<PersistedSketch> sketches = server->ExportSketchCache();
  EXPECT_FALSE(sketches.empty());

  SketchFixture fx{server->state()->table(), *server->state()->profile, ""};
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(WriteSketches(&out, 0, fx.table.num_rows(), sketches).ok());
  fx.image = out.str();
  return fx;
}

TEST(CodecTortureTest, SketchSnapshot) {
  const SketchFixture fx = MakeSketchFixture();
  auto parse = [&fx](const std::string& bytes) {
    std::istringstream in(bytes, std::ios::binary);
    return ReadSketches(&in, fx.table, fx.profile);
  };
  {
    Result<LoadedSketches> ok = parse(fx.image);
    ASSERT_TRUE(ok.ok()) << ok.status();
    ASSERT_FALSE(ok->entries.empty());
  }
  torture::TortureImage("ZIGSKC01", fx.image, [&parse](const std::string& bytes) {
    return !parse(bytes).ok();
  });
}

TEST(CodecTortureTest, SketchStoreDegradeNeverInstalls) {
  // Store-level contract: sketch damage costs warmth, never the table.
  // Every corruption must load the table fine with zero sketch entries
  // installed and the error reported out of band.
  const std::string dir =
      testing::TempDir() + "/ziggy_codec_torture_sketch_store";
  auto store = ZiggyStore::Open(dir).ValueOrDie();

  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  ServeOptions options;
  options.engine.search.min_tightness = 0.4;
  options.engine.search.max_views = 10;
  auto server = ZiggyServer::Create(ds.table, options).ValueOrDie();
  const uint64_t sid = server->OpenSession();
  ASSERT_TRUE(server->Characterize(sid, ds.selection_predicate).ok());
  ASSERT_TRUE(store
                  ->SaveTable("box", server->state()->table(), 0,
                              *server->state()->profile,
                              server->ExportSketchCache())
                  .ok());

  const std::string path = store->SketchesPath("box", 0);
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    image = buf.str();
  }
  ASSERT_FALSE(image.empty());

  // Whole-store loads are slow; a strided schedule still covers header,
  // entry bitmaps, statistics payloads, and CRCs.
  torture::TortureOptions opts;
  opts.exhaustive_flip_bytes = 0;
  opts.sampled_flips = 64;
  opts.exhaustive_truncation_bytes = 0;
  opts.sampled_truncations = 64;
  opts.splices = 16;
  torture::TortureImage(
      "ZIGSKC01/store", image, [&](const std::string& bytes) {
        {
          std::ofstream out(path, std::ios::binary | std::ios::trunc);
          out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        }
        Result<StoredTable> loaded = store->LoadTable("box");
        // Contained = table loads, nothing installed, error surfaced.
        return loaded.ok() && loaded->sketches.empty() &&
               !loaded->sketches_status.ok();
      },
      opts);

  store.reset();
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

}  // namespace
}  // namespace ziggy
