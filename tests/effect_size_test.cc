// Unit tests for stats/effect_size.h (Hedges & Olkin effect sizes).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/effect_size.h"

namespace ziggy {
namespace {

NumericStats StatsOf(const std::vector<double>& v) {
  NumericStats s;
  for (double x : v) s.Add(x);
  return s;
}

NumericStats SampledNormal(Rng* rng, int n, double mean, double sd) {
  NumericStats s;
  for (int i = 0; i < n; ++i) s.Add(rng->Normal(mean, sd));
  return s;
}

// ------------------------------------------- standardized mean difference --

TEST(MeanDifferenceTest, SignConvention) {
  Rng rng(1);
  NumericStats inside = SampledNormal(&rng, 200, 5.0, 1.0);
  NumericStats outside = SampledNormal(&rng, 200, 3.0, 1.0);
  EffectSize e = StandardizedMeanDifference(inside, outside);
  ASSERT_TRUE(e.defined);
  EXPECT_GT(e.value, 0.0);  // inside larger -> positive
  EffectSize flipped = StandardizedMeanDifference(outside, inside);
  EXPECT_LT(flipped.value, 0.0);
}

TEST(MeanDifferenceTest, MagnitudeApproximatesCohensD) {
  Rng rng(2);
  // True d = (7 - 5) / 1 = 2.
  NumericStats inside = SampledNormal(&rng, 5000, 7.0, 1.0);
  NumericStats outside = SampledNormal(&rng, 5000, 5.0, 1.0);
  EffectSize e = StandardizedMeanDifference(inside, outside);
  EXPECT_NEAR(e.value, 2.0, 0.1);
}

TEST(MeanDifferenceTest, HedgesCorrectionShrinksSmallSamples) {
  // With equal summary moments, small-n g must be smaller than large-n g
  // (J < 1 and increasing in dof).
  NumericStats small_in = StatsOf({1, 2, 3});
  NumericStats small_out = StatsOf({4, 5, 6});
  NumericStats big_in;
  NumericStats big_out;
  for (int rep = 0; rep < 100; ++rep) {
    for (double v : {1.0, 2.0, 3.0}) big_in.Add(v);
    for (double v : {4.0, 5.0, 6.0}) big_out.Add(v);
  }
  const double g_small = std::fabs(StandardizedMeanDifference(small_in, small_out).value);
  const double g_big = std::fabs(StandardizedMeanDifference(big_in, big_out).value);
  EXPECT_LT(g_small, g_big);
}

TEST(MeanDifferenceTest, UndefinedOnTinySamples) {
  NumericStats one = StatsOf({1.0});
  NumericStats many = StatsOf({1, 2, 3});
  EXPECT_FALSE(StandardizedMeanDifference(one, many).defined);
  EXPECT_EQ(StandardizedMeanDifference(one, many).PValue(), 1.0);
}

TEST(MeanDifferenceTest, ZeroVarianceDegenerateCases) {
  NumericStats a = StatsOf({2, 2, 2});
  NumericStats b = StatsOf({2, 2, 2});
  EXPECT_FALSE(StandardizedMeanDifference(a, b).defined);  // identical points
  NumericStats c = StatsOf({3, 3, 3});
  EffectSize e = StandardizedMeanDifference(c, a);
  ASSERT_TRUE(e.defined);
  EXPECT_GT(e.value, 1e5);  // saturated effect
}

TEST(MeanDifferenceTest, StdErrorShrinksWithN) {
  Rng rng(3);
  NumericStats small_in = SampledNormal(&rng, 20, 1.0, 1.0);
  NumericStats small_out = SampledNormal(&rng, 20, 0.0, 1.0);
  NumericStats big_in = SampledNormal(&rng, 2000, 1.0, 1.0);
  NumericStats big_out = SampledNormal(&rng, 2000, 0.0, 1.0);
  EXPECT_GT(StandardizedMeanDifference(small_in, small_out).std_error,
            StandardizedMeanDifference(big_in, big_out).std_error);
}

// ------------------------------------------------------- dispersion shift --

TEST(LogStdDevRatioTest, KnownRatio) {
  Rng rng(4);
  NumericStats inside = SampledNormal(&rng, 4000, 0.0, 2.0);
  NumericStats outside = SampledNormal(&rng, 4000, 0.0, 1.0);
  EffectSize e = LogStdDevRatio(inside, outside);
  ASSERT_TRUE(e.defined);
  EXPECT_NEAR(e.value, std::log(2.0), 0.05);
}

TEST(LogStdDevRatioTest, EqualDispersionIsNearZero) {
  Rng rng(5);
  NumericStats a = SampledNormal(&rng, 3000, 5.0, 1.5);
  NumericStats b = SampledNormal(&rng, 3000, -5.0, 1.5);  // mean is irrelevant
  EXPECT_NEAR(LogStdDevRatio(a, b).value, 0.0, 0.06);
}

TEST(LogStdDevRatioTest, BothZeroVarianceUndefined) {
  NumericStats a = StatsOf({1, 1, 1});
  NumericStats b = StatsOf({2, 2, 2});
  EXPECT_FALSE(LogStdDevRatio(a, b).defined);
}

TEST(LogStdDevRatioTest, OneSideZeroVarianceSaturates) {
  NumericStats a = StatsOf({1, 2, 3});
  NumericStats b = StatsOf({2, 2, 2});
  EffectSize e = LogStdDevRatio(a, b);
  ASSERT_TRUE(e.defined);
  EXPECT_GT(e.value, 1e5);
}

// ------------------------------------------------------ correlation shift --

TEST(FisherZTest, KnownValuesAndClamping) {
  EXPECT_NEAR(FisherZ(0.0), 0.0, 1e-15);
  EXPECT_NEAR(FisherZ(0.5), 0.5493061443340549, 1e-12);
  EXPECT_TRUE(std::isfinite(FisherZ(1.0)));
  EXPECT_TRUE(std::isfinite(FisherZ(-1.0)));
}

TEST(CorrelationDifferenceTest, SignAndScale) {
  EffectSize e = CorrelationDifference(0.8, 500, 0.2, 500);
  ASSERT_TRUE(e.defined);
  EXPECT_NEAR(e.value, FisherZ(0.8) - FisherZ(0.2), 1e-12);
  EXPECT_NEAR(e.std_error, std::sqrt(2.0 / 497.0), 1e-12);
  EXPECT_LT(e.PValue(), 1e-6);
}

TEST(CorrelationDifferenceTest, EqualCorrelationsNotSignificant) {
  EffectSize e = CorrelationDifference(0.5, 100, 0.5, 100);
  ASSERT_TRUE(e.defined);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.PValue(), 1.0);
}

TEST(CorrelationDifferenceTest, UndefinedBelowFourSamples) {
  EXPECT_FALSE(CorrelationDifference(0.9, 3, 0.1, 100).defined);
  EXPECT_FALSE(CorrelationDifference(0.9, 100, 0.1, 3).defined);
}

// -------------------------------------------------------- frequency shift --

TEST(FrequencyShiftTest, IdenticalDistributionsSmall) {
  std::vector<int64_t> a{100, 200, 300};
  EffectSize e = FrequencyShift(a, a);
  ASSERT_TRUE(e.defined);
  EXPECT_NEAR(e.value, 0.0, 1e-9);
}

TEST(FrequencyShiftTest, StrongShiftIsLarge) {
  std::vector<int64_t> inside{900, 50, 50};
  std::vector<int64_t> outside{100, 450, 450};
  EffectSize e = FrequencyShift(inside, outside);
  ASSERT_TRUE(e.defined);
  EXPECT_GT(e.value, 1.0);
  EXPECT_LT(e.PValue(), 1e-10);
}

TEST(FrequencyShiftTest, UndefinedOnMismatchedOrTinyInputs) {
  EXPECT_FALSE(FrequencyShift({1, 2}, {1, 2, 3}).defined);
  EXPECT_FALSE(FrequencyShift({}, {}).defined);
  EXPECT_FALSE(FrequencyShift({1, 0}, {500, 500}).defined);
}

TEST(FrequencyShiftTest, SmoothingHandlesEmptyOutsideCategory) {
  // Outside has zero mass on category 2; smoothing must keep w finite.
  std::vector<int64_t> inside{10, 10, 80};
  std::vector<int64_t> outside{50, 50, 0};
  EffectSize e = FrequencyShift(inside, outside);
  ASSERT_TRUE(e.defined);
  EXPECT_TRUE(std::isfinite(e.value));
  EXPECT_GT(e.value, 0.5);
}

// ------------------------------------------------------------ Cliff's delta --

TEST(CliffsDeltaTest, FullDominance) {
  // Every inside value beats every outside value: U = n1*n2, delta = 1.
  EffectSize e = CliffsDelta(100.0 * 200.0, 100, 200);
  ASSERT_TRUE(e.defined);
  EXPECT_DOUBLE_EQ(e.value, 1.0);
  EXPECT_LT(e.PValue(), 1e-10);
}

TEST(CliffsDeltaTest, NoDominance) {
  EffectSize e = CliffsDelta(0.5 * 100.0 * 200.0, 100, 200);
  ASSERT_TRUE(e.defined);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.PValue(), 1.0);
}

TEST(CliffsDeltaTest, StandardErrorMatchesMannWhitneyApprox) {
  EffectSize e = CliffsDelta(0.0, 50, 70);
  ASSERT_TRUE(e.defined);
  EXPECT_NEAR(e.std_error, std::sqrt((50.0 + 70.0 + 1.0) / (3.0 * 50.0 * 70.0)), 1e-12);
  EXPECT_DOUBLE_EQ(e.value, -1.0);
}

TEST(CliffsDeltaTest, UndefinedOnTinySamples) {
  EXPECT_FALSE(CliffsDelta(1.0, 1, 100).defined);
  EXPECT_FALSE(CliffsDelta(1.0, 100, 1).defined);
}

// -------------------------------------------------------- DistributionShift --

TEST(DistributionShiftEffectTest, ValueIsClampedTv) {
  EffectSize e = DistributionShift(0.4, 16, 100, 900);
  ASSERT_TRUE(e.defined);
  EXPECT_DOUBLE_EQ(e.value, 0.4);
  EXPECT_GT(e.std_error, 0.0);
  EXPECT_DOUBLE_EQ(DistributionShift(1.7, 16, 100, 900).value, 1.0);
}

TEST(DistributionShiftEffectTest, UndefinedOnDegenerateInputs) {
  EXPECT_FALSE(DistributionShift(0.4, 1, 100, 900).defined);
  EXPECT_FALSE(DistributionShift(0.4, 16, 1, 900).defined);
}

// --------------------------------------------------------------- EffectSize --

TEST(EffectSizeTest, ZStatisticAndPValueConsistency) {
  EffectSize e;
  e.defined = true;
  e.value = 1.96;
  e.std_error = 1.0;
  EXPECT_NEAR(e.ZStatistic(), 1.96, 1e-12);
  EXPECT_NEAR(e.PValue(), 0.05, 0.001);
}

TEST(EffectSizeTest, UndefinedYieldsNeutralOutputs) {
  EffectSize e;
  EXPECT_DOUBLE_EQ(e.ZStatistic(), 0.0);
  EXPECT_DOUBLE_EQ(e.PValue(), 1.0);
}

// Property: p-values are smaller for larger samples at fixed true effect.
class EffectPowerProperty : public ::testing::TestWithParam<int> {};

TEST_P(EffectPowerProperty, PValueShrinksWithSampleSize) {
  const int n = GetParam();
  Rng rng(42);
  NumericStats in_small = SampledNormal(&rng, n, 0.4, 1.0);
  NumericStats out_small = SampledNormal(&rng, n, 0.0, 1.0);
  NumericStats in_big = SampledNormal(&rng, n * 16, 0.4, 1.0);
  NumericStats out_big = SampledNormal(&rng, n * 16, 0.0, 1.0);
  const double p_small = StandardizedMeanDifference(in_small, out_small).PValue();
  const double p_big = StandardizedMeanDifference(in_big, out_big).PValue();
  EXPECT_LT(p_big, p_small + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EffectPowerProperty, ::testing::Values(30, 60, 120));

}  // namespace
}  // namespace ziggy
