// Wire-protocol tests: parser/serializer round trips, per-verb arity,
// framing (LineReader) under chunked, CRLF, and oversized input, and a
// deterministic fuzz pass — random and mutated lines must never crash the
// parser and must produce clean error statuses, because the daemon feeds
// it bytes from arbitrary peers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "engine/json.h"
#include "serve/protocol.h"

namespace ziggy {
namespace {

Result<WireRequest> Parse(const std::string& line) {
  return LineProtocol::ParseRequest(line);
}

TEST(VerbTest, RoundTripsEveryVerb) {
  for (Verb verb : {Verb::kOpen, Verb::kList, Verb::kCharacterize, Verb::kViews,
                    Verb::kAppend, Verb::kStats, Verb::kSave, Verb::kPersist,
                    Verb::kClose, Verb::kHealth, Verb::kHello, Verb::kQuit,
                    Verb::kMetrics}) {
    Result<Verb> parsed = VerbFromString(VerbToString(verb));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, verb);
  }
  EXPECT_FALSE(VerbFromString("FROBNICATE").ok());
  EXPECT_FALSE(VerbFromString("").ok());
}

TEST(VerbTableTest, TableIsTheSingleSourceOfTruth) {
  const auto& table = VerbTable();
  ASSERT_EQ(table.size(), 13u);
  for (size_t i = 0; i < table.size(); ++i) {
    const VerbInfo& info = table[i];
    // Row order mirrors the enum so VerbInfoOf and the handler dispatch
    // table can both index by static_cast<size_t>(verb).
    EXPECT_EQ(static_cast<size_t>(info.verb), i) << info.name;
    EXPECT_EQ(&VerbInfoOf(info.verb), &info);
    // Every row's name must round-trip through the parser.
    Result<Verb> parsed = VerbFromString(info.name);
    ASSERT_TRUE(parsed.ok()) << info.name;
    EXPECT_EQ(*parsed, info.verb);
    EXPECT_EQ(VerbToString(info.verb), info.name);
    EXPECT_LE(info.min_args, info.max_args) << info.name;
    if (info.trailing_joined) {
      // A joined tail needs at least one argument to join into.
      EXPECT_GE(info.max_args, 1u) << info.name;
    }
    ASSERT_NE(info.summary, nullptr);
    EXPECT_NE(*info.summary, '\0') << info.name;
  }
  // Spot-check the retry-safety flags the client derives from the table.
  EXPECT_TRUE(VerbInfoOf(Verb::kList).idempotent);
  EXPECT_TRUE(VerbInfoOf(Verb::kHello).idempotent);
  EXPECT_FALSE(VerbInfoOf(Verb::kAppend).idempotent);
  EXPECT_TRUE(VerbInfoOf(Verb::kAppend).mutating);
  EXPECT_FALSE(VerbInfoOf(Verb::kHealth).mutating);
}

TEST(VerbTableTest, MetricsVerbIsPinned) {
  // METRICS is part of the stable wire surface: a scrape must be safe to
  // retry and must never mutate the server, and its only argument is the
  // optional format selector.
  const VerbInfo& info = VerbInfoOf(Verb::kMetrics);
  EXPECT_STREQ(info.name, "METRICS");
  EXPECT_EQ(info.min_args, 0u);
  EXPECT_EQ(info.max_args, 1u);
  EXPECT_FALSE(info.trailing_joined);
  EXPECT_FALSE(info.mutating);
  EXPECT_TRUE(info.idempotent);

  auto bare = Parse("METRICS");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->verb, Verb::kMetrics);
  EXPECT_TRUE(bare->args.empty());
  auto with_format = Parse("METRICS prometheus");
  ASSERT_TRUE(with_format.ok());
  ASSERT_EQ(with_format->args.size(), 1u);
  EXPECT_EQ(with_format->args[0], "prometheus");
  EXPECT_FALSE(Parse("METRICS json extra").ok());
}

TEST(ParseRequestTest, HelloTakesNoArguments) {
  auto hello = Parse("HELLO");
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->verb, Verb::kHello);
  EXPECT_TRUE(hello->args.empty());
  EXPECT_FALSE(Parse("HELLO v2").ok());
}

TEST(ParseRequestTest, HappyPathsPerVerb) {
  auto open = Parse("OPEN box demo://boxoffice?seed=7");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->verb, Verb::kOpen);
  ASSERT_EQ(open->args.size(), 2u);
  EXPECT_EQ(open->args[0], "box");
  EXPECT_EQ(open->args[1], "demo://boxoffice?seed=7");

  auto list = Parse("LIST");
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->args.empty());

  auto characterize = Parse("CHARACTERIZE box a > 1 AND b < 2");
  ASSERT_TRUE(characterize.ok());
  ASSERT_EQ(characterize->args.size(), 2u);
  EXPECT_EQ(characterize->args[1], "a > 1 AND b < 2");

  auto stats = Parse("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->args.empty());
  auto stats_table = Parse("STATS box");
  ASSERT_TRUE(stats_table.ok());
  ASSERT_EQ(stats_table->args.size(), 1u);

  auto save_all = Parse("SAVE");
  ASSERT_TRUE(save_all.ok());
  EXPECT_EQ(save_all->verb, Verb::kSave);
  EXPECT_TRUE(save_all->args.empty());
  auto save_one = Parse("SAVE box");
  ASSERT_TRUE(save_one.ok());
  ASSERT_EQ(save_one->args.size(), 1u);
  EXPECT_EQ(save_one->args[0], "box");

  auto persist = Parse("PERSIST box on");
  ASSERT_TRUE(persist.ok());
  EXPECT_EQ(persist->verb, Verb::kPersist);
  ASSERT_EQ(persist->args.size(), 2u);
  EXPECT_EQ(persist->args[1], "on");
  // Arity is fixed at exactly two tokens.
  EXPECT_FALSE(Parse("PERSIST box").ok());
  EXPECT_FALSE(Parse("PERSIST box on extra").ok());
  EXPECT_FALSE(Parse("SAVE box extra").ok());

  auto quit = Parse("QUIT");
  ASSERT_TRUE(quit.ok());
  EXPECT_EQ(quit->verb, Verb::kQuit);
}

TEST(ParseRequestTest, TrailingArgumentKeepsInteriorSpacing) {
  // The final argument is the rest of the line verbatim: predicates with
  // double spaces (or paths with spaces) must survive the round trip.
  auto parsed = Parse("VIEWS t a  >=  1.5");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->args[1], "a  >=  1.5");

  auto path = Parse("OPEN t /data/my table.csv");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->args[1], "/data/my table.csv");

  // The separator between the penultimate argument and the tail is a
  // space *run*: extra separator spaces (hand-typed clients) are not
  // payload, so "t  a > 1" and "t a > 1" are the same request.
  auto padded = Parse("CHARACTERIZE t   a > 1");
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->args[1], "a > 1");
}

TEST(ParseRequestTest, VerbsAreCaseInsensitive) {
  EXPECT_TRUE(Parse("open t x").ok());
  EXPECT_TRUE(Parse("Views t x").ok());
  EXPECT_TRUE(Parse("quit").ok());
}

TEST(ParseRequestTest, ToleratesTrailingCarriageReturn) {
  auto parsed = Parse("CLOSE box\r");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->args[0], "box");
}

TEST(ParseRequestTest, RejectsMalformedLines) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   ").ok());
  EXPECT_FALSE(Parse("BOGUS x").ok());
  EXPECT_FALSE(Parse("OPEN").ok());          // missing both args
  EXPECT_FALSE(Parse("OPEN onlyname").ok()); // missing source
  EXPECT_FALSE(Parse("LIST extra").ok());    // arity 0
  EXPECT_FALSE(Parse("QUIT now").ok());
  EXPECT_FALSE(Parse("CLOSE a b").ok());     // CLOSE takes one token
  EXPECT_FALSE(Parse("STATS a b").ok());
  EXPECT_FALSE(Parse("VIEWS table_only").ok());
}

TEST(ParseRequestTest, RejectsEmbeddedNewlines) {
  EXPECT_FALSE(Parse("CLOSE a\nb").ok());
  EXPECT_FALSE(Parse("VIEWS t x > 1\nLIST").ok());
}

TEST(ParseRequestTest, SerializeParseRoundTrip) {
  const WireRequest request{Verb::kCharacterize, {"tbl", "x > 1 AND y < 2"}};
  std::string wire = LineProtocol::SerializeRequest(request);
  ASSERT_FALSE(wire.empty());
  EXPECT_EQ(wire.back(), '\n');
  wire.pop_back();
  auto parsed = Parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->verb, request.verb);
  EXPECT_EQ(parsed->args, request.args);
}

TEST(ValidateRequestTest, AcceptsRepresentableRejectsDesyncing) {
  EXPECT_TRUE(LineProtocol::ValidateRequest(
                  WireRequest{Verb::kViews, {"t", "a > 1 AND b < 2"}})
                  .ok());
  EXPECT_TRUE(LineProtocol::ValidateRequest(WireRequest{Verb::kList, {}}).ok());

  // A newline inside an argument would become two wire lines and desync
  // the request/response stream.
  EXPECT_FALSE(LineProtocol::ValidateRequest(
                   WireRequest{Verb::kOpen, {"t", "a\nQUIT"}})
                   .ok());
  // A space in a non-tail argument silently shifts the receiver's split.
  EXPECT_FALSE(LineProtocol::ValidateRequest(
                   WireRequest{Verb::kViews, {"my table", "x > 1"}})
                   .ok());
  EXPECT_FALSE(
      LineProtocol::ValidateRequest(WireRequest{Verb::kClose, {"a b"}}).ok());
  // Arity and empty arguments.
  EXPECT_FALSE(LineProtocol::ValidateRequest(WireRequest{Verb::kOpen, {"t"}}).ok());
  EXPECT_FALSE(
      LineProtocol::ValidateRequest(WireRequest{Verb::kList, {"x"}}).ok());
  EXPECT_FALSE(
      LineProtocol::ValidateRequest(WireRequest{Verb::kClose, {""}}).ok());
}

TEST(ParseResponseTest, OkAndErrRoundTrip) {
  std::string ok_wire =
      LineProtocol::SerializeResponse(WireResponse::Ok("{\"x\":1}"));
  ASSERT_EQ(ok_wire.back(), '\n');
  ok_wire.pop_back();
  auto ok = LineProtocol::ParseResponse(ok_wire);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(ok->body, "{\"x\":1}");

  const Status error = Status::NotFound("no such table: \"weßird\nname\"");
  std::string err_wire =
      LineProtocol::SerializeResponse(WireResponse::Error(error));
  // The message's newline must be escaped — one response, one line.
  EXPECT_EQ(err_wire.find('\n'), err_wire.size() - 1);
  err_wire.pop_back();
  auto err = LineProtocol::ParseResponse(err_wire);
  ASSERT_TRUE(err.ok());
  EXPECT_FALSE(err->ok);
  EXPECT_EQ(err->code, StatusCode::kNotFound);
  EXPECT_EQ(err->body, error.message());
}

TEST(ParseResponseTest, RejectsMalformedResponses) {
  EXPECT_FALSE(LineProtocol::ParseResponse("").ok());
  EXPECT_FALSE(LineProtocol::ParseResponse("OK").ok());
  EXPECT_FALSE(LineProtocol::ParseResponse("MAYBE {}").ok());
  EXPECT_FALSE(LineProtocol::ParseResponse("ERR NoSuchCode msg").ok());
  EXPECT_FALSE(LineProtocol::ParseResponse("ERR OK msg").ok());
  EXPECT_FALSE(LineProtocol::ParseResponse("ERR NotFound bad\\escape \\q").ok());
}

TEST(JsonUnescapeTest, InvertsJsonEscape) {
  const std::string original = "line1\nline2\t\"quoted\" \\ \x01 caf\xc3\xa9";
  auto decoded = JsonUnescape(JsonEscape(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
  EXPECT_FALSE(JsonUnescape("trailing\\").ok());
  EXPECT_FALSE(JsonUnescape("\\u12").ok());
  EXPECT_FALSE(JsonUnescape("\\ud800").ok());   // lone high surrogate
  EXPECT_FALSE(JsonUnescape("\\udc00").ok());   // lone low surrogate
  EXPECT_FALSE(JsonUnescape("\\ud83dx").ok());  // high not followed by \u
  EXPECT_FALSE(JsonUnescape("\\ud83d\\u0041").ok());  // pair half missing
  auto bmp = JsonUnescape("\\u00e9");
  ASSERT_TRUE(bmp.ok());
  EXPECT_EQ(*bmp, "\xc3\xa9");
  // Surrogate pairs decode to the non-BMP code point's UTF-8 bytes.
  auto astral = JsonUnescape("\\ud83d\\ude00");
  ASSERT_TRUE(astral.ok());
  EXPECT_EQ(*astral, "\xf0\x9f\x98\x80");
}

TEST(JsonUnescapeTest, NonBmpRoundTripsThroughEscape) {
  // The VIEWS reply wraps a rendered report in JsonEscape and the client
  // unescapes it: an emoji or rare-CJK category label must survive the
  // round trip byte-identically.
  const std::string original =
      "grade \xf0\x9f\x98\x80 caf\xc3\xa9 \xe2\x82\xac";
  auto decoded = JsonUnescape(JsonEscape(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, original);
}

TEST(LineReaderTest, SplitsLinesAcrossArbitraryChunks) {
  const std::string stream = "LIST\r\nSTATS box\nQUIT\n";
  // Feed one byte at a time: framing must not depend on chunk boundaries.
  LineReader reader;
  std::vector<std::string> lines;
  for (const char c : stream) {
    reader.Feed(&c, 1);
    for (;;) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      lines.push_back(**next);
    }
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "LIST");
  EXPECT_EQ(lines[1], "STATS box");
  EXPECT_EQ(lines[2], "QUIT");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(LineReaderTest, ManyLinesInOneFeed) {
  LineReader reader;
  const std::string chunk = "A\nB\n\nC\n";
  reader.Feed(chunk.data(), chunk.size());
  std::vector<std::string> lines;
  for (;;) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    lines.push_back(**next);
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"A", "B", "", "C"}));
}

TEST(LineReaderTest, OversizedLineErrorsOnceInOrderThenRecovers) {
  LineReader reader(/*max_line_bytes=*/8);
  const std::string stream = "OK1\n0123456789ABCDEF\nOK2\n";
  reader.Feed(stream.data(), stream.size());

  auto first = reader.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(**first, "OK1");

  auto oversize = reader.Next();
  EXPECT_FALSE(oversize.ok());  // reported exactly once, in stream order
  EXPECT_TRUE(oversize.status().IsOutOfRange());

  auto second = reader.Next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ(**second, "OK2");
}

TEST(LineReaderTest, BufferedBytesStayBounded) {
  LineReader reader(/*max_line_bytes=*/16);
  const std::string junk(1024, 'x');  // one endless line, fed repeatedly
  for (int i = 0; i < 100; ++i) reader.Feed(junk.data(), junk.size());
  EXPECT_LE(reader.buffered_bytes(), 16u);
  // The single oversize event surfaces once; afterwards the reader is
  // silently discarding until a newline arrives.
  EXPECT_FALSE(reader.Next().ok());
  auto idle = reader.Next();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->has_value());
}

TEST(LineReaderTest, LineExactlyAtLimitPasses) {
  LineReader reader(/*max_line_bytes=*/4);
  const std::string stream = "abcd\n";
  reader.Feed(stream.data(), stream.size());
  auto line = reader.Next();
  ASSERT_TRUE(line.ok());
  ASSERT_TRUE(line->has_value());
  EXPECT_EQ(**line, "abcd");
}

// ---------------------------------------------------------------- fuzzing --

std::string RandomLine(Rng* rng, size_t max_len) {
  // Biased toward protocol-looking bytes, with control characters mixed in.
  static const std::string kAlphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 "
      "OPENLISTVIEWSTATS<>=._-/\\\"{}[]:,?\t\r\x01\x02\x7f";
  const size_t len = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(kAlphabet.size()) - 1))];
  }
  return out;
}

TEST(ProtocolFuzzTest, RandomLinesNeverCrashTheParsers) {
  Rng rng(20260801);
  static const std::vector<std::string> kVerbPrefixes = {
      "OPEN ", "LIST", "CHARACTERIZE ", "VIEWS ", "APPEND ",
      "STATS ", "CLOSE ", "QUIT", "open ", "views "};
  size_t parsed_ok = 0;
  for (int i = 0; i < 20000; ++i) {
    std::string line = RandomLine(&rng, 160);
    if (rng.Bernoulli(0.4)) {
      // Half the corpus leads with a real verb so arity/argument handling
      // is fuzzed, not just verb recognition.
      line = kVerbPrefixes[static_cast<size_t>(rng.UniformInt(
                 0, static_cast<int64_t>(kVerbPrefixes.size()) - 1))] +
             line;
    }
    Result<WireRequest> request = LineProtocol::ParseRequest(line);
    if (request.ok()) {
      ++parsed_ok;
      // Whatever parses must re-serialize to something that parses back
      // to the same request (canonicalization is idempotent).
      std::string wire = LineProtocol::SerializeRequest(*request);
      wire.pop_back();
      Result<WireRequest> again = LineProtocol::ParseRequest(wire);
      ASSERT_TRUE(again.ok()) << wire;
      EXPECT_EQ(again->verb, request->verb);
      EXPECT_EQ(again->args, request->args);
    } else {
      EXPECT_FALSE(request.status().message().empty());
    }
    (void)LineProtocol::ParseResponse(line);
  }
  // The alphabet plants verb substrings, so some lines should parse.
  EXPECT_GT(parsed_ok, 0u);
}

TEST(ProtocolFuzzTest, MutatedValidRequestsNeverCrash) {
  Rng rng(7);
  const std::vector<std::string> seeds = {
      "OPEN box demo://boxoffice?seed=7",
      "CHARACTERIZE box revenue_index >= 1.18 AND cat_0 = 'c0'",
      "VIEWS box driver > 0.5",
      "APPEND box /tmp/rows.csv",
      "STATS box",
      "CLOSE box",
  };
  for (int i = 0; i < 20000; ++i) {
    std::string line =
        seeds[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(seeds.size()) - 1))];
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    if (op == 0 && !line.empty()) {  // truncate
      line.resize(static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(line.size()) - 1)));
    } else if (op == 1 && !line.empty()) {  // flip a byte
      line[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(line.size()) - 1))] =
          static_cast<char>(rng.UniformInt(1, 255));
    } else {  // splice two seeds
      line += seeds[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(seeds.size()) - 1))];
    }
    (void)LineProtocol::ParseRequest(line);
    (void)LineProtocol::ParseResponse(line);
  }
}

TEST(ProtocolFuzzTest, PipelinedFramingSurvivesArbitraryChunking) {
  // A pipelined segment is many requests back to back, possibly with an
  // oversized line in the middle. Whatever chunk boundaries the network
  // picks, the reader must yield the same sequence: every line in order,
  // the oversize reported exactly once in its stream position, and no
  // desync afterwards.
  Rng rng(20260808);
  for (int round = 0; round < 300; ++round) {
    const size_t num_lines =
        static_cast<size_t>(rng.UniformInt(2, 40));
    const size_t oversize_at = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_lines) - 1));
    constexpr size_t kLimit = 48;
    std::vector<std::string> expect;
    std::string stream;
    for (size_t i = 0; i < num_lines; ++i) {
      std::string line;
      if (i == oversize_at) {
        line = "CHARACTERIZE box " + std::string(kLimit, 'x');  // too long
      } else {
        line = "STATS box" + std::to_string(i);
        expect.push_back(line);
      }
      stream += line + '\n';
    }

    LineReader reader(kLimit);
    std::vector<std::string> got;
    size_t errors = 0;
    size_t error_after = 0;  // lines delivered before the oversize fired
    size_t offset = 0;
    while (offset < stream.size()) {
      // Random chunk sizes, 1 byte up to the whole remainder.
      const size_t n = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(stream.size() - offset)));
      reader.Feed(stream.data() + offset, n);
      offset += n;
      for (;;) {
        auto next = reader.Next();
        if (!next.ok()) {
          EXPECT_TRUE(next.status().IsOutOfRange());
          ++errors;
          error_after = got.size();
          continue;
        }
        if (!next->has_value()) break;
        got.push_back(**next);
      }
    }
    ASSERT_EQ(got, expect) << "round " << round;
    EXPECT_EQ(errors, 1u) << "round " << round;
    // The oversize surfaced exactly where it sat in the pipeline.
    EXPECT_EQ(error_after, oversize_at) << "round " << round;
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

TEST(ProtocolFuzzTest, RandomBytesThroughLineReaderNeverCrash) {
  Rng rng(99);
  LineReader reader(/*max_line_bytes=*/64);
  for (int i = 0; i < 5000; ++i) {
    const std::string chunk = RandomLine(&rng, 100);
    reader.Feed(chunk.data(), chunk.size());
    if (rng.Bernoulli(0.3)) {
      const char nl = '\n';
      reader.Feed(&nl, 1);
    }
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) continue;  // oversize: framing recovered, keep going
      if (!next->has_value()) break;
      (void)LineProtocol::ParseRequest(**next);
    }
    EXPECT_LE(reader.buffered_bytes(), 64u);
  }
}

}  // namespace
}  // namespace ziggy
