// Unit and integration tests for the ZiggyEngine facade.

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/synthetic.h"
#include "engine/ziggy_engine.h"

namespace ziggy {
namespace {

ZiggyEngine MakeEngine(ZiggyOptions opts = {}) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  return ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
}

TEST(EngineTest, CreateRejectsEmptyTable) {
  EXPECT_FALSE(ZiggyEngine::Create(Table()).ok());
}

TEST(EngineTest, CharacterizeQueryEndToEnd) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  const std::string predicate = ds.selection_predicate;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(predicate).ValueOrDie();
  EXPECT_GT(r.inside_count, 0);
  EXPECT_GT(r.outside_count, 0);
  EXPECT_FALSE(r.views.empty());
  EXPECT_GT(r.num_candidates, 0u);
  for (const auto& cv : r.views) {
    EXPECT_FALSE(cv.explanation.headline.empty());
    EXPECT_LE(cv.view.aggregated_p_value, engine.options().validation.max_p_value);
  }
}

TEST(EngineTest, AcceptsFullSelectStatement) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  auto r = engine.CharacterizeQuery("SELECT * FROM movies WHERE revenue_index > 1.0");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->inside_count, 0);
}

TEST(EngineTest, ParseErrorsSurface) {
  ZiggyEngine engine = MakeEngine();
  EXPECT_TRUE(engine.CharacterizeQuery("revenue_index >").status().IsParseError());
  EXPECT_TRUE(engine.CharacterizeQuery("no_such_col > 1").status().IsNotFound());
}

TEST(EngineTest, EmptySelectionIsFailedPrecondition) {
  ZiggyEngine engine = MakeEngine();
  EXPECT_TRUE(
      engine.CharacterizeQuery("revenue_index > 1e12").status().IsFailedPrecondition());
}

TEST(EngineTest, AllRowsSelectionIsFailedPrecondition) {
  ZiggyEngine engine = MakeEngine();
  EXPECT_TRUE(
      engine.CharacterizeQuery("revenue_index > -1e12").status().IsFailedPrecondition());
}

TEST(EngineTest, SelectionSizeMismatchRejected) {
  ZiggyEngine engine = MakeEngine();
  EXPECT_TRUE(engine.Characterize(Selection(5)).status().IsInvalidArgument());
}

TEST(EngineTest, RankedByDescendingScore) {
  ZiggyEngine engine = MakeEngine();
  Characterization r =
      engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  for (size_t i = 1; i < r.views.size(); ++i) {
    EXPECT_GE(r.views[i - 1].view.score.total, r.views[i].view.score.total);
  }
}

TEST(EngineTest, TimingsArePopulated) {
  ZiggyEngine engine = MakeEngine();
  Characterization r = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_GT(r.timings.preparation_ms, 0.0);
  EXPECT_GE(r.timings.search_ms, 0.0);
  EXPECT_GE(r.timings.post_processing_ms, 0.0);
  EXPECT_NEAR(r.timings.total_ms(),
              r.timings.preparation_ms + r.timings.search_ms +
                  r.timings.post_processing_ms,
              1e-9);
}

TEST(EngineTest, QueryCacheHitsOnRepeatedSelection) {
  ZiggyEngine engine = MakeEngine();
  ASSERT_TRUE(engine.CharacterizeQuery("revenue_index > 1.2").ok());
  EXPECT_EQ(engine.cache_hits(), 0u);
  EXPECT_EQ(engine.cache_misses(), 1u);
  Characterization r2 = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(engine.cache_hits(), 1u);
  // Textually different query with identical row set also hits.
  Characterization r3 =
      engine.CharacterizeQuery("NOT revenue_index <= 1.2").ValueOrDie();
  EXPECT_TRUE(r3.cache_hit);
}

TEST(EngineTest, ComponentCacheEntryCapEvictsLru) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyOptions opts;
  opts.max_cached_queries = 2;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();

  const std::string q1 = "revenue_index > 1.0";
  const std::string q2 = "revenue_index > 1.2";
  const std::string q3 = "revenue_index > 1.4";
  ASSERT_TRUE(engine.CharacterizeQuery(q1).ok());
  ASSERT_TRUE(engine.CharacterizeQuery(q2).ok());
  EXPECT_EQ(engine.cache_entries(), 2u);
  EXPECT_EQ(engine.cache_evictions(), 0u);

  // Touch q1 so q2 becomes the LRU victim of the next insertion.
  ASSERT_TRUE(engine.CharacterizeQuery(q1).ok());
  EXPECT_EQ(engine.cache_hits(), 1u);
  ASSERT_TRUE(engine.CharacterizeQuery(q3).ok());
  EXPECT_EQ(engine.cache_entries(), 2u);
  EXPECT_EQ(engine.cache_evictions(), 1u);

  // q1 survived (recency), q2 was evicted, and the evicted query still
  // answers correctly (a fresh miss, not an error).
  ASSERT_TRUE(engine.CharacterizeQuery(q1).ok());
  EXPECT_EQ(engine.cache_hits(), 2u);
  Characterization again = engine.CharacterizeQuery(q2).ValueOrDie();
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(engine.cache_evictions(), 2u);  // q3 displaced in turn
}

TEST(EngineTest, ComponentCacheUnboundedWhenCapIsZero) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyOptions opts;
  opts.max_cached_queries = 0;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        engine.CharacterizeQuery("revenue_index > 1." + std::to_string(i)).ok());
  }
  EXPECT_EQ(engine.cache_entries(), 5u);
  EXPECT_EQ(engine.cache_evictions(), 0u);
}

TEST(EngineTest, CacheCanBeDisabledAndCleared) {
  ZiggyOptions opts;
  opts.cache_queries = false;
  ZiggyEngine engine = MakeEngine(opts);
  ASSERT_TRUE(engine.CharacterizeQuery("revenue_index > 1.2").ok());
  Characterization r2 = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(engine.cache_hits(), 0u);

  ZiggyEngine cached = MakeEngine();
  ASSERT_TRUE(cached.CharacterizeQuery("revenue_index > 1.2").ok());
  cached.ClearCache();
  Characterization r3 = cached.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_FALSE(r3.cache_hit);
}

TEST(EngineTest, CachedResultsMatchUncached) {
  ZiggyEngine engine = MakeEngine();
  Characterization a = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  Characterization b = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  ASSERT_EQ(a.views.size(), b.views.size());
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].view.columns, b.views[i].view.columns);
    EXPECT_DOUBLE_EQ(a.views[i].view.score.total, b.views[i].view.score.total);
    EXPECT_EQ(a.views[i].explanation.headline, b.views[i].explanation.headline);
  }
}

TEST(EngineTest, OptionsTunableBetweenQueries) {
  ZiggyEngine engine = MakeEngine();
  engine.mutable_options()->search.max_views = 1;
  Characterization r = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_LE(r.views.size(), 1u);
  engine.mutable_options()->search.max_views = 10;
  Characterization r2 = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_GE(r2.views.size(), r.views.size());
}

TEST(EngineTest, SharedAndTwoScanModesAgreeOnViews) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  Table table_copy = ds.table;
  ZiggyOptions shared_opts;
  shared_opts.build.mode = PreparationMode::kSharedSketch;
  ZiggyOptions naive_opts;
  naive_opts.build.mode = PreparationMode::kTwoScan;
  ZiggyEngine shared_engine =
      ZiggyEngine::Create(std::move(ds.table), shared_opts).ValueOrDie();
  ZiggyEngine naive_engine =
      ZiggyEngine::Create(std::move(table_copy), naive_opts).ValueOrDie();
  Characterization a =
      shared_engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  Characterization b =
      naive_engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  ASSERT_EQ(a.views.size(), b.views.size());
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i].view.columns, b.views[i].view.columns);
    EXPECT_NEAR(a.views[i].view.score.total, b.views[i].view.score.total, 1e-9);
  }
}

TEST(EngineTest, ToStringContainsViewsAndTimings) {
  ZiggyEngine engine = MakeEngine();
  Characterization r = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  const std::string s = r.ToString(engine.table().schema());
  EXPECT_NE(s.find("Stage timings"), std::string::npos);
  EXPECT_NE(s.find("#1"), std::string::npos);
  EXPECT_NE(s.find("score="), std::string::npos);
}

TEST(EngineTest, DendrogramAsciiMentionsColumns) {
  ZiggyEngine engine = MakeEngine();
  const std::string d = engine.DendrogramAscii();
  EXPECT_NE(d.find("budget_0"), std::string::npos);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  SyntheticDataset ds1 = MakeBoxOfficeDataset(123).ValueOrDie();
  SyntheticDataset ds2 = MakeBoxOfficeDataset(123).ValueOrDie();
  ZiggyEngine e1 = ZiggyEngine::Create(std::move(ds1.table)).ValueOrDie();
  ZiggyEngine e2 = ZiggyEngine::Create(std::move(ds2.table)).ValueOrDie();
  Characterization r1 = e1.CharacterizeQuery(ds1.selection_predicate).ValueOrDie();
  Characterization r2 = e2.CharacterizeQuery(ds2.selection_predicate).ValueOrDie();
  ASSERT_EQ(r1.views.size(), r2.views.size());
  for (size_t i = 0; i < r1.views.size(); ++i) {
    EXPECT_EQ(r1.views[i].view.columns, r2.views[i].view.columns);
    EXPECT_DOUBLE_EQ(r1.views[i].view.score.total, r2.views[i].view.score.total);
  }
}

}  // namespace
}  // namespace ziggy
