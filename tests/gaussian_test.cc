// Unit tests for baselines/gaussian.h: Cholesky machinery, multivariate
// symmetric KL, and the full-covariance subspace scorer.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gaussian.h"
#include "common/random.h"

namespace ziggy {
namespace {

// ---------------------------------------------------------------- Cholesky --

TEST(CholeskyTest, KnownThreeByThree) {
  // A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2],[6,1],[-8,5,3]].
  std::vector<double> a{4, 12, -16, 12, 37, -43, -16, -43, 98};
  ASSERT_TRUE(CholeskyFactorize(&a, 3).ok());
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[3], 6.0, 1e-12);
  EXPECT_NEAR(a[4], 1.0, 1e-12);
  EXPECT_NEAR(a[6], -8.0, 1e-12);
  EXPECT_NEAR(a[7], 5.0, 1e-12);
  EXPECT_NEAR(a[8], 3.0, 1e-12);
  // Upper triangle zeroed.
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
  EXPECT_DOUBLE_EQ(a[5], 0.0);
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  std::vector<double> a{1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_TRUE(CholeskyFactorize(&a, 2).IsInvalidArgument());
  std::vector<double> zero{0.0};
  EXPECT_FALSE(CholeskyFactorize(&zero, 1).ok());
}

TEST(CholeskyTest, LogDetMatchesDirect) {
  std::vector<double> a{4, 12, -16, 12, 37, -43, -16, -43, 98};
  std::vector<double> l = a;
  ASSERT_TRUE(CholeskyFactorize(&l, 3).ok());
  // det(A) = (2*1*3)^2 = 36.
  EXPECT_NEAR(CholeskyLogDet(l, 3), std::log(36.0), 1e-10);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  std::vector<double> a{4, 12, -16, 12, 37, -43, -16, -43, 98};
  std::vector<double> l = a;
  ASSERT_TRUE(CholeskyFactorize(&l, 3).ok());
  const std::vector<double> x_true{1.0, -2.0, 0.5};
  std::vector<double> b(3, 0.0);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) b[i] += a[i * 3 + j] * x_true[j];
  }
  std::vector<double> x = CholeskySolve(l, 3, b);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

// ----------------------------------------------------------- multivariate KL --

TEST(MultivariateKlTest, IdenticalDistributionsAreZero) {
  std::vector<double> mu{1.0, -2.0};
  std::vector<double> sigma{2.0, 0.5, 0.5, 1.0};
  double kl = SymmetricGaussianKlMultivariate(mu, sigma, mu, sigma).ValueOrDie();
  EXPECT_NEAR(kl, 0.0, 1e-6);
}

TEST(MultivariateKlTest, MatchesUnivariateFormula) {
  // 1-D: symKL = 0.5[(v1+d^2)/v2 + (v2+d^2)/v1 - 2].
  const double m1 = 1.0, v1 = 2.0, m2 = 3.0, v2 = 0.5;
  const double d2 = (m1 - m2) * (m1 - m2);
  const double expected = 0.5 * ((v1 + d2) / v2 + (v2 + d2) / v1 - 2.0);
  double kl = SymmetricGaussianKlMultivariate({m1}, {v1}, {m2}, {v2}).ValueOrDie();
  EXPECT_NEAR(kl, expected, 1e-6);
}

TEST(MultivariateKlTest, SymmetricInArguments) {
  std::vector<double> mu1{0.0, 0.0};
  std::vector<double> s1{1.0, 0.3, 0.3, 1.0};
  std::vector<double> mu2{1.0, -1.0};
  std::vector<double> s2{2.0, -0.5, -0.5, 1.5};
  double a = SymmetricGaussianKlMultivariate(mu1, s1, mu2, s2).ValueOrDie();
  double b = SymmetricGaussianKlMultivariate(mu2, s2, mu1, s1).ValueOrDie();
  EXPECT_NEAR(a, b, 1e-9);
  EXPECT_GT(a, 0.0);
}

TEST(MultivariateKlTest, DetectsPureCorrelationChange) {
  // Same means, same marginal variances, different correlation: diagonal KL
  // would be ~0, full-covariance KL must not.
  std::vector<double> mu{0.0, 0.0};
  std::vector<double> s_corr{1.0, 0.9, 0.9, 1.0};
  std::vector<double> s_ind{1.0, 0.0, 0.0, 1.0};
  double kl = SymmetricGaussianKlMultivariate(mu, s_corr, mu, s_ind).ValueOrDie();
  EXPECT_GT(kl, 1.0);
}

TEST(MultivariateKlTest, DimensionMismatchRejected) {
  EXPECT_FALSE(
      SymmetricGaussianKlMultivariate({0.0}, {1.0}, {0.0, 0.0}, {1, 0, 0, 1}).ok());
  EXPECT_FALSE(SymmetricGaussianKlMultivariate({0.0}, {1.0, 0.0}, {0.0}, {1.0}).ok());
}

TEST(MultivariateKlTest, EmptySubspaceIsZero) {
  EXPECT_DOUBLE_EQ(SymmetricGaussianKlMultivariate({}, {}, {}, {}).ValueOrDie(), 0.0);
}

// --------------------------------------------------- full-covariance scorer --

struct CorrFixture {
  Table table;
  Selection selection;
};

// Inside breaks the (x, y) correlation without moving marginals; z is noise.
CorrFixture MakeCorrFixture(uint64_t seed = 33) {
  Rng rng(seed);
  const size_t n = 3000;
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<double> z(n);
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inside = i % 3 == 0;
    if (inside) sel.Set(i);
    const double f = rng.Normal();
    if (inside) {
      x[i] = rng.Normal();
      y[i] = rng.Normal();
    } else {
      x[i] = 0.9 * f + 0.44 * rng.Normal();
      y[i] = 0.9 * f + 0.44 * rng.Normal();
    }
    z[i] = rng.Normal();
  }
  return {Table::FromColumns({Column::FromNumeric("x", x), Column::FromNumeric("y", y),
                              Column::FromNumeric("z", z)})
              .ValueOrDie(),
          sel};
}

TEST(FullGaussianKlScorerTest, CorrelationBreakScoresAboveMarginals) {
  CorrFixture fx = MakeCorrFixture();
  FullGaussianKlScorer full(fx.table, fx.selection);
  GaussianKlScorer diag(fx.table, fx.selection);
  // The pair (x, y) carries the signal; its full-covariance score must
  // dwarf the sum of marginal scores (diagonal model sees almost nothing).
  EXPECT_GT(full.Score({0, 1}), 5.0 * (diag.Score({0, 1}) + 0.01));
  // The noise pair stays near zero for both.
  EXPECT_LT(full.Score({0, 2}), 0.2);
}

TEST(FullGaussianKlScorerTest, BeamFindsCorrelationPair) {
  CorrFixture fx = MakeCorrFixture();
  FullGaussianKlScorer scorer(fx.table, fx.selection);
  BeamSearchOptions opts;
  opts.max_size = 2;
  auto results = BeamSubspaceSearch(scorer, opts);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].columns, (std::vector<size_t>{0, 1}));
}

TEST(FullGaussianKlScorerTest, AgreesWithExhaustiveHere) {
  CorrFixture fx = MakeCorrFixture();
  FullGaussianKlScorer scorer(fx.table, fx.selection);
  auto exhaustive = ExhaustiveSubspaceSearch(scorer, 2, 1);
  BeamSearchOptions opts;
  opts.max_size = 2;
  auto beam = BeamSubspaceSearch(scorer, opts);
  ASSERT_FALSE(exhaustive.empty());
  ASSERT_FALSE(beam.empty());
  EXPECT_EQ(exhaustive[0].columns, beam[0].columns);
}

TEST(FullGaussianKlScorerTest, GreedyCanBeSuboptimal) {
  // Construct a case where the best pair is invisible marginally: a narrow
  // beam seeded by marginal singleton scores can miss it, while exhaustive
  // cannot. We only assert exhaustive >= beam (never worse), and strictly
  // greater for beam width 1 in this fixture... beam width 1 keeps only the
  // best singleton, whose best pair extension may not be (x, y).
  CorrFixture fx = MakeCorrFixture();
  FullGaussianKlScorer scorer(fx.table, fx.selection);
  BeamSearchOptions narrow;
  narrow.max_size = 2;
  narrow.beam_width = 1;
  auto beam = BeamSubspaceSearch(scorer, narrow);
  auto exhaustive = ExhaustiveSubspaceSearch(scorer, 2, 1);
  ASSERT_FALSE(beam.empty());
  ASSERT_FALSE(exhaustive.empty());
  EXPECT_GE(exhaustive[0].score, beam[0].score - 1e-12);
}

TEST(FullGaussianKlScorerTest, EligibleColumnsExcludeCategorical) {
  Table t = Table::FromColumns({Column::FromNumeric("x", {1, 2, 3, 4}),
                                Column::FromStrings("s", {"a", "b", "a", "b"})})
                .ValueOrDie();
  Selection sel = Selection::FromIndices(4, {0, 1});
  FullGaussianKlScorer scorer(t, sel);
  EXPECT_EQ(scorer.EligibleColumns(), (std::vector<size_t>{0}));
}

}  // namespace
}  // namespace ziggy
