// Unit and property tests for stats/descriptive.h: Welford accumulators,
// mergeable/subtractable moment sketches, quantiles.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/descriptive.h"
#include "storage/types.h"

namespace ziggy {
namespace {

// ----------------------------------------------------------- NumericStats --

TEST(NumericStatsTest, BasicMoments) {
  NumericStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(NumericStatsTest, SingleAndEmpty) {
  NumericStats s;
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(NumericStatsTest, MergeMatchesSequential) {
  Rng rng(3);
  NumericStats whole;
  NumericStats part1;
  NumericStats part2;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Normal(5, 2);
    whole.Add(v);
    (i < 200 ? part1 : part2).Add(v);
  }
  part1.Merge(part2);
  EXPECT_EQ(part1.count, whole.count);
  EXPECT_NEAR(part1.mean, whole.mean, 1e-10);
  EXPECT_NEAR(part1.m2, whole.m2, 1e-7);
  EXPECT_DOUBLE_EQ(part1.min, whole.min);
  EXPECT_DOUBLE_EQ(part1.max, whole.max);
}

TEST(NumericStatsTest, MergeWithEmptySides) {
  NumericStats a;
  NumericStats b;
  b.Add(1.0);
  b.Add(3.0);
  a.Merge(b);  // empty.Merge(filled)
  EXPECT_EQ(a.count, 2);
  EXPECT_DOUBLE_EQ(a.mean, 2.0);
  NumericStats c;
  a.Merge(c);  // filled.Merge(empty)
  EXPECT_EQ(a.count, 2);
}

TEST(NumericStatsTest, WelfordIsStableAgainstLargeOffsets) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  NumericStats s;
  const double offset = 1e9;
  for (double v : {offset + 1, offset + 2, offset + 3}) s.Add(v);
  EXPECT_NEAR(s.Variance(), 1.0, 1e-6);
}

// -------------------------------------------------------------- PairStats --

TEST(PairStatsTest, PerfectCorrelation) {
  PairStats s;
  for (int i = 0; i < 10; ++i) s.Add(i, 2.0 * i + 1.0);
  EXPECT_NEAR(s.Correlation(), 1.0, 1e-12);
  PairStats neg;
  for (int i = 0; i < 10; ++i) neg.Add(i, -3.0 * i);
  EXPECT_NEAR(neg.Correlation(), -1.0, 1e-12);
}

TEST(PairStatsTest, CovarianceKnownValue) {
  PairStats s;
  s.Add(1, 2);
  s.Add(2, 4);
  s.Add(3, 6);
  EXPECT_NEAR(s.Covariance(), 2.0, 1e-12);  // cov(x, 2x) with var(x)=1
}

TEST(PairStatsTest, ZeroVarianceYieldsZeroCorrelation) {
  PairStats s;
  for (int i = 0; i < 5; ++i) s.Add(7.0, i);
  EXPECT_DOUBLE_EQ(s.Correlation(), 0.0);
}

TEST(PairStatsTest, MergeMatchesSequential) {
  Rng rng(4);
  PairStats whole;
  PairStats a;
  PairStats b;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Normal();
    const double y = 0.5 * x + rng.Normal();
    whole.Add(x, y);
    (i % 3 == 0 ? a : b).Add(x, y);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, whole.count);
  EXPECT_NEAR(a.Correlation(), whole.Correlation(), 1e-10);
  EXPECT_NEAR(a.Covariance(), whole.Covariance(), 1e-10);
}

// ----------------------------------------------------------- MomentSketch --

TEST(MomentSketchTest, MeanVarianceMatchWelford) {
  Rng rng(5);
  MomentSketch sk;
  NumericStats ws;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3, 4);
    sk.Add(v);
    ws.Add(v);
  }
  EXPECT_NEAR(sk.Mean(), ws.mean, 1e-10);
  EXPECT_NEAR(sk.Variance(), ws.Variance(), 1e-8);
}

TEST(MomentSketchTest, SubtractRecoversComplement) {
  Rng rng(6);
  MomentSketch global;
  MomentSketch part;
  MomentSketch complement_direct;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-10, 10);
    global.Add(v);
    if (i % 4 == 0) {
      part.Add(v);
    } else {
      complement_direct.Add(v);
    }
  }
  MomentSketch derived = global;
  derived.Subtract(part);
  EXPECT_EQ(derived.count, complement_direct.count);
  EXPECT_NEAR(derived.Mean(), complement_direct.Mean(), 1e-10);
  EXPECT_NEAR(derived.Variance(), complement_direct.Variance(), 1e-8);
}

TEST(MomentSketchTest, VarianceClampedAgainstCancellation) {
  MomentSketch s;
  s.Add(1e8);
  s.Add(1e8);
  EXPECT_GE(s.Variance(), 0.0);
}

// ------------------------------------------------------- PairMomentSketch --

TEST(PairMomentSketchTest, CorrelationMatchesPairStats) {
  Rng rng(7);
  PairMomentSketch sk;
  PairStats ps;
  for (int i = 0; i < 800; ++i) {
    const double x = rng.Normal();
    const double y = -0.7 * x + 0.3 * rng.Normal();
    sk.Add(x, y);
    ps.Add(x, y);
  }
  EXPECT_NEAR(sk.Correlation(), ps.Correlation(), 1e-10);
}

TEST(PairMomentSketchTest, MergeThenSubtractIsIdentity) {
  Rng rng(8);
  PairMomentSketch a;
  PairMomentSketch b;
  for (int i = 0; i < 300; ++i) {
    a.Add(rng.Normal(), rng.Normal());
    b.Add(rng.Normal(2, 3), rng.Normal(-1, 2));
  }
  PairMomentSketch merged = a;
  merged.Merge(b);
  merged.Subtract(b);
  EXPECT_EQ(merged.count, a.count);
  EXPECT_NEAR(merged.Correlation(), a.Correlation(), 1e-9);
}

// --------------------------------------------------------- vector helpers --

TEST(ComputeStatsTest, SkipsNaNs) {
  std::vector<double> data{1.0, NullNumeric(), 3.0, NullNumeric(), 5.0};
  NumericStats s = ComputeNumericStats(data);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(ComputeStatsTest, SelectionRestricted) {
  std::vector<double> data{1, 2, 3, 4, 5, 6};
  Selection sel = Selection::FromIndices(6, {0, 2, 4});
  NumericStats s = ComputeNumericStats(data, sel);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(ComputePairStatsTest, SkipsRowsWithEitherNaN) {
  std::vector<double> x{1, 2, NullNumeric(), 4};
  std::vector<double> y{1, NullNumeric(), 3, 4};
  PairStats s = ComputePairStats(x, y);
  EXPECT_EQ(s.count, 2);  // rows 0 and 3
}

TEST(ComputePairStatsTest, SelectionRestricted) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{1, 2, 3, 4};
  Selection sel = Selection::FromIndices(4, {0, 1});
  EXPECT_EQ(ComputePairStats(x, y, sel).count, 2);
}

// -------------------------------------------------------------- Quantiles --

TEST(QuantileTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> v{5, 1, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolation) {
  EXPECT_DOUBLE_EQ(Quantile({0, 10}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({0, 10, 20, 30}, 0.5), 15.0);
}

TEST(QuantileTest, SkipsNaNsAndHandlesEmpty) {
  EXPECT_DOUBLE_EQ(Quantile({NullNumeric(), 2.0, NullNumeric()}, 0.5), 2.0);
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(Quantile({NullNumeric()}, 0.5)));
}

TEST(QuantileTest, ClampsQ) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 3.0);
}

// -------------------------------------------- property: sketch vs Welford --

// The shared-computation engine depends on subtract-derived statistics
// agreeing with directly computed ones across many random selections.
class SketchSubtractProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SketchSubtractProperty, ComplementMomentsAgree) {
  Rng rng(GetParam());
  const size_t n = 512;
  std::vector<double> data(n);
  for (double& v : data) v = rng.Normal(rng.Uniform(-5, 5), rng.Uniform(0.5, 3));
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) sel.Set(i);
  }
  if (sel.Count() == 0 || sel.Count() == n) GTEST_SKIP();

  MomentSketch global;
  MomentSketch inside;
  for (size_t i = 0; i < n; ++i) {
    global.Add(data[i]);
    if (sel.Contains(i)) inside.Add(data[i]);
  }
  MomentSketch derived = global;
  derived.Subtract(inside);

  NumericStats direct = ComputeNumericStats(data, sel.Invert());
  EXPECT_EQ(derived.count, direct.count);
  EXPECT_NEAR(derived.Mean(), direct.mean, 1e-9);
  EXPECT_NEAR(derived.StdDev(), direct.StdDev(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchSubtractProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ziggy
