// FaultInjector tests: spec parsing, trigger semantics (probability /
// every-Nth / after-N), max_fires auto-disarm, seed determinism, and the
// disarmed fast path. The injector is process-global state, so every test
// resets it on entry and exit.

#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <vector>

namespace ziggy {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultTest, DisarmedIsInvisible) {
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(fault::Hit("fs.write").has_value());
  EXPECT_TRUE(fault::Check("fs.write").ok());
  // An un-armed evaluation through the guard records nothing.
  EXPECT_TRUE(FaultInjector::Global().SiteStats().empty());
}

TEST_F(FaultTest, EveryNthFiresOnSchedule) {
  ScopedFault fault("t.a:n3#EIO");
  ASSERT_TRUE(fault.status().ok());
  EXPECT_TRUE(fault::Armed());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fault::Hit("t.a").has_value());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FaultTest, AfterNFiresEveryHitPastThreshold) {
  ScopedFault fault("t.a:a2");
  ASSERT_TRUE(fault.status().ok());
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(fault::Hit("t.a").has_value());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
}

TEST_F(FaultTest, MaxFiresExhaustsAndDisarms) {
  ScopedFault fault("t.a:n1*2#ENOSPC");
  ASSERT_TRUE(fault.status().ok());
  EXPECT_TRUE(fault::Hit("t.a").has_value());
  EXPECT_TRUE(fault::Hit("t.a").has_value());
  EXPECT_EQ(fault.fires(), 2u);
  // Exhausted: the rule disarmed itself and the fast path is restored.
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(fault::Hit("t.a").has_value());
  const auto stats = FaultInjector::Global().SiteStats();
  ASSERT_EQ(stats.count("t.a"), 1u);
  EXPECT_EQ(stats.at("t.a").fires, 2u);
  // The counters survived the rule's removal (hits includes only armed
  // evaluations: the third went through the disarmed fast path).
  EXPECT_EQ(stats.at("t.a").hits, 2u);
}

TEST_F(FaultTest, ActionsDecodeToKindsAndErrnos) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Arm("e.err:n1#ENOSPC,e.short:n1#short,e.eof:n1#eof,"
                       "e.eintr:n1#eintr,e.default:n1")
                  .ok());
  auto err = fault::Hit("e.err");
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, FaultAction::Kind::kError);
  EXPECT_EQ(err->err, ENOSPC);
  EXPECT_EQ(fault::Hit("e.short")->kind, FaultAction::Kind::kShort);
  EXPECT_EQ(fault::Hit("e.eof")->kind, FaultAction::Kind::kEof);
  EXPECT_EQ(fault::Hit("e.eintr")->kind, FaultAction::Kind::kEintr);
  auto dflt = fault::Hit("e.default");
  ASSERT_TRUE(dflt.has_value());
  EXPECT_EQ(dflt->kind, FaultAction::Kind::kError);
  EXPECT_EQ(dflt->err, EIO);
}

TEST_F(FaultTest, CheckNamesTheSite) {
  ScopedFault fault("fs.fsync:n1#EIO");
  ASSERT_TRUE(fault.status().ok());
  Status st = fault::Check("fs.fsync");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("fs.fsync"), std::string::npos);
}

TEST_F(FaultTest, MalformedSpecsArmNothing) {
  FaultInjector& injector = FaultInjector::Global();
  for (const char* bad :
       {"nocolon", ":n1", "s:x5", "s:p1.5", "s:pzap", "s:n0", "s:n1*0",
        "s:n1*-1", "s:n1#EWHATEVER", "s:"}) {
    EXPECT_FALSE(injector.Arm(bad).ok()) << bad;
    EXPECT_FALSE(fault::Armed()) << bad;
  }
  // One bad entry poisons the whole spec — nothing from it arms.
  EXPECT_FALSE(injector.Arm("ok.site:n2#EIO,s:x5").ok());
  EXPECT_FALSE(fault::Armed());
}

TEST_F(FaultTest, ProbabilityIsDeterministicUnderSeed) {
  auto schedule = [](uint64_t seed) {
    ScopedFault fault("p.site:p0.3", seed);
    EXPECT_TRUE(fault.status().ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(fault::Hit("p.site").has_value());
    }
    return fired;
  };
  const std::vector<bool> a = schedule(42);
  const std::vector<bool> b = schedule(42);
  const std::vector<bool> c = schedule(43);
  EXPECT_EQ(a, b);       // same seed, same schedule
  EXPECT_NE(a, c);       // different seed, different schedule
  const size_t fires =
      static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 30u);  // p=0.3 over 200 hits: ~60 expected
  EXPECT_LT(fires, 100u);
}

TEST_F(FaultTest, SitesAreIndependentStreams) {
  FaultInjector& injector = FaultInjector::Global();
  injector.SetSeed(7);
  ASSERT_TRUE(injector.Arm("sa:p0.5,sb:p0.5").ok());
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(fault::Hit("sa").has_value());
    b.push_back(fault::Hit("sb").has_value());
  }
  // Same trigger, same seed — but the site name is mixed into the RNG, so
  // the two schedules diverge.
  EXPECT_NE(a, b);
}

TEST_F(FaultTest, RearmReplacesTheRule) {
  FaultInjector& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Arm("t.a:n1#EIO").ok());
  ASSERT_TRUE(injector.Arm("t.a:n2#ENOSPC").ok());
  EXPECT_FALSE(fault::Hit("t.a").has_value());  // n2: first hit passes
  auto action = fault::Hit("t.a");
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->err, ENOSPC);
}

TEST_F(FaultTest, ResetClearsEverything) {
  ASSERT_TRUE(FaultInjector::Global().Arm("t.a:n1,t.b:n1").ok());
  (void)fault::Hit("t.a");
  FaultInjector::Global().Reset();
  EXPECT_FALSE(fault::Armed());
  EXPECT_TRUE(FaultInjector::Global().SiteStats().empty());
  EXPECT_EQ(FaultInjector::Global().total_fires(), 0u);
}

TEST_F(FaultTest, ScopedFaultArmsInScopeAndHealsOnExit) {
  {
    ScopedFault fault("t.a:n1#ENOSPC");
    ASSERT_TRUE(fault.status().ok());
    EXPECT_TRUE(fault::Armed());
    EXPECT_TRUE(fault::Hit("t.a").has_value());
    EXPECT_EQ(fault.fires(), 1u);
  }
  // Scope exit heals: no rules, no counters, fast path restored.
  EXPECT_FALSE(fault::Armed());
  EXPECT_TRUE(fault::Check("t.a").ok());
  EXPECT_EQ(FaultInjector::Global().total_fires(), 0u);
}

TEST_F(FaultTest, ScopedFaultSurfacesMalformedSpecs) {
  ScopedFault fault("s:x5");
  EXPECT_FALSE(fault.status().ok());
  EXPECT_FALSE(fault::Armed());
}

}  // namespace
}  // namespace ziggy
