// Tests for the session layer (engine/session.h), the LIKE operator, and
// table sampling.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "engine/session.h"
#include "query/parser.h"
#include "stats/descriptive.h"

namespace ziggy {
namespace {

ExplorationSession MakeSession(SessionOptions opts = {}) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  return ExplorationSession(std::move(engine), opts);
}

// ------------------------------------------------------------------ session --

TEST(SessionTest, RecordsHistory) {
  ExplorationSession s = MakeSession();
  ASSERT_TRUE(s.Explore("revenue_index > 1.2").ok());
  ASSERT_TRUE(s.Explore("budget_0 > 1.0").ok());
  ASSERT_EQ(s.history().size(), 2u);
  EXPECT_EQ(s.history()[0].query_text, "revenue_index > 1.2");
  EXPECT_TRUE(s.history()[0].ok);
  EXPECT_GT(s.history()[0].inside_count, 0);
  EXPECT_GT(s.history()[0].views_returned, 0u);
}

TEST(SessionTest, RecordsFailures) {
  ExplorationSession s = MakeSession();
  EXPECT_FALSE(s.Explore("bogus_column > 1").ok());
  ASSERT_EQ(s.history().size(), 1u);
  EXPECT_FALSE(s.history()[0].ok);
  EXPECT_NE(s.history()[0].error.find("bogus_column"), std::string::npos);
  EXPECT_EQ(s.stats().queries_failed, 1u);
}

TEST(SessionTest, NoveltyDemoteMovesRepeatsToTheEnd) {
  SessionOptions opts;
  opts.novelty = SessionOptions::NoveltyPolicy::kDemote;
  ExplorationSession s = MakeSession(opts);
  Characterization r1 = s.Explore("revenue_index > 1.2").ValueOrDie();
  ASSERT_GE(r1.views.size(), 2u);
  // Re-run a closely related query: most views repeat, so the novel ones
  // (if any) must precede every repeated one.
  Characterization r2 = s.Explore("revenue_index > 1.25").ValueOrDie();
  bool seen_repeated = false;
  for (const auto& cv : r2.views) {
    const bool repeated = s.WasShownBefore(cv.view.columns);
    (void)repeated;  // all are "shown" after the call; use stats instead
  }
  EXPECT_GT(s.stats().views_demoted + s.stats().views_shown, 0u);
  (void)seen_repeated;
}

TEST(SessionTest, NoveltySuppressDropsRepeats) {
  SessionOptions opts;
  opts.novelty = SessionOptions::NoveltyPolicy::kSuppress;
  ExplorationSession s = MakeSession(opts);
  Characterization r1 = s.Explore("revenue_index > 1.2").ValueOrDie();
  const size_t first_count = r1.views.size();
  ASSERT_GT(first_count, 0u);
  // Identical query: every view repeats, all suppressed.
  Characterization r2 = s.Explore("revenue_index > 1.2").ValueOrDie();
  EXPECT_TRUE(r2.views.empty());
  EXPECT_EQ(s.stats().views_suppressed, first_count);
}

TEST(SessionTest, NoveltyOffKeepsEverything) {
  SessionOptions opts;
  opts.novelty = SessionOptions::NoveltyPolicy::kOff;
  ExplorationSession s = MakeSession(opts);
  Characterization r1 = s.Explore("revenue_index > 1.2").ValueOrDie();
  Characterization r2 = s.Explore("revenue_index > 1.2").ValueOrDie();
  EXPECT_EQ(r1.views.size(), r2.views.size());
  EXPECT_EQ(s.stats().views_suppressed, 0u);
  EXPECT_EQ(s.stats().views_demoted, 0u);
}

TEST(SessionTest, ResetForgetsShownViews) {
  SessionOptions opts;
  opts.novelty = SessionOptions::NoveltyPolicy::kSuppress;
  ExplorationSession s = MakeSession(opts);
  Characterization r1 = s.Explore("revenue_index > 1.2").ValueOrDie();
  ASSERT_FALSE(r1.views.empty());
  s.Reset();
  EXPECT_TRUE(s.history().empty());
  Characterization r2 = s.Explore("revenue_index > 1.2").ValueOrDie();
  EXPECT_EQ(r2.views.size(), r1.views.size());
}

TEST(SessionTest, HistoryBounded) {
  SessionOptions opts;
  opts.max_history = 2;
  ExplorationSession s = MakeSession(opts);
  ASSERT_TRUE(s.Explore("revenue_index > 1.2").ok());
  ASSERT_TRUE(s.Explore("budget_0 > 1.0").ok());
  ASSERT_TRUE(s.Explore("audience_0 > 0.5").ok());
  ASSERT_EQ(s.history().size(), 2u);
  EXPECT_EQ(s.history()[0].query_text, "budget_0 > 1.0");
}

TEST(SessionTest, StatsAccumulateTimings) {
  ExplorationSession s = MakeSession();
  ASSERT_TRUE(s.Explore("revenue_index > 1.2").ok());
  ASSERT_TRUE(s.Explore("budget_0 > 1.0").ok());
  EXPECT_EQ(s.stats().queries_run, 2u);
  EXPECT_GT(s.stats().preparation_ms, 0.0);
}

// --------------------------------------------------------------------- LIKE --

Table MakeLikeTable() {
  return Table::FromColumns(
             {Column::FromStrings("city", {"New York", "Newark", "Boston",
                                           "New Orleans", "", "Yonkers"}),
              Column::FromNumeric("x", {1, 2, 3, 4, 5, 6})})
      .ValueOrDie();
}

std::vector<size_t> EvalLike(const std::string& predicate) {
  Table t = MakeLikeTable();
  return ParsePredicate(predicate).ValueOrDie()->Evaluate(t).ValueOrDie().ToIndices();
}

TEST(LikeTest, PrefixWildcard) {
  EXPECT_EQ(EvalLike("city LIKE 'New%'"), (std::vector<size_t>{0, 1, 3}));
}

TEST(LikeTest, SuffixAndInfixWildcards) {
  EXPECT_EQ(EvalLike("city LIKE '%York'"), (std::vector<size_t>{0}));
  // Case-sensitive: "New Orleans" has no lowercase 'o'.
  EXPECT_EQ(EvalLike("city LIKE '%o%'"), (std::vector<size_t>{0, 2, 5}));
}

TEST(LikeTest, UnderscoreMatchesOneCharacter) {
  EXPECT_EQ(EvalLike("city LIKE 'New_rk'"), (std::vector<size_t>{1}));
  EXPECT_EQ(EvalLike("city LIKE 'New York_'"), (std::vector<size_t>{}));
}

TEST(LikeTest, ExactMatchWithoutWildcards) {
  EXPECT_EQ(EvalLike("city LIKE 'Boston'"), (std::vector<size_t>{2}));
}

TEST(LikeTest, NotLikeExcludesNulls) {
  // Row 4 is NULL: matches neither LIKE nor NOT LIKE.
  EXPECT_EQ(EvalLike("city NOT LIKE 'New%'"), (std::vector<size_t>{2, 5}));
}

TEST(LikeTest, OnNumericColumnIsTypeError) {
  Table t = MakeLikeTable();
  EXPECT_TRUE(ParsePredicate("x LIKE '1%'")
                  .ValueOrDie()
                  ->Evaluate(t)
                  .status()
                  .IsTypeMismatch());
}

TEST(LikeTest, ParseErrors) {
  EXPECT_TRUE(ParsePredicate("city LIKE 5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("city NOT 5").status().IsParseError());
}

TEST(LikeTest, ToStringRoundTrips) {
  Table t = MakeLikeTable();
  ExprPtr e = ParsePredicate("city NOT LIKE '%o%'").ValueOrDie();
  ExprPtr e2 = ParsePredicate(e->ToString()).ValueOrDie();
  EXPECT_EQ(e->Evaluate(t).ValueOrDie().ToIndices(),
            e2->Evaluate(t).ValueOrDie().ToIndices());
}

TEST(LikeMatcherTest, EdgeCases) {
  EXPECT_TRUE(LikeExpr::Matches("", ""));
  EXPECT_TRUE(LikeExpr::Matches("", "%"));
  EXPECT_FALSE(LikeExpr::Matches("", "_"));
  EXPECT_TRUE(LikeExpr::Matches("abc", "%%%"));
  EXPECT_TRUE(LikeExpr::Matches("abc", "a%c"));
  EXPECT_FALSE(LikeExpr::Matches("abc", "a%d"));
  EXPECT_TRUE(LikeExpr::Matches("aaa", "a%a"));
  EXPECT_TRUE(LikeExpr::Matches("abcabc", "%abc"));
}

// ----------------------------------------------------------------- sampling --

TEST(SampleRowsTest, SampleSizeRespected) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  Rng rng(3);
  Table s = ds.table.SampleRows(100, &rng);
  EXPECT_EQ(s.num_rows(), 100u);
  EXPECT_EQ(s.num_columns(), ds.table.num_columns());
}

TEST(SampleRowsTest, OversampleClampsToAllRows) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  Rng rng(3);
  Table s = ds.table.SampleRows(10 * ds.table.num_rows(), &rng);
  EXPECT_EQ(s.num_rows(), ds.table.num_rows());
}

TEST(SampleRowsTest, SampleMomentsApproximatePopulation) {
  SyntheticDataset ds = MakeCrimeDataset().ValueOrDie();
  Rng rng(5);
  Table s = ds.table.SampleRows(800, &rng);
  const auto& full = ds.table.column(1).numeric_data();
  const auto& sampled = s.column(1).numeric_data();
  NumericStats f = ComputeNumericStats(full);
  NumericStats g = ComputeNumericStats(sampled);
  EXPECT_NEAR(g.mean, f.mean, 5.0 * f.StdDev() / std::sqrt(800.0));
  EXPECT_NEAR(g.StdDev(), f.StdDev(), 0.15 * f.StdDev());
}

TEST(SampleRowsTest, SampledProfileApproximatesDependencies) {
  // The BlinkDB-style shortcut: a profile computed on a sample must rank
  // strong dependencies like the full profile does.
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  Rng rng(7);
  Table sample = ds.table.SampleRows(300, &rng);
  TableProfile full = TableProfile::Compute(ds.table).ValueOrDie();
  TableProfile approx = TableProfile::Compute(sample).ValueOrDie();
  // budget_0 (col 1) and budget_1 (col 2) are strongly dependent.
  EXPECT_GT(approx.Dependency(1, 2), 0.4);
  EXPECT_NEAR(approx.Dependency(1, 2), full.Dependency(1, 2), 0.2);
}

}  // namespace
}  // namespace ziggy
