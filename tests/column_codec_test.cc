// Property tests for the compression primitives (common/compress.h) and
// the per-column codecs (storage/column_codec.h): every encode/decode
// pair must round-trip bit for bit across the densities real columns
// produce — all-NULL, constant, high-cardinality, fixed-precision
// decimals, sorted runs, NaN/±inf, non-canonical NaN payloads — and the
// decoders must reject malformed payloads cleanly (the torture harness
// covers framed files; these tests attack the inner payloads directly).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/compress.h"
#include "common/random.h"
#include "storage/column_codec.h"
#include "storage/types.h"

namespace ziggy {
namespace {

// ------------------------------------------------------------- block ----

void ExpectLzRoundTrip(const std::string& raw) {
  const std::string block = LzCompress(raw);
  EXPECT_LE(block.size(), LzMaxCompressedSize(raw.size()));
  Result<std::string> back = LzDecompress(block, raw.size());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, raw);
}

TEST(LzBlockTest, RoundTripsAcrossShapes) {
  ExpectLzRoundTrip("");
  ExpectLzRoundTrip("a");
  ExpectLzRoundTrip("abcd");
  ExpectLzRoundTrip(std::string(100000, 'x'));  // long RLE run
  ExpectLzRoundTrip("abcabcabcabcabcabcabcabcabc");
  // Long literal runs exercise the 255-extension encoding on both sides.
  std::string incompressible;
  Rng rng(99);
  for (size_t i = 0; i < 70000; ++i) {
    incompressible.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  ExpectLzRoundTrip(incompressible);
  // Text with scattered repeats — matches at many offsets.
  std::string text;
  for (int i = 0; i < 3000; ++i) {
    text += "the quick brown fox " + std::to_string(i % 37) + "; ";
  }
  ExpectLzRoundTrip(text);
}

TEST(LzBlockTest, RepetitiveInputActuallyCompresses) {
  const std::string raw(100000, 'x');
  EXPECT_LT(LzCompress(raw).size(), raw.size() / 50);
}

TEST(LzBlockTest, GarbageInputNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t n = static_cast<size_t>(rng.UniformInt(0, 64));
    for (size_t i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    // Any result is fine as long as it is a clean Status or a string of
    // exactly the requested size.
    Result<std::string> out = LzDecompress(garbage, 128);
    if (out.ok()) EXPECT_EQ(out->size(), 128u);
  }
}

TEST(LzBlockTest, WrongRawSizeRejected) {
  const std::string raw = "abcabcabcabcabc";
  const std::string block = LzCompress(raw);
  EXPECT_FALSE(LzDecompress(block, raw.size() - 1).ok());
  EXPECT_FALSE(LzDecompress(block, raw.size() + 1).ok());
  EXPECT_FALSE(LzDecompress(std::string(), raw.size()).ok());
}

// -------------------------------------------------------- bit packing ----

TEST(BitPackTest, RoundTripsAllWidths) {
  Rng rng(11);
  for (unsigned width = 0; width <= 64; ++width) {
    std::vector<uint64_t> values(97);
    for (uint64_t& v : values) {
      const uint64_t mask =
          width == 64 ? ~0ull : ((1ull << width) - 1);
      v = (static_cast<uint64_t>(rng.UniformInt(0, 1 << 30)) << 34 ^
           static_cast<uint64_t>(rng.UniformInt(0, 1 << 30))) &
          mask;
    }
    std::string packed;
    PackBits(values.data(), values.size(), width, &packed);
    EXPECT_EQ(packed.size(), PackedBitsSize(values.size(), width));
    Result<std::vector<uint64_t>> back =
        UnpackBits(packed, values.size(), width);
    ASSERT_TRUE(back.ok()) << "width=" << width << ": " << back.status();
    EXPECT_EQ(*back, values) << "width=" << width;
  }
}

TEST(BitPackTest, RejectsMalformedPayloads) {
  std::vector<uint64_t> values = {1, 2, 3};
  std::string packed;
  PackBits(values.data(), values.size(), 2, &packed);
  EXPECT_FALSE(UnpackBits(packed + "x", values.size(), 2).ok());
  // A wrong count that changes the byte length is detectable (one that
  // stays within the same byte is not — the caller's n always comes from
  // a CRC-protected header).
  EXPECT_FALSE(UnpackBits(packed, values.size() + 4, 2).ok());
  EXPECT_FALSE(UnpackBits(packed, values.size(), 65).ok());
  // Nonzero pad bits: the canonical-encoding check. 3 values x 2 bits
  // leaves 2 pad bits in the single byte.
  std::string dirty = packed;
  dirty[dirty.size() - 1] = static_cast<char>(dirty[dirty.size() - 1] | 0x80);
  EXPECT_FALSE(UnpackBits(dirty, values.size(), 2).ok());
}

// ----------------------------------------------------- numeric codec ----

void ExpectNumericRoundTrip(const std::vector<double>& cells) {
  const std::string payload = EncodeNumericCells(cells.data(), cells.size());
  Result<std::vector<double>> back =
      DecodeNumericCells(payload, cells.size());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), cells.size());
  if (!cells.empty()) {
    EXPECT_EQ(std::memcmp(back->data(), cells.data(),
                          cells.size() * sizeof(double)),
              0)
        << "numeric payload not bit-identical";
  }
}

TEST(NumericCodecTest, RoundTripsAcrossDensities) {
  ExpectNumericRoundTrip({});
  ExpectNumericRoundTrip({0.0});
  ExpectNumericRoundTrip(std::vector<double>(1000, 42.5));      // constant
  ExpectNumericRoundTrip(std::vector<double>(777, NullNumeric()));  // all-NULL
  std::vector<double> sparse(500, NullNumeric());
  sparse[3] = 1.25;
  sparse[499] = -2.5;
  ExpectNumericRoundTrip(sparse);

  // High-cardinality full-entropy doubles (raw/lz territory).
  Rng rng(3);
  std::vector<double> entropy(2000);
  for (double& v : entropy) v = rng.Normal();
  ExpectNumericRoundTrip(entropy);

  // Fixed-precision decimals (dfor territory), negatives included.
  std::vector<double> decimals(2000);
  for (double& v : decimals) {
    v = std::round(rng.Normal() * 1000.0) / 1000.0;
  }
  ExpectNumericRoundTrip(decimals);

  // Sorted low-range run with NULL holes (delta sub-mode).
  std::vector<double> sorted;
  for (int i = 0; i < 3000; ++i) {
    sorted.push_back(static_cast<double>(1700000000 + i));
    if (i % 97 == 0) sorted.push_back(NullNumeric());
  }
  ExpectNumericRoundTrip(sorted);
}

TEST(NumericCodecTest, NonFiniteAndWeirdNaNsSurviveBitForBit) {
  const double inf = std::numeric_limits<double>::infinity();
  // A NaN with a non-canonical payload: must survive verbatim (it is a
  // *value* to the storage layer, only the canonical NaN is NULL).
  uint64_t weird_bits = 0x7FF8DEADBEEF0001ull;
  double weird_nan;
  std::memcpy(&weird_nan, &weird_bits, sizeof(weird_nan));
  ExpectNumericRoundTrip({inf, -inf, weird_nan, NullNumeric(), -0.0, 0.0,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -std::numeric_limits<double>::max(), 5e-324});
}

TEST(NumericCodecTest, QuantizedColumnsBeatRawSubstantially) {
  Rng rng(5);
  std::vector<double> decimals(4000);
  for (double& v : decimals) v = std::round(rng.Normal() * 100.0) / 100.0;
  const std::string payload =
      EncodeNumericCells(decimals.data(), decimals.size());
  EXPECT_LT(payload.size() * 2, decimals.size() * sizeof(double))
      << "2-decimal column should pack well below half of raw";
}

TEST(NumericCodecTest, MalformedPayloadsRejected) {
  std::vector<double> cells = {1.0, 2.0, 3.5};
  const std::string payload = EncodeNumericCells(cells.data(), cells.size());
  EXPECT_FALSE(DecodeNumericCells(payload, cells.size() + 1).ok());
  EXPECT_FALSE(DecodeNumericCells(payload, cells.size() - 1).ok());
  EXPECT_FALSE(DecodeNumericCells("", cells.size()).ok());
  EXPECT_FALSE(DecodeNumericCells("\xff", cells.size()).ok());  // bad tag
  // Hostile row count: must fail before allocating n doubles.
  EXPECT_FALSE(DecodeNumericCells(payload, size_t{1} << 60).ok());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<std::vector<double>> r =
        DecodeNumericCells(payload.substr(0, cut), cells.size());
    if (r.ok()) {
      // A prefix that still decodes must decode to different bytes being
      // impossible: the only acceptable "ok" is the full payload.
      ADD_FAILURE() << "truncated payload (cut=" << cut << ") accepted";
    }
  }
}

// ------------------------------------------------------- codes codec ----

void ExpectCodesRoundTrip(const std::vector<CategoryCode>& codes,
                          size_t dict_size) {
  const std::string payload =
      EncodeCategoryCodes(codes.data(), codes.size(), dict_size);
  Result<std::vector<CategoryCode>> back =
      DecodeCategoryCodes(payload, codes.size(), dict_size);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, codes);
}

TEST(CodesCodecTest, RoundTripsAcrossCardinalities) {
  ExpectCodesRoundTrip({}, 0);
  ExpectCodesRoundTrip(std::vector<CategoryCode>(1000, 0), 1);  // constant
  ExpectCodesRoundTrip(std::vector<CategoryCode>(1000, kNullCategory), 4);
  Rng rng(13);
  for (const size_t dict_size : {size_t{2}, size_t{9}, size_t{200},
                                 size_t{70000}}) {
    std::vector<CategoryCode> codes(1500);
    for (CategoryCode& c : codes) {
      const int64_t draw =
          rng.UniformInt(-1, static_cast<int64_t>(dict_size) - 1);
      c = static_cast<CategoryCode>(draw);
    }
    ExpectCodesRoundTrip(codes, dict_size);
  }
}

TEST(CodesCodecTest, LowCardinalityPacksWellBelowRaw) {
  Rng rng(17);
  std::vector<CategoryCode> codes(4000);
  for (CategoryCode& c : codes) {
    c = static_cast<CategoryCode>(rng.UniformInt(0, 8));
  }
  const std::string payload =
      EncodeCategoryCodes(codes.data(), codes.size(), 9);
  // 9 categories -> 4 bits/code vs 32 raw: expect way under a quarter.
  EXPECT_LT(payload.size() * 4, codes.size() * sizeof(CategoryCode));
}

TEST(CodesCodecTest, OutOfRangeCodesRejected) {
  std::vector<CategoryCode> codes = {0, 1, 2};
  const std::string payload =
      EncodeCategoryCodes(codes.data(), codes.size(), 3);
  // Same payload claimed against a SMALLER dictionary: code 2 is now out
  // of range and must be rejected, whatever inner encoding was chosen.
  EXPECT_FALSE(DecodeCategoryCodes(payload, codes.size(), 2).ok());
  EXPECT_FALSE(DecodeCategoryCodes(payload, codes.size() + 4, 3).ok());
  EXPECT_FALSE(DecodeCategoryCodes(payload, size_t{1} << 60, 3).ok());
}

// --------------------------------------------------------- byte blobs ----

TEST(ByteBlobTest, RoundTripsIncludingNonBmpLabels) {
  for (const std::string raw :
       {std::string(), std::string("plain ascii"),
        std::string("\xF0\x9F\x8E\xB8 guitar \xF0\x9F\x94\xA5 "
                    "\xE4\xB8\xAD\xE6\x96\x87 \x00 embedded", 34),
        std::string(50000, 'z')}) {
    const std::string payload = EncodeByteBlob(raw);
    Result<std::string> back = DecodeByteBlob(payload, 1 << 20);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, raw);
  }
}

TEST(ByteBlobTest, OversizeAndMalformedRejected) {
  const std::string payload = EncodeByteBlob(std::string(1000, 'q'));
  EXPECT_FALSE(DecodeByteBlob(payload, 999).ok());  // over the cap
  EXPECT_TRUE(DecodeByteBlob(payload, 1000).ok());
  EXPECT_FALSE(DecodeByteBlob("", 100).ok());
  EXPECT_FALSE(DecodeByteBlob("\x07garbage", 100).ok());
}

}  // namespace
}  // namespace ziggy
