// Concurrency stress tests for the serving layer.
//
// The central property: per-session results are a function of the
// session's own request order, the append schedule, and the configured
// scan thread count — never of cross-session interleaving, cache state,
// or batching. The ByteMatch test drives N threads through phase-barriered
// mixed traffic (characterize + appends + cache churn) and demands the
// rendered results equal a single-threaded replay character for character.
// (Near-miss patching is off there: patching changes floating-point
// summation order by design; its own test checks exact invariants.)
//
// Run under -fsanitize=address,undefined and -fsanitize=thread in CI.

#include <gtest/gtest.h>

#include <barrier>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "serve/ziggy_server.h"

namespace ziggy {
namespace {

constexpr size_t kThreads = 4;
constexpr size_t kPhases = 3;
constexpr size_t kQueriesPerPhase = 5;

SyntheticDataset MakeDataset() {
  SyntheticSpec spec;
  spec.num_rows = 1100;  // not word-aligned: 1100 = 17 words + 12-bit tail
  spec.planted_fraction = 0.2;
  spec.themes = {
      {"alpha", 3, 0.8, 1.0, 1.2, 0.0},
      {"beta", 2, 0.7, -0.8, 1.0, 0.0},
  };
  spec.num_noise_columns = 2;
  spec.num_categorical = 1;
  spec.num_shifted_categorical = 1;
  spec.seed = 77;
  auto ds = GenerateSynthetic(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).ValueOrDie();
}

// Deterministic rendering: everything the user sees, nothing that depends
// on wall clock or sketch provenance.
std::string Render(const Characterization& c) {
  std::ostringstream os;
  os << "in=" << c.inside_count << " out=" << c.outside_count
     << " cand=" << c.num_candidates << " dropped=" << c.views_dropped << "\n";
  for (const auto& cv : c.views) {
    os << " view";
    for (size_t col : cv.view.columns) os << " " << col;
    os << " score=" << FormatDouble(cv.view.score.total, 12)
       << " tight=" << FormatDouble(cv.view.tightness, 12)
       << " p=" << FormatDouble(cv.view.aggregated_p_value, 12) << " | "
       << cv.explanation.headline << "\n";
  }
  return os.str();
}

// Per-(session, phase) query scripts. Strings are fixed; the selections
// they evaluate to change with the table generation, which is exactly what
// the replay must reproduce. Sessions deliberately overlap (shared-cache
// traffic) but also have private refinements.
std::vector<std::vector<std::vector<std::string>>> MakeScripts(
    const SyntheticDataset& ds) {
  std::vector<std::vector<std::vector<std::string>>> scripts(
      kThreads, std::vector<std::vector<std::string>>(kPhases));
  const std::string& driver = ds.selection_predicate;
  for (size_t s = 0; s < kThreads; ++s) {
    for (size_t p = 0; p < kPhases; ++p) {
      auto& q = scripts[s][p];
      q.push_back(driver);  // every session, every phase: maximal sharing
      q.push_back("alpha_0 > " + FormatDouble(0.1 * static_cast<double>(p), 6));
      q.push_back("beta_0 < " + FormatDouble(-0.2 + 0.1 * static_cast<double>(s), 6));
      q.push_back("driver > " +
                  FormatDouble(0.5 + 0.05 * static_cast<double>(s + p), 6));
      q.push_back("alpha_1 BETWEEN -1 AND " +
                  FormatDouble(0.5 + 0.25 * static_cast<double>(s), 6));
      EXPECT_EQ(q.size(), kQueriesPerPhase);
    }
  }
  return scripts;
}

// Append batches reuse existing rows (SampleRows), so value ranges and
// category sets never grow: the deterministic migration path stays active.
std::vector<Table> MakeAppendBatches(const SyntheticDataset& ds) {
  std::vector<Table> batches;
  for (size_t p = 0; p + 1 < kPhases; ++p) {
    Rng rng(900 + p);
    batches.push_back(ds.table.SampleRows(40 + 10 * p, &rng));
  }
  return batches;
}

ServeOptions StressOptions() {
  ServeOptions options;
  options.engine.search.min_tightness = 0.25;
  options.engine.search.max_views = 6;
  options.patch_near_misses = false;  // bit-reproducibility
  options.scan_threads = 1;
  options.max_batch = 8;
  return options;
}

using ResultGrid = std::vector<std::vector<std::string>>;  // [session][phase*q]

// Runs the full scripted workload; `concurrent` decides whether sessions
// run on threads (with phase barriers) or sequentially.
ResultGrid RunWorkload(const SyntheticDataset& ds, const ServeOptions& options,
                       bool concurrent, bool churn_cache) {
  auto server_or = ZiggyServer::Create(ds.table, options);
  EXPECT_TRUE(server_or.ok());
  ZiggyServer* server = server_or->get();

  const auto scripts = MakeScripts(ds);
  const std::vector<Table> appends = MakeAppendBatches(ds);
  std::vector<uint64_t> sessions;
  for (size_t s = 0; s < kThreads; ++s) sessions.push_back(server->OpenSession());

  ResultGrid results(kThreads);
  auto run_query = [&](size_t s, const std::string& query) {
    Result<Characterization> r = server->Characterize(sessions[s], query);
    ASSERT_TRUE(r.ok()) << "session " << s << " query '" << query
                        << "': " << r.status().ToString();
    results[s].push_back(Render(*r));
  };

  if (!concurrent) {
    for (size_t p = 0; p < kPhases; ++p) {
      for (size_t s = 0; s < kThreads; ++s) {
        for (const std::string& q : scripts[s][p]) run_query(s, q);
      }
      if (churn_cache) server->FlushSketchCache();
      if (p + 1 < kPhases) EXPECT_TRUE(server->Append(appends[p]).ok());
    }
    return results;
  }

  // Concurrent: all sessions hammer inside a phase; appends happen at the
  // barriers (the completion step runs on exactly one thread).
  size_t phase = 0;
  std::barrier barrier(static_cast<std::ptrdiff_t>(kThreads), [&]() noexcept {
    if (churn_cache) server->FlushSketchCache();
    if (phase + 1 < kPhases) {
      const Status st = server->Append(appends[phase]);
      if (!st.ok()) std::abort();  // noexcept completion: fail loudly
    }
    ++phase;
  });
  std::vector<std::thread> workers;
  for (size_t s = 0; s < kThreads; ++s) {
    workers.emplace_back([&, s] {
      for (size_t p = 0; p < kPhases; ++p) {
        for (const std::string& q : scripts[s][p]) run_query(s, q);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& w : workers) w.join();
  return results;
}

TEST(ServeStressTest, ConcurrentMixedTrafficByteMatchesSequentialReplay) {
  const SyntheticDataset ds = MakeDataset();
  const ServeOptions options = StressOptions();

  const ResultGrid concurrent = RunWorkload(ds, options, /*concurrent=*/true,
                                            /*churn_cache=*/false);
  const ResultGrid replay = RunWorkload(ds, options, /*concurrent=*/false,
                                        /*churn_cache=*/false);

  ASSERT_EQ(concurrent.size(), replay.size());
  for (size_t s = 0; s < kThreads; ++s) {
    ASSERT_EQ(concurrent[s].size(), replay[s].size()) << "session " << s;
    for (size_t i = 0; i < concurrent[s].size(); ++i) {
      EXPECT_EQ(concurrent[s][i], replay[s][i])
          << "session " << s << " request " << i << " diverged";
    }
  }
}

// Cache state must be semantically invisible: churned (flushed mid-run,
// tiny budget forcing evictions) vs. untouched caches, identical results.
TEST(ServeStressTest, CacheChurnDoesNotChangeResults) {
  const SyntheticDataset ds = MakeDataset();

  ServeOptions tiny = StressOptions();
  tiny.cache_budget_bytes = 1 << 14;  // a few entries per shard at best
  const ResultGrid churned = RunWorkload(ds, tiny, /*concurrent=*/true,
                                         /*churn_cache=*/true);

  ServeOptions roomy = StressOptions();
  const ResultGrid clean = RunWorkload(ds, roomy, /*concurrent=*/false,
                                       /*churn_cache=*/false);

  for (size_t s = 0; s < kThreads; ++s) {
    ASSERT_EQ(churned[s].size(), clean[s].size());
    for (size_t i = 0; i < churned[s].size(); ++i) {
      EXPECT_EQ(churned[s][i], clean[s][i])
          << "session " << s << " request " << i;
    }
  }
}

// Near-miss patching changes float summation order (documented); exact
// integer statistics must survive it, and nothing may crash or race under
// concurrent patch/evict/append traffic.
TEST(ServeStressTest, PatchingTrafficKeepsExactInvariants) {
  const SyntheticDataset ds = MakeDataset();
  ServeOptions options = StressOptions();
  options.patch_near_misses = true;
  options.cache_budget_bytes = 1 << 16;

  auto server_or = ZiggyServer::Create(ds.table, options);
  ASSERT_TRUE(server_or.ok());
  ZiggyServer* server = server_or->get();

  std::vector<std::thread> workers;
  std::atomic<size_t> failures{0};
  for (size_t s = 0; s < kThreads; ++s) {
    workers.emplace_back([&, s] {
      const uint64_t sid = server->OpenSession();
      for (size_t i = 0; i < 24; ++i) {
        // Drifting thresholds: consecutive selections differ by a sliver —
        // prime near-miss territory.
        const std::string q =
            "driver > " +
            FormatDouble(0.4 + 0.01 * static_cast<double>((s * 24 + i) % 40), 6);
        const std::shared_ptr<const ServingState> state = server->state();
        Result<Characterization> r = server->Characterize(sid, q);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        // Exact invariant: the two sides always partition some generation's
        // row count (the request's generation is >= the snapshot observed
        // just before it).
        const int64_t total = r->inside_count + r->outside_count;
        if (total < static_cast<int64_t>(state->table().num_rows())) ++failures;
      }
    });
  }
  // Concurrent append + flush churn.
  std::thread churner([&] {
    for (size_t i = 0; i < 6; ++i) {
      Rng rng(4000 + i);
      if (!server->Append(ds.table.SampleRows(25, &rng)).ok()) ++failures;
      if (i % 2 == 0) server->FlushSketchCache();
    }
  });
  for (auto& w : workers) w.join();
  churner.join();
  EXPECT_EQ(failures.load(), 0u);

  const ServeStats stats = server->stats();
  EXPECT_EQ(stats.requests, kThreads * 24);
  EXPECT_EQ(stats.appends, 6u);
  EXPECT_EQ(stats.generation, 6u);
}

// The batcher must be a pure performance device: results equal solo
// Build, and coalescing must actually occur under a straggler window.
TEST(ServeStressTest, CoalescedScansMatchSoloBuilds) {
  const SyntheticDataset ds = MakeDataset();
  auto profile_or = TableProfile::Compute(ds.table);
  ASSERT_TRUE(profile_or.ok());
  const TableProfile& profile = *profile_or;

  ScanBatcher::Options opts;
  opts.max_batch = kThreads;
  opts.window_us = 100000;  // generous: all threads join one scan
  opts.num_threads = 1;
  ScanBatcher batcher(opts);

  std::vector<Selection> selections;
  for (size_t s = 0; s < kThreads; ++s) {
    Selection sel(ds.table.num_rows());
    for (size_t r = s; r < ds.table.num_rows(); r += s + 2) sel.Set(r);
    selections.push_back(std::move(sel));
  }

  std::vector<std::shared_ptr<const SelectionSketches>> batched(kThreads);
  std::barrier start(static_cast<std::ptrdiff_t>(kThreads));
  std::vector<std::thread> workers;
  for (size_t s = 0; s < kThreads; ++s) {
    workers.emplace_back([&, s] {
      start.arrive_and_wait();  // near-simultaneous arrival at the batcher
      batched[s] = batcher.Build(ds.table, profile, /*generation=*/0,
                                 selections[s], nullptr);
    });
  }
  for (auto& w : workers) w.join();

  for (size_t s = 0; s < kThreads; ++s) {
    const SelectionSketches solo =
        SelectionSketches::Build(ds.table, profile, selections[s], 1);
    for (size_t c = 0; c < ds.table.num_columns(); ++c) {
      EXPECT_EQ(batched[s]->column_sketch(c).count, solo.column_sketch(c).count);
      EXPECT_EQ(batched[s]->column_sketch(c).sum, solo.column_sketch(c).sum);
      EXPECT_EQ(batched[s]->column_sketch(c).sum_sq, solo.column_sketch(c).sum_sq);
    }
  }
  const ScanBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, kThreads);
  EXPECT_GE(stats.max_batch_size, 2u);
}

// Session isolation: one session's novelty state must not leak into
// another's results even though they share every cache.
TEST(ServeStressTest, SessionsAreIsolated) {
  const SyntheticDataset ds = MakeDataset();
  auto server_or = ZiggyServer::Create(ds.table, StressOptions());
  ASSERT_TRUE(server_or.ok());
  ZiggyServer* server = server_or->get();

  SessionOptions suppress;
  suppress.novelty = SessionOptions::NoveltyPolicy::kSuppress;
  const uint64_t a = server->OpenSession(suppress);
  const uint64_t b = server->OpenSession(suppress);
  const std::string q = ds.selection_predicate;

  // Session a sees the views once; the repeat suppresses them all.
  Result<Characterization> a1 = server->Characterize(a, q);
  Result<Characterization> a2 = server->Characterize(a, q);
  ASSERT_TRUE(a1.ok() && a2.ok());
  ASSERT_FALSE(a1->views.empty());
  EXPECT_TRUE(a2->views.empty());
  // Session b's first request must look like a's first, not a's second.
  Result<Characterization> b1 = server->Characterize(b, q);
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(Render(*b1), Render(*a1));

  auto stats_a = server->GetSessionStats(a);
  auto stats_b = server->GetSessionStats(b);
  ASSERT_TRUE(stats_a.ok() && stats_b.ok());
  EXPECT_EQ(stats_a->queries_run, 2u);
  EXPECT_EQ(stats_b->queries_run, 1u);

  EXPECT_TRUE(server->CloseSession(b).ok());
  EXPECT_FALSE(server->CloseSession(b).ok());
  EXPECT_EQ(server->num_sessions(), 1u);
}

}  // namespace
}  // namespace ziggy
