// Unit tests for the zig core: TableProfile, component builder,
// ComponentTable, Zig-Dissimilarity. Includes the key shared-computation
// property: kSharedSketch and kTwoScan preparation agree.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "zig/component_builder.h"
#include "zig/dissimilarity.h"
#include "zig/profile.h"

namespace ziggy {
namespace {

// Test fixture table: two correlated numeric columns whose behaviour flips
// inside the selection, one independent numeric column, one categorical
// column skewed inside the selection.
struct Fixture {
  Table table;
  Selection selection;
};

Fixture MakeFixture(size_t n = 600, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<double> noise(n);
  std::vector<std::string> cat(n);
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inside = i < n / 4;  // first quarter is the selection
    if (inside) sel.Set(i);
    const double f = rng.Normal();
    if (inside) {
      // Shifted mean, inflated dispersion, broken correlation.
      x[i] = 3.0 + 2.0 * rng.Normal();
      y[i] = 3.0 + 2.0 * rng.Normal();
      cat[i] = rng.Bernoulli(0.8) ? "hot" : ("c" + std::to_string(rng.UniformInt(0, 3)));
    } else {
      x[i] = 0.9 * f + 0.44 * rng.Normal();
      y[i] = 0.9 * f + 0.44 * rng.Normal();
      cat[i] = "c" + std::to_string(rng.UniformInt(0, 3));
    }
    noise[i] = rng.Normal();
  }
  Fixture fx{Table::FromColumns({Column::FromNumeric("x", x),
                                 Column::FromNumeric("y", y),
                                 Column::FromNumeric("noise", noise),
                                 Column::FromStrings("cat", cat)})
                 .ValueOrDie(),
             sel};
  return fx;
}

// ---------------------------------------------------------------- profile --

TEST(TableProfileTest, ColumnSketchesMatchDirectStats) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  const auto& data = fx.table.column(0).numeric_data();
  NumericStats direct = ComputeNumericStats(data);
  EXPECT_EQ(p.ColumnSketch(0).count, direct.count);
  EXPECT_NEAR(p.ColumnSketch(0).Mean(), direct.mean, 1e-10);
  EXPECT_NEAR(p.ColumnSketch(0).StdDev(), direct.StdDev(), 1e-8);
}

TEST(TableProfileTest, DependencyMatrixSymmetricAndBounded) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  for (size_t i = 0; i < p.num_columns(); ++i) {
    EXPECT_DOUBLE_EQ(p.Dependency(i, i), 1.0);
    for (size_t j = 0; j < p.num_columns(); ++j) {
      EXPECT_DOUBLE_EQ(p.Dependency(i, j), p.Dependency(j, i));
      EXPECT_GE(p.Dependency(i, j), 0.0);
      EXPECT_LE(p.Dependency(i, j), 1.0);
    }
  }
}

TEST(TableProfileTest, CorrelatedPairIsTracked) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  // x (col 0) and y (col 1) are strongly correlated outside and the global
  // correlation is still high.
  EXPECT_GT(p.Dependency(0, 1), 0.4);
  EXPECT_GE(p.NumericPairIndex(0, 1), 0);
  EXPECT_EQ(p.NumericPairIndex(0, 1), p.NumericPairIndex(1, 0));
}

TEST(TableProfileTest, UncorrelatedPairBelowFloorNotTracked) {
  Fixture fx = MakeFixture();
  ProfileOptions opts;
  opts.pair_dependency_floor = 0.2;
  TableProfile p = TableProfile::Compute(fx.table, opts).ValueOrDie();
  EXPECT_LT(p.Dependency(0, 2), 0.2);
  EXPECT_EQ(p.NumericPairIndex(0, 2), -1);
}

TEST(TableProfileTest, MaxTrackedPairsCapHolds) {
  Fixture fx = MakeFixture();
  ProfileOptions opts;
  opts.pair_dependency_floor = 0.0;
  opts.max_tracked_pairs = 1;
  TableProfile p = TableProfile::Compute(fx.table, opts).ValueOrDie();
  EXPECT_LE(p.tracked_numeric_pairs().size(), 1u);
}

TEST(TableProfileTest, CategoryCountsStored) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  const auto& counts = p.CategoryCountsOf(3);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, static_cast<int64_t>(fx.table.num_rows()));
  EXPECT_TRUE(p.CategoryCountsOf(0).empty());  // numeric column has none
}

TEST(TableProfileTest, EmptyTableRejected) {
  EXPECT_FALSE(TableProfile::Compute(Table()).ok());
}

TEST(TableProfileTest, MemoryUsageReported) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  EXPECT_GT(p.MemoryUsageBytes(), 0u);
}

// ------------------------------------------------------- component builder --

TEST(ComponentBuilderTest, DetectsPlantedMeanShift) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();

  const ZigComponent* mean_x = ct.Find(ComponentKind::kMeanShift, 0);
  ASSERT_NE(mean_x, nullptr);
  EXPECT_GT(mean_x->effect.value, 1.0);  // planted +3 sd shift
  EXPECT_LT(mean_x->p_value, 1e-6);
  EXPECT_GT(mean_x->inside_value, mean_x->outside_value);

  const ZigComponent* mean_noise = ct.Find(ComponentKind::kMeanShift, 2);
  ASSERT_NE(mean_noise, nullptr);
  EXPECT_LT(std::fabs(mean_noise->effect.value), 0.4);
}

TEST(ComponentBuilderTest, DetectsPlantedDispersionShift) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  const ZigComponent* disp = ct.Find(ComponentKind::kDispersionShift, 0);
  ASSERT_NE(disp, nullptr);
  EXPECT_GT(disp->effect.value, 0.3);  // inside sd 2 vs outside sd ~1
}

TEST(ComponentBuilderTest, DetectsPlantedCorrelationBreak) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  const ZigComponent* corr = ct.Find(ComponentKind::kCorrelationShift, 0, 1);
  ASSERT_NE(corr, nullptr);
  EXPECT_GT(corr->outside_value, 0.7);   // strong correlation outside
  EXPECT_LT(corr->inside_value, 0.4);    // broken inside
  EXPECT_LT(corr->effect.value, -0.5);   // Fisher z difference negative
  EXPECT_LT(corr->p_value, 1e-4);
}

TEST(ComponentBuilderTest, DetectsPlantedFrequencyShift) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  const ZigComponent* freq = ct.Find(ComponentKind::kFrequencyShift, 3);
  ASSERT_NE(freq, nullptr);
  EXPECT_LT(freq->p_value, 1e-6);
  EXPECT_EQ(freq->detail, "hot");  // most over-represented category
}

TEST(ComponentBuilderTest, SharedSketchEqualsTwoScan) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentBuildOptions shared;
  shared.mode = PreparationMode::kSharedSketch;
  ComponentBuildOptions naive;
  naive.mode = PreparationMode::kTwoScan;
  ComponentTable a = BuildComponents(fx.table, p, fx.selection, shared).ValueOrDie();
  ComponentTable b = BuildComponents(fx.table, p, fx.selection, naive).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const ZigComponent& ca = a.components()[i];
    const ZigComponent& cb = b.components()[i];
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.col_a, cb.col_a);
    EXPECT_EQ(ca.col_b, cb.col_b);
    EXPECT_EQ(ca.inside_n, cb.inside_n);
    EXPECT_EQ(ca.outside_n, cb.outside_n);
    EXPECT_NEAR(ca.effect.value, cb.effect.value, 1e-7)
        << ComponentKindToString(ca.kind) << " col " << ca.col_a;
    EXPECT_NEAR(ca.p_value, cb.p_value, 1e-7);
  }
}

TEST(ComponentBuilderTest, EmptySelectionRejected) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  Selection empty(fx.table.num_rows());
  EXPECT_TRUE(BuildComponents(fx.table, p, empty).status().IsFailedPrecondition());
}

TEST(ComponentBuilderTest, FullSelectionRejected) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  EXPECT_TRUE(BuildComponents(fx.table, p, Selection::All(fx.table.num_rows()))
                  .status()
                  .IsFailedPrecondition());
}

TEST(ComponentBuilderTest, SizeMismatchRejected) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  EXPECT_TRUE(BuildComponents(fx.table, p, Selection(3)).status().IsInvalidArgument());
}

TEST(ComponentBuilderTest, MinSideRowsSkipsTinyComponents) {
  Fixture fx = MakeFixture(600);
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  Selection tiny = Selection::FromIndices(fx.table.num_rows(), {0, 1});
  ComponentBuildOptions opts;
  opts.min_side_rows = 5;
  ComponentTable ct = BuildComponents(fx.table, p, tiny, opts).ValueOrDie();
  EXPECT_EQ(ct.size(), 0u);  // every component skipped: inside too small
}

TEST(ComponentBuilderTest, CountsExposed) {
  Fixture fx = MakeFixture(600);
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  EXPECT_EQ(ct.inside_count(), 150);
  EXPECT_EQ(ct.outside_count(), 450);
}

// --------------------------------------------------------- component table --

TEST(ComponentTableTest, FindIsOrderInsensitiveForPairs) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  EXPECT_EQ(ct.Find(ComponentKind::kCorrelationShift, 0, 1),
            ct.Find(ComponentKind::kCorrelationShift, 1, 0));
}

TEST(ComponentTableTest, ForColumnFindsAllKinds) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  auto comps = ct.ForColumn(0);
  bool has_mean = false;
  bool has_disp = false;
  for (const auto* c : comps) {
    has_mean |= c->kind == ComponentKind::kMeanShift;
    has_disp |= c->kind == ComponentKind::kDispersionShift;
  }
  EXPECT_TRUE(has_mean);
  EXPECT_TRUE(has_disp);
}

TEST(ComponentTableTest, NormalizedMagnitudeInUnitInterval) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  for (const auto& c : ct.components()) {
    const double m = ct.NormalizedMagnitude(c);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

TEST(ComponentTableTest, ScalesPositive) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  for (size_t k = 0; k < kNumComponentKinds; ++k) {
    EXPECT_GT(ct.NormalizationScale(static_cast<ComponentKind>(k)), 0.0);
  }
}

// ----------------------------------------------------------- dissimilarity --

TEST(DissimilarityTest, ShiftedViewOutscoresNoise) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  ZigWeights w;
  const double shifted = ZigDissimilarity(ct, {0, 1}, w);
  const double noise = ZigDissimilarity(ct, {2}, w);
  EXPECT_GT(shifted, noise);
}

TEST(DissimilarityTest, EmptyViewScoresZero) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  EXPECT_DOUBLE_EQ(ZigDissimilarity(ct, {}, ZigWeights{}), 0.0);
}

TEST(DissimilarityTest, WeightsSteerTheScore) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  // The categorical column only carries a frequency shift: zeroing the
  // frequency weight must zero its score.
  ZigWeights only_freq;
  only_freq.mean_shift = only_freq.dispersion_shift = only_freq.correlation_shift = 0;
  only_freq.association_shift = only_freq.contingency_shift = 0;
  only_freq.frequency_shift = 1.0;
  EXPECT_GT(ZigDissimilarity(ct, {3}, only_freq), 0.0);
  ZigWeights no_freq;
  no_freq.frequency_shift = 0.0;
  no_freq.association_shift = 0.0;
  no_freq.contingency_shift = 0.0;
  EXPECT_DOUBLE_EQ(ZigDissimilarity(ct, {3}, no_freq), 0.0);
}

TEST(DissimilarityTest, BreakdownCountsComponents) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  ScoreBreakdown sb = ScoreView(ct, {0, 1}, ZigWeights{});
  EXPECT_EQ(sb.count_per_kind[static_cast<size_t>(ComponentKind::kMeanShift)], 2u);
  EXPECT_EQ(sb.count_per_kind[static_cast<size_t>(ComponentKind::kCorrelationShift)],
            1u);
  EXPECT_GT(sb.total, 0.0);
}

TEST(DissimilarityTest, ScoreIsInUnitInterval) {
  Fixture fx = MakeFixture();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentTable ct = BuildComponents(fx.table, p, fx.selection).ValueOrDie();
  for (const std::vector<size_t>& cols :
       {std::vector<size_t>{0}, {1}, {2}, {3}, {0, 1}, {0, 1, 2, 3}}) {
    const double s = ZigDissimilarity(ct, cols, ZigWeights{});
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

// Property sweep: shared-vs-two-scan equivalence across selection shapes.
class PreparationEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(PreparationEquivalence, AgreesForSelectionFraction) {
  const double frac = GetParam();
  Fixture fx = MakeFixture(400, 99);
  Rng rng(1234);
  Selection sel(fx.table.num_rows());
  for (size_t i = 0; i < fx.table.num_rows(); ++i) {
    if (rng.Bernoulli(frac)) sel.Set(i);
  }
  if (sel.Count() == 0 || sel.Count() == fx.table.num_rows()) GTEST_SKIP();
  TableProfile p = TableProfile::Compute(fx.table).ValueOrDie();
  ComponentBuildOptions shared;
  shared.mode = PreparationMode::kSharedSketch;
  ComponentBuildOptions naive;
  naive.mode = PreparationMode::kTwoScan;
  ComponentTable a = BuildComponents(fx.table, p, sel, shared).ValueOrDie();
  ComponentTable b = BuildComponents(fx.table, p, sel, naive).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.components()[i].effect.value, b.components()[i].effect.value, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, PreparationEquivalence,
                         ::testing::Values(0.02, 0.1, 0.25, 0.5, 0.75, 0.95));

}  // namespace
}  // namespace ziggy
