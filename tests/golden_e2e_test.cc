// Golden end-to-end test: a fixed synthetic table, a full characterize
// run, and a checked-in rendering of the ranked views + dissimilarity
// scores. Refactors of any pipeline stage (storage, sketches, components,
// search, validation, explanation — or the serving layer above them) that
// silently change results fail here loudly.
//
// To regenerate after an *intentional* behavior change:
//   ZIGGY_UPDATE_GOLDEN=1 ./golden_e2e_test
// and commit the updated tests/golden/boxoffice_views.golden with an
// explanation of why the output moved.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "data/synthetic.h"
#include "engine/report.h"
#include "engine/ziggy_engine.h"
#include "serve/ziggy_server.h"

#ifndef ZIGGY_SOURCE_DIR
#define ZIGGY_SOURCE_DIR "."
#endif

namespace ziggy {
namespace {

std::string GoldenPath() {
  return std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/boxoffice_views.golden";
}

ZiggyOptions GoldenOptions() {
  ZiggyOptions options;
  options.search.min_tightness = 0.3;
  options.search.max_views = 10;
  return options;
}

// Deterministic full rendering: everything except wall-clock timings and
// sketch provenance. Lives in the library (engine/report.h) because the
// daemon's VIEWS verb serves the same rendering — tests/daemon_test.cc
// byte-matches the wire output against this file's golden.
std::string RenderGolden(const Characterization& c, const Schema& schema) {
  return RenderCharacterizationReport(c, schema);
}

std::string RunGoldenPipeline() {
  auto ds = MakeBoxOfficeDataset(7);
  EXPECT_TRUE(ds.ok());
  auto engine = ZiggyEngine::Create(std::move(ds->table), GoldenOptions());
  EXPECT_TRUE(engine.ok());
  auto result = engine->CharacterizeQuery(ds->selection_predicate);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return RenderGolden(*result, engine->table().schema());
}

TEST(GoldenE2eTest, BoxOfficeCharacterizationMatchesGoldenFile) {
  const std::string actual = RunGoldenPipeline();
  ASSERT_FALSE(actual.empty());

  const std::string path = GoldenPath();
  if (std::getenv("ZIGGY_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with ZIGGY_UPDATE_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  EXPECT_EQ(actual, expected)
      << "pipeline output diverged from tests/golden/boxoffice_views.golden; "
         "if the change is intentional, regenerate with ZIGGY_UPDATE_GOLDEN=1";
}

// The serving layer must produce byte-identical output for the same
// request — on a cold scan AND on the cache-hit replay.
TEST(GoldenE2eTest, ServingLayerMatchesEngineGolden) {
  const std::string engine_output = RunGoldenPipeline();

  auto ds = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(ds.ok());
  ServeOptions options;
  options.engine = GoldenOptions();
  options.session.novelty = SessionOptions::NoveltyPolicy::kOff;
  auto server = ZiggyServer::Create(std::move(ds->table), options);
  ASSERT_TRUE(server.ok());

  const uint64_t cold = (*server)->OpenSession();
  const uint64_t warm = (*server)->OpenSession();
  auto first = (*server)->Characterize(cold, ds->selection_predicate);
  ASSERT_TRUE(first.ok());
  auto second = (*server)->Characterize(warm, ds->selection_predicate);
  ASSERT_TRUE(second.ok());

  const Schema& schema = (*server)->state()->table().schema();
  EXPECT_EQ(RenderGolden(*first, schema), engine_output);
  EXPECT_EQ(RenderGolden(*second, schema), engine_output);
  // And the warm request really came from the shared cache.
  EXPECT_EQ(second->sketch_source, SketchSource::kCacheExact);
  EXPECT_EQ((*server)->stats().sketch_exact_hits, 1u);
}

}  // namespace
}  // namespace ziggy
