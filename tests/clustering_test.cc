// Unit and property tests for views/clustering.h: complete linkage,
// dendrogram cuts, and the tightness guarantee the view search relies on.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "views/clustering.h"

namespace ziggy {
namespace {

// Helper: dense symmetric distance matrix from an upper-triangle spec.
std::vector<double> MakeMatrix(size_t n,
                               const std::vector<std::tuple<size_t, size_t, double>>& d,
                               double fill = 1.0) {
  std::vector<double> m(n * n, fill);
  for (size_t i = 0; i < n; ++i) m[i * n + i] = 0.0;
  for (const auto& [a, b, v] : d) {
    m[a * n + b] = v;
    m[b * n + a] = v;
  }
  return m;
}

std::vector<std::vector<size_t>> SortedClusters(std::vector<std::vector<size_t>> cs) {
  for (auto& c : cs) std::sort(c.begin(), c.end());
  std::sort(cs.begin(), cs.end());
  return cs;
}

TEST(CompleteLinkageTest, MergesClosestPairFirst) {
  // 0-1 close (0.1), 2 far from both.
  auto m = MakeMatrix(3, {{0, 1, 0.1}, {0, 2, 0.9}, {1, 2, 0.8}});
  Dendrogram d = CompleteLinkage(m, 3).ValueOrDie();
  ASSERT_EQ(d.merges().size(), 2u);
  EXPECT_DOUBLE_EQ(d.merges()[0].height, 0.1);
  // First merge joins leaves 0 and 1.
  const auto& first = d.merges()[0];
  EXPECT_TRUE((first.left == 0 && first.right == 1) ||
              (first.left == 1 && first.right == 0));
  // Second merge height is the complete-linkage (max) distance: 0.9.
  EXPECT_DOUBLE_EQ(d.merges()[1].height, 0.9);
}

TEST(CompleteLinkageTest, SingleItem) {
  Dendrogram d = CompleteLinkage({0.0}, 1).ValueOrDie();
  EXPECT_EQ(d.merges().size(), 0u);
  EXPECT_EQ(d.CutAtHeight(0.5).size(), 1u);
}

TEST(CompleteLinkageTest, RejectsBadInput) {
  EXPECT_FALSE(CompleteLinkage({}, 0).ok());
  EXPECT_FALSE(CompleteLinkage({0.0, 1.0}, 3).ok());
}

TEST(DendrogramTest, LeavesUnderRootCoversAll) {
  auto m = MakeMatrix(4, {{0, 1, 0.1}, {2, 3, 0.2}});
  Dendrogram d = CompleteLinkage(m, 4).ValueOrDie();
  const size_t root = 4 + d.merges().size() - 1;
  EXPECT_EQ(d.LeavesUnder(root), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(DendrogramTest, CutAtZeroGivesSingletons) {
  auto m = MakeMatrix(4, {{0, 1, 0.1}, {2, 3, 0.2}});
  Dendrogram d = CompleteLinkage(m, 4).ValueOrDie();
  EXPECT_EQ(d.CutAtHeight(0.0).size(), 4u);
}

TEST(DendrogramTest, CutAtInfinityGivesOneCluster) {
  auto m = MakeMatrix(4, {{0, 1, 0.1}, {2, 3, 0.2}});
  Dendrogram d = CompleteLinkage(m, 4).ValueOrDie();
  auto cs = d.CutAtHeight(10.0);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(SortedClusters(cs)[0], (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(DendrogramTest, CutSeparatesDistantGroups) {
  // Two tight pairs {0,1} and {2,3}, far apart.
  auto m = MakeMatrix(4, {{0, 1, 0.1}, {2, 3, 0.15}});
  Dendrogram d = CompleteLinkage(m, 4).ValueOrDie();
  auto cs = SortedClusters(d.CutAtHeight(0.5));
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(cs[1], (std::vector<size_t>{2, 3}));
}

TEST(DendrogramTest, CutPartitionsLeaves) {
  Rng rng(5);
  const size_t n = 24;
  std::vector<double> m(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = rng.Uniform(0.05, 1.0);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  Dendrogram d = CompleteLinkage(m, n).ValueOrDie();
  for (double h : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto cs = d.CutAtHeight(h);
    std::vector<size_t> all;
    for (const auto& c : cs) all.insert(all.end(), c.begin(), c.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), n) << "h=" << h;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(all[i], i);
  }
}

// The property the view search depends on (Eq. 3): every cluster produced
// by cutting at height h has max pairwise distance <= h... for complete
// linkage with monotone merge heights this holds for the merge heights
// observed. We verify directly against the original matrix.
class CompleteLinkageTightness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompleteLinkageTightness, ClustersRespectDiameterBound) {
  Rng rng(GetParam());
  const size_t n = 16;
  std::vector<double> m(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = rng.Uniform(0.0, 1.0);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  Dendrogram d = CompleteLinkage(m, n).ValueOrDie();
  for (double h : {0.2, 0.4, 0.6, 0.8}) {
    for (const auto& cluster : d.CutAtHeight(h)) {
      for (size_t a = 0; a < cluster.size(); ++a) {
        for (size_t b = a + 1; b < cluster.size(); ++b) {
          EXPECT_LE(m[cluster[a] * n + cluster[b]], h + 1e-9)
              << "cluster diameter violated at h=" << h;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompleteLinkageTightness,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DendrogramTest, MaxSizeSplitRespectsBudget) {
  // Five mutually close leaves: one cluster at h=0.5, but max_size=2 forces
  // splits.
  const size_t n = 5;
  std::vector<double> m(n * n, 0.2);
  for (size_t i = 0; i < n; ++i) m[i * n + i] = 0.0;
  Dendrogram d = CompleteLinkage(m, n).ValueOrDie();
  auto cs = d.CutAtHeightWithMaxSize(0.5, 2);
  std::vector<size_t> all;
  for (const auto& c : cs) {
    EXPECT_LE(c.size(), 2u);
    all.insert(all.end(), c.begin(), c.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(DendrogramTest, MaxSizeOneGivesSingletons) {
  const size_t n = 6;
  std::vector<double> m(n * n, 0.1);
  for (size_t i = 0; i < n; ++i) m[i * n + i] = 0.0;
  Dendrogram d = CompleteLinkage(m, n).ValueOrDie();
  EXPECT_EQ(d.CutAtHeightWithMaxSize(1.0, 1).size(), n);
}

TEST(DendrogramTest, AsciiRenderingMentionsLabels) {
  auto m = MakeMatrix(3, {{0, 1, 0.1}});
  Dendrogram d = CompleteLinkage(m, 3).ValueOrDie();
  const std::string ascii = d.ToAscii({"alpha", "beta", "gamma"});
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("beta"), std::string::npos);
  EXPECT_NE(ascii.find("h="), std::string::npos);
}

TEST(CompleteLinkageTest, MergeHeightsAreMonotone) {
  Rng rng(77);
  const size_t n = 20;
  std::vector<double> m(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = rng.Uniform(0, 1);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  Dendrogram d = CompleteLinkage(m, n).ValueOrDie();
  for (size_t i = 1; i < d.merges().size(); ++i) {
    EXPECT_GE(d.merges()[i].height, d.merges()[i - 1].height - 1e-12);
  }
}

}  // namespace
}  // namespace ziggy
