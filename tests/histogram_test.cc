// Unit tests for stats/histogram.h.

#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "storage/types.h"

namespace ziggy {
namespace {

TEST(HistogramTest, BinningBasics) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(2.5);   // bin 1
  h.Add(9.99);  // bin 4
  EXPECT_EQ(h.num_bins(), 5u);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 1);
}

TEST(HistogramTest, UpperBoundGoesToLastBin) {
  Histogram h(0.0, 10.0, 5);
  h.Add(10.0);
  EXPECT_EQ(h.bin_count(4), 1);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 2);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(1), 1);
}

TEST(HistogramTest, NaNSkipped) {
  Histogram h(0.0, 1.0, 2);
  h.Add(NullNumeric());
  EXPECT_EQ(h.total(), 0);
}

TEST(HistogramTest, DegenerateRangeSingleBin) {
  Histogram h(5.0, 5.0, 4);
  h.Add(5.0);
  h.Add(5.0);
  EXPECT_EQ(h.bin_count(0), 2);
}

TEST(HistogramTest, MassSumsToOne) {
  Histogram h = BuildHistogram({1, 2, 3, 4, 5, 6, 7, 8}, 4);
  double total = 0.0;
  for (size_t i = 0; i < h.num_bins(); ++i) total += h.Mass(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyMassIsZero) {
  Histogram h(0, 1, 3);
  EXPECT_DOUBLE_EQ(h.Mass(0), 0.0);
}

TEST(HistogramTest, SmoothedMassesStrictlyPositive) {
  Histogram h(0, 1, 4);
  h.Add(0.1);
  auto p = h.SmoothedMasses(0.5);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, AlignedHistogramsShareRange) {
  std::vector<double> data{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Selection sel = Selection::FromIndices(10, {0, 1, 2});
  Histogram in = BuildAlignedHistogram(data, sel, 0.0, 9.0, 3);
  Histogram out = BuildAlignedHistogram(data, sel.Invert(), 0.0, 9.0, 3);
  EXPECT_EQ(in.total() + out.total(), 10);
  EXPECT_DOUBLE_EQ(in.lo(), out.lo());
  EXPECT_DOUBLE_EQ(in.hi(), out.hi());
}

TEST(CategoryCountsTest, FullAndSelected) {
  Column c = Column::FromStrings("s", {"a", "b", "a", "c", "", "a"});
  auto counts = CategoryCounts(c);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[static_cast<size_t>(c.LookupLabel("a"))], 3);
  EXPECT_EQ(counts[static_cast<size_t>(c.LookupLabel("b"))], 1);

  Selection sel = Selection::FromIndices(6, {0, 1, 4});
  auto sub = CategoryCounts(c, sel);
  EXPECT_EQ(sub[static_cast<size_t>(c.LookupLabel("a"))], 1);
  EXPECT_EQ(sub[static_cast<size_t>(c.LookupLabel("b"))], 1);
  EXPECT_EQ(sub[static_cast<size_t>(c.LookupLabel("c"))], 0);
}

TEST(NormalizeCountsTest, WithAndWithoutSmoothing) {
  std::vector<int64_t> counts{3, 1, 0};
  auto exact = NormalizeCounts(counts, 0.0);
  EXPECT_DOUBLE_EQ(exact[0], 0.75);
  EXPECT_DOUBLE_EQ(exact[2], 0.0);
  auto smooth = NormalizeCounts(counts, 1.0);
  EXPECT_GT(smooth[2], 0.0);
  double total = 0.0;
  for (double v : smooth) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TotalVariationTest, KnownValuesAndBounds) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance({0.7, 0.3}, {0.3, 0.7}), 0.4);
}

TEST(KlDivergenceTest, PropertiesAndKnownValue) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> q{0.9, 0.1};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p), 0.0);
  const double expected = 0.5 * std::log(0.5 / 0.9) + 0.5 * std::log(0.5 / 0.1);
  EXPECT_NEAR(KlDivergence(p, q), expected, 1e-12);
  EXPECT_GT(KlDivergence(p, q), 0.0);
  // Zero mass in p contributes nothing.
  EXPECT_NEAR(KlDivergence({1.0, 0.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

}  // namespace
}  // namespace ziggy
