// Edge-case and failure-injection tests: degenerate tables, constant
// columns, all-null columns, single-column tables, engine option changes
// mid-session.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "data/synthetic.h"
#include "engine/ziggy_engine.h"
#include "zig/component_builder.h"

namespace ziggy {
namespace {

TEST(EdgeCaseTest, SingleNumericColumnTable) {
  Rng rng(1);
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = (i < 20 ? 3.0 : 0.0) + rng.Normal();
  Table t = Table::FromColumns({Column::FromNumeric("x", v)}).ValueOrDie();
  ZiggyEngine engine = ZiggyEngine::Create(std::move(t)).ValueOrDie();
  Characterization r = engine.CharacterizeQuery("x > 2").ValueOrDie();
  ASSERT_FALSE(r.views.empty());
  EXPECT_EQ(r.views[0].view.columns, (std::vector<size_t>{0}));
}

TEST(EdgeCaseTest, ConstantColumnProducesNoSpuriousViews) {
  Rng rng(2);
  std::vector<double> sig(200);
  std::vector<double> constant(200, 7.0);
  Selection sel(200);
  for (size_t i = 0; i < 200; ++i) {
    sig[i] = (i % 5 == 0 ? 2.0 : 0.0) + rng.Normal();
    if (i % 5 == 0) sel.Set(i);
  }
  Table t = Table::FromColumns({Column::FromNumeric("sig", sig),
                                Column::FromNumeric("constant", constant)})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  // The constant column's components must be undefined or flat; its
  // mean-shift must not look significant.
  const ZigComponent* mean_c = ct.Find(ComponentKind::kMeanShift, 1);
  ASSERT_NE(mean_c, nullptr);
  EXPECT_GT(mean_c->p_value, 0.9);
}

TEST(EdgeCaseTest, AllNullNumericColumnIsSkipped) {
  std::vector<double> nulls(50, NullNumeric());
  std::vector<double> ok(50);
  for (size_t i = 0; i < 50; ++i) ok[i] = static_cast<double>(i);
  Table t = Table::FromColumns(
                {Column::FromNumeric("nulls", nulls), Column::FromNumeric("ok", ok)})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  Selection sel = Selection::FromIndices(50, {0, 1, 2, 3, 4, 5, 6, 7});
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  EXPECT_EQ(ct.Find(ComponentKind::kMeanShift, 0), nullptr);
  EXPECT_NE(ct.Find(ComponentKind::kMeanShift, 1), nullptr);
}

TEST(EdgeCaseTest, AllCategoricalTable) {
  Rng rng(3);
  Column a = Column::Categorical("a");
  Column b = Column::Categorical("b");
  Selection sel(300);
  for (size_t i = 0; i < 300; ++i) {
    const bool inside = i % 3 == 0;
    if (inside) sel.Set(i);
    const int64_t code = rng.UniformInt(0, 3);
    a.AppendLabel(inside && rng.Bernoulli(0.7) ? "special"
                                               : "a" + std::to_string(code));
    b.AppendLabel("b" + std::to_string(code));
  }
  Table t = Table::FromColumns({std::move(a), std::move(b)}).ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  const ZigComponent* freq = ct.Find(ComponentKind::kFrequencyShift, 0);
  ASSERT_NE(freq, nullptr);
  EXPECT_EQ(freq->detail, "special");
  EXPECT_LT(freq->p_value, 1e-6);
}

TEST(EdgeCaseTest, TinySelectionOfTwoRows) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyOptions opts;
  opts.build.min_side_rows = 3;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  Selection sel = Selection::FromIndices(engine.table().num_rows(), {0, 1});
  // Two rows < min_side_rows: no components, hence no significant views —
  // but the call itself must succeed.
  Characterization r = engine.Characterize(sel).ValueOrDie();
  EXPECT_TRUE(r.views.empty());
}

TEST(EdgeCaseTest, SelectionOfAllButOneRow) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  Selection sel = Selection::All(engine.table().num_rows());
  sel.Set(0, false);
  // Outside has a single row: components skipped, call succeeds.
  Characterization r = engine.Characterize(sel).ValueOrDie();
  EXPECT_TRUE(r.views.empty());
}

TEST(EdgeCaseTest, DuplicatedColumnValuesClusterTogether) {
  // Two identical columns have dependency 1: they must always land in the
  // same view at any MIN_tight.
  Rng rng(4);
  std::vector<double> x(400);
  for (size_t i = 0; i < x.size(); ++i) x[i] = (i % 4 == 0 ? 1.5 : 0.0) + rng.Normal();
  std::vector<double> y = x;  // exact duplicate
  std::vector<double> z(400);
  for (double& v : z) v = rng.Normal();
  Table t = Table::FromColumns({Column::FromNumeric("x", x), Column::FromNumeric("y", y),
                                Column::FromNumeric("z", z)})
                .ValueOrDie();
  ZiggyOptions opts;
  opts.search.min_tightness = 0.5;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(t), opts).ValueOrDie();
  Selection sel(400);
  for (size_t i = 0; i < 400; i += 4) sel.Set(i);
  Characterization r = engine.Characterize(sel).ValueOrDie();
  for (const auto& cv : r.views) {
    const auto& cols = cv.view.columns;
    const bool has_x = std::find(cols.begin(), cols.end(), 0u) != cols.end();
    const bool has_y = std::find(cols.begin(), cols.end(), 1u) != cols.end();
    EXPECT_EQ(has_x, has_y) << "duplicate columns split across views";
  }
}

TEST(EdgeCaseTest, ChangingBuildOptionsMidSessionRecreatesPreparer) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  Characterization r1 = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  // Flip to two-scan: must not reuse the shared-sketch preparer state.
  engine.mutable_options()->build.mode = PreparationMode::kTwoScan;
  engine.ClearCache();
  Characterization r2 = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_EQ(r2.strategy, Preparer::Strategy::kTwoScan);
  ASSERT_EQ(r1.views.size(), r2.views.size());
  for (size_t i = 0; i < r1.views.size(); ++i) {
    EXPECT_EQ(r1.views[i].view.columns, r2.views[i].view.columns);
  }
  // And back again.
  engine.mutable_options()->build.mode = PreparationMode::kSharedSketch;
  engine.ClearCache();
  Characterization r3 = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_NE(r3.strategy, Preparer::Strategy::kTwoScan);
}

TEST(EdgeCaseTest, HugeMagnitudeValuesStayFinite) {
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = (i < 30 ? 1e15 : -1e15) + static_cast<double>(i);
  }
  Table t = Table::FromColumns({Column::FromNumeric("x", v)}).ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  Selection sel(100);
  for (size_t i = 0; i < 30; ++i) sel.Set(i);
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  for (const auto& c : ct.components()) {
    EXPECT_TRUE(std::isfinite(c.inside_value)) << ComponentKindToString(c.kind);
    EXPECT_TRUE(std::isfinite(c.p_value));
  }
}

TEST(EdgeCaseTest, HighCardinalityCategoricalColumn) {
  // One label per row: frequency shift must stay computable and the
  // chi-square machinery must not blow up.
  Column c = Column::Categorical("id");
  std::vector<double> x(200);
  Rng rng(5);
  for (size_t i = 0; i < 200; ++i) {
    c.AppendLabel("row" + std::to_string(i));
    x[i] = rng.Normal();
  }
  Table t = Table::FromColumns({std::move(c), Column::FromNumeric("x", x)})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  Selection sel(200);
  for (size_t i = 0; i < 50; ++i) sel.Set(i);
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  const ZigComponent* freq = ct.Find(ComponentKind::kFrequencyShift, 0);
  ASSERT_NE(freq, nullptr);
  EXPECT_TRUE(std::isfinite(freq->effect.value));
}

TEST(EdgeCaseTest, MinTightnessOneYieldsOnlySingletonsOrClones) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyOptions opts;
  opts.search.min_tightness = 1.0;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table), opts).ValueOrDie();
  Characterization r = engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  for (const auto& cv : r.views) {
    if (cv.view.columns.size() > 1) {
      EXPECT_GE(cv.view.tightness, 1.0 - 1e-9);
    }
  }
}

}  // namespace
}  // namespace ziggy
