// Unit tests for stats/dependency.h: the S measures of paper Eq. 2.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/dependency.h"
#include "storage/types.h"

namespace ziggy {
namespace {

TEST(PearsonTest, KnownCases) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(PearsonTest, NearIndependentIsSmall) {
  Rng rng(2);
  std::vector<double> x(5000);
  std::vector<double> y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  EXPECT_LT(std::fabs(PearsonCorrelation(x, y)), 0.05);
}

TEST(RankTransformTest, SimpleRanks) {
  auto r = RankTransform({30, 10, 20});
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(RankTransformTest, TiesGetAverageRank) {
  auto r = RankTransform({5, 5, 1});
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
}

TEST(RankTransformTest, NaNsStayNaN) {
  auto r = RankTransform({2.0, NullNumeric(), 1.0});
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_TRUE(std::isnan(r[1]));
  EXPECT_DOUBLE_EQ(r[2], 1.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  // y = exp(x) is monotone: Spearman 1, Pearson < 1.
  std::vector<double> x{1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(SpearmanTest, HandlesNullsPairwise) {
  std::vector<double> x{1, 2, NullNumeric(), 4};
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(CramersVTest, PerfectAssociation) {
  Column a = Column::FromStrings("a", {"x", "x", "y", "y", "x", "y"});
  Column b = Column::FromStrings("b", {"p", "p", "q", "q", "p", "q"});
  EXPECT_NEAR(CramersV(a, b), 1.0, 1e-12);
}

TEST(CramersVTest, IndependenceIsNearZero) {
  Rng rng(9);
  std::vector<std::string> la;
  std::vector<std::string> lb;
  for (int i = 0; i < 4000; ++i) {
    la.push_back("a" + std::to_string(rng.UniformInt(0, 3)));
    lb.push_back("b" + std::to_string(rng.UniformInt(0, 3)));
  }
  Column a = Column::FromStrings("a", la);
  Column b = Column::FromStrings("b", lb);
  EXPECT_LT(CramersV(a, b), 0.08);
}

TEST(CramersVTest, DegenerateSingleCategory) {
  Column a = Column::FromStrings("a", {"x", "x", "x"});
  Column b = Column::FromStrings("b", {"p", "q", "p"});
  EXPECT_DOUBLE_EQ(CramersV(a, b), 0.0);
}

TEST(CorrelationRatioTest, PerfectSeparation) {
  Column cat = Column::FromStrings("g", {"a", "a", "b", "b"});
  std::vector<double> num{1.0, 1.0, 5.0, 5.0};
  EXPECT_NEAR(CorrelationRatio(cat, num), 1.0, 1e-12);
}

TEST(CorrelationRatioTest, NoGroupEffect) {
  Column cat = Column::FromStrings("g", {"a", "b", "a", "b"});
  std::vector<double> num{1.0, 1.0, 5.0, 5.0};
  EXPECT_NEAR(CorrelationRatio(cat, num), 0.0, 1e-12);
}

TEST(CorrelationRatioTest, IgnoresNullRows) {
  Column cat = Column::FromStrings("g", {"a", "", "b", "b"});
  std::vector<double> num{1.0, 100.0, 5.0, NullNumeric()};
  // Effective rows: (a,1) and (b,5): perfect separation.
  EXPECT_NEAR(CorrelationRatio(cat, num), 1.0, 1e-12);
}

TEST(MutualInformationTest, IdenticalCategoricalHasHighMi) {
  Column a = Column::FromStrings("a", {"x", "y", "z", "x", "y", "z", "x", "y"});
  const double mi_self = MutualInformation(a, a);
  Rng rng(10);
  std::vector<std::string> lb;
  for (int i = 0; i < 8; ++i) lb.push_back("b" + std::to_string(rng.UniformInt(0, 2)));
  Column b = Column::FromStrings("b", lb);
  EXPECT_GT(mi_self, MutualInformation(a, b));
  EXPECT_GE(MutualInformation(a, b), 0.0);
}

TEST(MutualInformationTest, LinearNumericDependence) {
  Rng rng(11);
  std::vector<double> x(3000);
  std::vector<double> y(3000);
  std::vector<double> z(3000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = x[i];        // perfectly dependent
    z[i] = rng.Normal();  // independent
  }
  Column cx = Column::FromNumeric("x", x);
  Column cy = Column::FromNumeric("y", y);
  Column cz = Column::FromNumeric("z", z);
  EXPECT_GT(MutualInformation(cx, cy), 5.0 * MutualInformation(cx, cz));
}

TEST(DependencyMeasureTest, DispatchesPerTypePair) {
  Rng rng(12);
  const size_t n = 1000;
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<std::string> g(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = 0.9 * x[i] + 0.1 * rng.Normal();
    g[i] = x[i] > 0 ? "pos" : "neg";
  }
  Column cx = Column::FromNumeric("x", x);
  Column cy = Column::FromNumeric("y", y);
  Column cg = Column::FromStrings("g", g);

  const double num_num = DependencyMeasure(cx, cy);
  EXPECT_GT(num_num, 0.9);
  const double mixed = DependencyMeasure(cg, cx);
  EXPECT_GT(mixed, 0.5);
  EXPECT_NEAR(mixed, DependencyMeasure(cx, cg), 1e-12);  // symmetric dispatch
  const double cat_cat = DependencyMeasure(cg, cg);
  EXPECT_NEAR(cat_cat, 1.0, 1e-9);
}

TEST(DependencyMeasureTest, AlwaysInUnitInterval) {
  Rng rng(13);
  const size_t n = 300;
  std::vector<double> x(n);
  std::vector<std::string> g(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1, 1);
    g[i] = "g" + std::to_string(rng.UniformInt(0, 5));
  }
  Column cx = Column::FromNumeric("x", x);
  Column cg = Column::FromStrings("g", g);
  for (const auto* a : {&cx}) {
    for (const auto* b : {&cx}) {
      const double d = DependencyMeasure(*a, *b);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
  const double d = DependencyMeasure(cx, cg);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

}  // namespace
}  // namespace ziggy
