// Tests for the annotated sync layer (common/sync.h): the debug-only
// lock-rank checker, the relockable MutexLock scope, CondVar plumbing, and
// the Release-build zero-cost guarantees for ZIGGY_DCHECK.
//
// The death tests only exist in debug builds (the rank checker compiles out
// under NDEBUG) and are skipped under ThreadSanitizer, which does not
// tolerate the fork-style death test harness.

#include "common/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "gtest/gtest.h"

namespace ziggy {
namespace {

#if defined(__SANITIZE_THREAD__)
#define ZIGGY_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ZIGGY_TSAN_BUILD 1
#endif
#endif
#ifndef ZIGGY_TSAN_BUILD
#define ZIGGY_TSAN_BUILD 0
#endif

TEST(SyncTest, LockUnlockRoundTrip) {
  Mutex mu(LockRank::kCatalog, "test.mu");
  mu.Lock();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, ScopedLockGuardsData) {
  Mutex mu(LockRank::kCatalog, "test.mu");
  int counter ZIGGY_GUARDED_BY(mu) = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, 4000);
}

TEST(SyncTest, InRankOrderNestingIsAccepted) {
  Mutex outer(LockRank::kCatalog, "test.outer");
  Mutex inner(LockRank::kMetrics, "test.inner");
  MutexLock outer_lock(outer);
  MutexLock inner_lock(inner);  // kMetrics > kCatalog: fine
  SUCCEED();
}

TEST(SyncTest, OutOfOrderReleaseIsAccepted) {
  // Relockable scopes can interleave: release order need not mirror
  // acquisition order, and the held-stack bookkeeping must cope.
  Mutex a(LockRank::kCatalog, "test.a");
  Mutex b(LockRank::kMetrics, "test.b");
  a.Lock();
  b.Lock();
  a.Unlock();  // released out of order, while b is still held
  b.Unlock();
  SUCCEED();
}

TEST(SyncTest, RelockableScopeReacquires) {
  Mutex mu(LockRank::kCatalog, "test.mu");
  int value ZIGGY_GUARDED_BY(mu) = 0;
  {
    MutexLock lock(mu);
    value = 1;
    lock.Unlock();
    // The lock is free here: another thread can take it.
    std::thread claimant([&] {
      MutexLock inner(mu);
      ++value;
    });
    claimant.join();
    lock.Lock();
    EXPECT_EQ(value, 2);
  }
  // Destructor released it again: a fresh acquisition must succeed.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, TryLockFailsWhenContendedAndDoesNotCorruptTheStack) {
  Mutex mu(LockRank::kCatalog, "test.mu");
  mu.Lock();
  std::atomic<bool> failed{false};
  std::thread other([&] { failed = !mu.TryLock(); });
  other.join();
  EXPECT_TRUE(failed);
  // A failed TryLock must not have registered the lock as held anywhere:
  // the owning thread can still release and re-take it.
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, CondVarWaitAndNotify) {
  Mutex mu(LockRank::kCatalog, "test.mu");
  CondVar cv;
  bool ready ZIGGY_GUARDED_BY(mu) = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    lock.Unlock();
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() ZIGGY_REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mu(LockRank::kCatalog, "test.mu");
  CondVar cv;
  MutexLock lock(mu);
  const bool ok = cv.WaitFor(mu, std::chrono::milliseconds(5),
                             [] { return false; });
  EXPECT_FALSE(ok);  // predicate never true -> timed out
}

TEST(SyncTest, AssertHeldPassesWhenHeld) {
  Mutex mu(LockRank::kCatalog, "test.mu");
  MutexLock lock(mu);
  mu.AssertHeld();  // must not fire
}

// ---------------------------------------------------------------------------
// Rank-checker death tests: debug builds only (the checker compiles out
// under NDEBUG), and not under TSan (death tests fork).
// ---------------------------------------------------------------------------
#if !defined(NDEBUG) && !ZIGGY_TSAN_BUILD

TEST(SyncDeathTest, RankInversionAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex outer(LockRank::kCatalog, "test.outer");
  Mutex inner(LockRank::kMetrics, "test.inner");
  EXPECT_DEATH(
      {
        MutexLock inner_lock(inner);
        MutexLock outer_lock(outer);  // kCatalog < kMetrics: inversion
      },
      "lock-rank violation");
}

TEST(SyncDeathTest, SameRankNestingAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Same-rank families (sessions, connections, table states, cache stripes)
  // are locked one instance at a time; holding two at once must abort.
  Mutex first(LockRank::kSession, "test.session_a");
  Mutex second(LockRank::kSession, "test.session_b");
  EXPECT_DEATH(
      {
        MutexLock a(first);
        MutexLock b(second);
      },
      "lock-rank violation");
}

TEST(SyncDeathTest, RecursiveAcquisitionAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(LockRank::kCatalog, "test.mu");
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();  // self-deadlock; the checker reports it before blocking
      },
      "recursive acquisition");
}

TEST(SyncDeathTest, AssertHeldFiresWhenNotHeld) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(LockRank::kCatalog, "test.mu");
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed");
}

TEST(SyncDeathTest, ReleasingUnheldMutexAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(LockRank::kCatalog, "test.mu");
  EXPECT_DEATH(mu.Unlock(), "does not hold");
}

#endif  // !NDEBUG && !ZIGGY_TSAN_BUILD

// ---------------------------------------------------------------------------
// Release-build cost pins. sizeof(Mutex) == sizeof(std::mutex) under NDEBUG
// is a static_assert inside sync.h itself; here we pin that ZIGGY_DCHECK
// never evaluates its argument in Release (so rank checks routed through it
// are genuinely free, not just non-fatal).
// ---------------------------------------------------------------------------

TEST(DcheckCostTest, DcheckEvaluationMatchesBuildMode) {
  int evaluations = 0;
  auto probe = [&]() {
    ++evaluations;
    return true;
  };
  ZIGGY_DCHECK(probe());
#ifdef NDEBUG
  // Release: the macro is (void)sizeof(...) — the probe must NOT run.
  EXPECT_EQ(evaluations, 0);
#else
  // Debug: the condition is armed and evaluated exactly once.
  EXPECT_EQ(evaluations, 1);
#endif
}

}  // namespace
}  // namespace ziggy
