// Unit tests for stats/distributions.h: special functions and CDFs are
// checked against closed-form identities and tabulated reference values.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"

namespace ziggy {
namespace {

// ------------------------------------------------------------- Normal ----

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145705, 1e-10);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalTest, CdfSymmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 5.0}) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-12) << x;
  }
}

TEST(NormalTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.05), -1.6448536269514722, 1e-8);
}

TEST(NormalTest, QuantileBoundaries) {
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_LT(NormalQuantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
  EXPECT_GT(NormalQuantile(1.0), 0.0);
}

// ------------------------------------------------------ incomplete gamma --

TEST(GammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 3.0, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 30.0, 100.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
}

TEST(GammaTest, Monotone) {
  double prev = 0.0;
  for (double x = 0.0; x <= 20.0; x += 0.5) {
    const double v = RegularizedGammaP(3.0, x);
    EXPECT_GE(v, prev - 1e-15);
    prev = v;
  }
}

// -------------------------------------------------------- incomplete beta --

TEST(BetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedBeta(1.0, 2.0, 3.0), 1.0);
}

TEST(BetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(RegularizedBeta(x, 1.0, 1.0), x, 1e-12) << x;
  }
}

TEST(BetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.2, 0.5, 0.8}) {
    for (double a : {0.5, 2.0, 7.0}) {
      for (double b : {1.5, 4.0}) {
        EXPECT_NEAR(RegularizedBeta(x, a, b), 1.0 - RegularizedBeta(1.0 - x, b, a),
                    1e-11);
      }
    }
  }
}

TEST(BetaTest, PowerSpecialCase) {
  // I_x(a, 1) = x^a.
  for (double x : {0.25, 0.5, 0.75}) {
    for (double a : {1.0, 2.0, 3.5}) {
      EXPECT_NEAR(RegularizedBeta(x, a, 1.0), std::pow(x, a), 1e-11);
    }
  }
}

// ------------------------------------------------------------ chi-square --

TEST(ChiSquareTest, KnownValues) {
  // chi2 CDF(k=1, x) = 2*Phi(sqrt(x)) - 1.
  for (double x : {0.5, 1.0, 3.84, 6.63}) {
    EXPECT_NEAR(ChiSquareCdf(x, 1.0), 2.0 * NormalCdf(std::sqrt(x)) - 1.0, 1e-10);
  }
  // 95th percentile of chi2(2) is ~5.991.
  EXPECT_NEAR(ChiSquareCdf(5.991464547107979, 2.0), 0.95, 1e-9);
}

TEST(ChiSquareTest, CdfAtZeroAndNegative) {
  EXPECT_DOUBLE_EQ(ChiSquareCdf(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(-1.0, 3.0), 0.0);
}

TEST(ChiSquareTest, PValueComplementsCdf) {
  for (double x : {0.5, 2.0, 8.0}) {
    EXPECT_NEAR(ChiSquarePValue(x, 4.0), 1.0 - ChiSquareCdf(x, 4.0), 1e-12);
  }
  EXPECT_DOUBLE_EQ(ChiSquarePValue(0.0, 4.0), 1.0);
}

// -------------------------------------------------------------- Student t --

TEST(StudentTTest, SymmetryAndCenter) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  for (double t : {0.5, 1.0, 2.5}) {
    EXPECT_NEAR(StudentTCdf(t, 7.0) + StudentTCdf(-t, 7.0), 1.0, 1e-12);
  }
}

TEST(StudentTTest, KnownQuantiles) {
  // t_{0.975, 10} = 2.228138852.
  EXPECT_NEAR(StudentTCdf(2.2281388519649385, 10.0), 0.975, 1e-9);
  // t_{0.95, 5} = 2.015048373.
  EXPECT_NEAR(StudentTCdf(2.015048372669157, 5.0), 0.95, 1e-9);
}

TEST(StudentTTest, ApproachesNormalForLargeDof) {
  for (double t : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(StudentTCdf(t, 1e6), NormalCdf(t), 1e-5);
  }
}

TEST(StudentTTest, InfiniteStatistic) {
  EXPECT_DOUBLE_EQ(StudentTCdf(std::numeric_limits<double>::infinity(), 3.0), 1.0);
  EXPECT_DOUBLE_EQ(StudentTCdf(-std::numeric_limits<double>::infinity(), 3.0), 0.0);
}

// --------------------------------------------------------------------- F --

TEST(FDistTest, KnownValues) {
  // F_{0.95}(1, 10) = 4.9646.
  EXPECT_NEAR(FCdf(4.964602744402118, 1.0, 10.0), 0.95, 1e-8);
  // F(d1=d2) has median 1.
  EXPECT_NEAR(FCdf(1.0, 7.0, 7.0), 0.5, 1e-10);
}

TEST(FDistTest, RelationToTSquared) {
  // If T ~ t(nu) then T^2 ~ F(1, nu).
  for (double t : {0.7, 1.5, 2.2}) {
    const double nu = 9.0;
    const double via_t = 2.0 * StudentTCdf(t, nu) - 1.0;  // P(|T| <= t)
    EXPECT_NEAR(FCdf(t * t, 1.0, nu), via_t, 1e-10);
  }
}

TEST(FDistTest, NonPositiveX) {
  EXPECT_DOUBLE_EQ(FCdf(0.0, 3.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(FCdf(-2.0, 3.0, 4.0), 0.0);
}

// --------------------------------------------------------------- p-values --

TEST(PValueTest, TwoSidedNormal) {
  EXPECT_NEAR(TwoSidedNormalPValue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(TwoSidedNormalPValue(1.959963984540054), 0.05, 1e-9);
  EXPECT_NEAR(TwoSidedNormalPValue(-1.959963984540054), 0.05, 1e-9);
}

TEST(PValueTest, TwoSidedT) {
  EXPECT_NEAR(TwoSidedTPValue(0.0, 10.0), 1.0, 1e-12);
  EXPECT_NEAR(TwoSidedTPValue(2.2281388519649385, 10.0), 0.05, 1e-8);
  EXPECT_NEAR(TwoSidedTPValue(-2.2281388519649385, 10.0), 0.05, 1e-8);
}

// Parameterized property sweep: every CDF is monotone and within [0, 1].
class CdfMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(CdfMonotoneTest, NormalMonotoneBounded) {
  const double x = GetParam();
  const double y = NormalCdf(x);
  EXPECT_GE(y, 0.0);
  EXPECT_LE(y, 1.0);
  EXPECT_LE(NormalCdf(x - 0.25), y + 1e-15);
}

TEST_P(CdfMonotoneTest, TMonotoneBounded) {
  const double x = GetParam();
  const double y = StudentTCdf(x, 4.0);
  EXPECT_GE(y, 0.0);
  EXPECT_LE(y, 1.0);
  EXPECT_LE(StudentTCdf(x - 0.25, 4.0), y + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SweepX, CdfMonotoneTest,
                         ::testing::Values(-6.0, -3.0, -1.5, -0.5, 0.0, 0.5, 1.5, 3.0,
                                           6.0));

}  // namespace
}  // namespace ziggy
