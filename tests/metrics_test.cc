// The observability substrate (src/obs) and its integration points:
//
//  * Histogram — bucket-boundary invariants, percentile accuracy against
//    a sorted-sample oracle (<= 1/16 relative error, exact below 32),
//    merge associativity, and consistency under concurrent recording.
//  * Counter/Gauge — striped adds, and AdvanceTo as the monotonic-carry
//    primitive that keeps mirrored totals from ever moving backwards.
//  * MetricsRegistry — stable pointers, JSON and Prometheus renders
//    (label-in-name series grouped per family, quantile labels merged).
//  * TraceSpan/RequestTrace — histogram recording, thread-local span
//    collection, and the disarmed zero-cost paths.
//  * Catalog integration — sketch-cache counters carried monotonically
//    through CLOSE/re-OPEN generation swaps, and per-table dirty-age /
//    queue-depth gauges driven by a FakeClock (deterministic ages).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/catalog.h"

namespace ziggy {
namespace obs {
namespace {

TEST(HistogramBucketsTest, LowValuesAreExact) {
  for (uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    const size_t index = Histogram::BucketIndex(v);
    EXPECT_EQ(index, static_cast<size_t>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(index), v);
    EXPECT_EQ(Histogram::BucketUpperBound(index), v);
  }
}

TEST(HistogramBucketsTest, BoundsBracketTheValueEverywhere) {
  // Sweep powers of two and their neighborhoods across the full range:
  // every value must land in a bucket whose [lower, upper] contains it,
  // and bucket indexes must be monotone in the value.
  std::vector<uint64_t> probes = {0, 1, 31, 32, 33, 47, 48, 63, 64, 100, 1000};
  for (int shift = 6; shift < 64; ++shift) {
    const uint64_t base = 1ull << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + base / 2);
  }
  probes.push_back(~0ull);
  std::sort(probes.begin(), probes.end());
  size_t last_index = 0;
  for (const uint64_t v : probes) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    EXPECT_LE(Histogram::BucketLowerBound(index), v) << v;
    EXPECT_GE(Histogram::BucketUpperBound(index), v) << v;
    EXPECT_GE(index, last_index) << v;
    last_index = index;
    // The bucket's own bounds must round-trip through BucketIndex.
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(index)),
              index);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(index)),
              index);
  }
}

TEST(HistogramBucketsTest, RelativeWidthIsBoundedBySubBucketCount) {
  // Above the exact range, bucket width / lower bound <= 1/16: that is
  // the advertised percentile error bound.
  for (uint64_t v = 32; v < (1ull << 40); v = v * 3 + 7) {
    const size_t index = Histogram::BucketIndex(v);
    const uint64_t lo = Histogram::BucketLowerBound(index);
    const uint64_t hi = Histogram::BucketUpperBound(index);
    EXPECT_LE(hi - lo + 1, lo / Histogram::kSubBuckets + 1) << v;
  }
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0u);
  EXPECT_EQ(snap.Percentile(0.99), 0u);
}

TEST(HistogramTest, PercentileMatchesSortedSampleOracle) {
  // Log-uniform sample so every bucket regime (exact, mid, high powers)
  // is exercised; the histogram's quantile must stay within one bucket
  // width (<= 1/16 relative) of the true order statistic.
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> log_value(0.0, 20.0);
  Histogram h;
  std::vector<uint64_t> sample;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = static_cast<uint64_t>(std::exp(log_value(rng)));
    sample.push_back(v);
    h.Record(v);
  }
  std::sort(sample.begin(), sample.end());
  const Histogram::Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.count, sample.size());
  for (const double p : {0.05, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(p * double(sample.size()))));
    const uint64_t oracle = sample[rank - 1];
    const uint64_t estimate = snap.Percentile(p);
    // The estimate is the upper bound of the oracle's bucket (clamped to
    // max), so it can only overshoot, and by at most the bucket width.
    EXPECT_GE(estimate, oracle) << "p=" << p;
    EXPECT_LE(estimate,
              oracle + oracle / Histogram::kSubBuckets + 1)
        << "p=" << p;
  }
  EXPECT_EQ(snap.Percentile(1.0), sample.back());  // max is exact
  EXPECT_EQ(snap.min, sample.front());
  EXPECT_EQ(snap.max, sample.back());
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(7);
  Histogram h1, h2, h3;
  std::vector<Histogram*> hists = {&h1, &h2, &h3};
  for (int i = 0; i < 3000; ++i) {
    hists[i % 3]->Record(rng() % 100000);
  }
  const auto s1 = h1.TakeSnapshot();
  const auto s2 = h2.TakeSnapshot();
  const auto s3 = h3.TakeSnapshot();

  Histogram::Snapshot left = s1;   // (s1 + s2) + s3
  left.MergeFrom(s2);
  left.MergeFrom(s3);
  Histogram::Snapshot inner = s2;  // s1 + (s2 + s3)
  inner.MergeFrom(s3);
  Histogram::Snapshot right = s1;
  right.MergeFrom(inner);
  Histogram::Snapshot swapped = s3;  // commuted order
  swapped.MergeFrom(s1);
  swapped.MergeFrom(s2);

  for (const Histogram::Snapshot* merged : {&right, &swapped}) {
    EXPECT_EQ(left.count, merged->count);
    EXPECT_EQ(left.sum, merged->sum);
    EXPECT_EQ(left.min, merged->min);
    EXPECT_EQ(left.max, merged->max);
    EXPECT_EQ(left.buckets, merged->buckets);
  }
  EXPECT_EQ(left.count, 3000u);
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  // Count and sum are exact under concurrency: every striped fetch_add
  // lands somewhere, and the snapshot sums all stripes.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += uint64_t{kPerThread} * (t + 1);
  }
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, uint64_t{kThreads});
  uint64_t bucket_total = 0;
  for (const uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(CounterTest, AddAndAdvanceToStayMonotonic) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(9);
  EXPECT_EQ(c.value(), 10u);
  // AdvanceTo raises to a target...
  c.AdvanceTo(25);
  EXPECT_EQ(c.value(), 25u);
  // ...and never lowers: a stale (smaller) external total is a no-op,
  // which is exactly what makes mirrored counters monotonic.
  c.AdvanceTo(7);
  EXPECT_EQ(c.value(), 25u);
  c.AdvanceTo(25);
  EXPECT_EQ(c.value(), 25u);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), uint64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(RegistryTest, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.counter("ziggy_test_total");
  Counter* b = registry.counter("ziggy_test_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("ziggy_other_total"), a);
  EXPECT_EQ(registry.clock(), SystemClock());
  FakeClock fake;
  MetricsRegistry faked(&fake);
  EXPECT_EQ(faked.clock(), &fake);
}

TEST(RegistryTest, RenderJsonShape) {
  FakeClock clock;
  MetricsRegistry registry(&clock);
  registry.counter("ziggy_requests_total{verb=\"OPEN\"}")->Add(3);
  registry.gauge("ziggy_tables")->Set(2);
  Histogram* h = registry.histogram("ziggy_request_us");
  h->Record(10);
  h->Record(30);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\":{\"ziggy_requests_total{verb=\\\"OPEN\\\"}\":3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"ziggy_tables\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"ziggy_request_us\":{\"count\":2,\"sum\":40,"
                      "\"min\":10,\"max\":30,"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p50\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":30"), std::string::npos) << json;
}

TEST(RegistryTest, RenderPrometheusGroupsFamiliesAndMergesQuantiles) {
  FakeClock clock;
  MetricsRegistry registry(&clock);
  registry.counter("ziggy_requests_total{verb=\"OPEN\"}")->Add(1);
  registry.counter("ziggy_requests_total{verb=\"LIST\"}")->Add(2);
  registry.gauge("ziggy_tables")->Set(5);
  registry.histogram("ziggy_request_us{verb=\"OPEN\"}")->Record(20);
  const std::string text = registry.RenderPrometheus();

  // One TYPE line per family, even with several labelled series.
  size_t type_count = 0;
  for (size_t pos = 0;
       (pos = text.find("# TYPE ziggy_requests_total counter", pos)) !=
       std::string::npos;
       ++pos) {
    ++type_count;
  }
  EXPECT_EQ(type_count, 1u) << text;
  EXPECT_NE(text.find("ziggy_requests_total{verb=\"LIST\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ziggy_requests_total{verb=\"OPEN\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ziggy_tables gauge\nziggy_tables 5\n"),
            std::string::npos);
  // Histograms render as summaries; the quantile label merges into the
  // existing brace set and _sum/_count suffix the family inside it.
  EXPECT_NE(text.find("# TYPE ziggy_request_us summary"), std::string::npos);
  EXPECT_NE(text.find("ziggy_request_us{verb=\"OPEN\",quantile=\"0.5\"} 20\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ziggy_request_us_sum{verb=\"OPEN\"} 20\n"),
            std::string::npos);
  EXPECT_NE(text.find("ziggy_request_us_count{verb=\"OPEN\"} 1\n"),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(TraceTest, SpanRecordsIntoHistogramWithFakeClock) {
  FakeClock clock;
  Histogram h;
  {
    TraceSpan span("work", &clock, &h);
    clock.AdvanceMicros(250);
  }
  const Histogram::Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 250u);
}

TEST(TraceTest, ScopeCollectsNamedSpansForTheThread) {
  FakeClock clock;
  RequestTrace trace;
  EXPECT_EQ(RequestTrace::Current(), nullptr);
  {
    RequestTrace::Scope scope(&trace);
    EXPECT_EQ(RequestTrace::Current(), &trace);
    {
      TraceSpan span("scan", &clock, nullptr);
      clock.AdvanceMicros(1234);
    }
    {
      TraceSpan span("store_save", &clock, nullptr);
      clock.AdvanceMicros(56);
    }
  }
  EXPECT_EQ(RequestTrace::Current(), nullptr);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.Summary(), "scan=1234us,store_save=56us");
}

TEST(TraceTest, DisarmedSpansTouchNothing) {
  FakeClock clock;
  Histogram h;
  {
    // No histogram and no installed trace: the span must not even read
    // the clock (quiet-path cost ~0).
    TraceSpan span("idle", &clock, nullptr);
    clock.AdvanceMicros(10);
  }
  {
    // Null clock disarms even with a histogram attached.
    TraceSpan span("noclock", nullptr, &h);
  }
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
}

// ---------------------------------------------------------------------------
// Catalog integration.

TEST(CatalogMetricsTest, SketchCacheCountersSurviveCloseAndReopen) {
  auto registry = std::make_shared<MetricsRegistry>();
  CatalogOptions options;
  options.metrics = registry;
  options.serve.engine.search.min_tightness = 0.4;
  options.serve.engine.search.max_views = 10;
  ServerCatalog catalog(options);

  auto ds = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(ds.ok());
  auto server = catalog.Open("box", ds->table);
  ASSERT_TRUE(server.ok());
  // Miss from the first session, then an exact sketch-cache hit from a
  // second session (a repeat within one session would be absorbed by the
  // per-session component cache before reaching the shared sketch cache).
  const std::string predicate = "revenue_index >= 1.1826265604539112";
  ASSERT_TRUE(
      (*server)->Characterize((*server)->OpenSession(), predicate).ok());
  ASSERT_TRUE(
      (*server)->Characterize((*server)->OpenSession(), predicate).ok());

  catalog.RefreshMetrics();
  const uint64_t hits_before =
      registry->counter("ziggy_sketch_cache_hits_total")->value();
  const uint64_t misses_before =
      registry->counter("ziggy_sketch_cache_misses_total")->value();
  EXPECT_GE(hits_before, 1u);
  EXPECT_GE(misses_before, 1u);
  const ServerCatalog::SketchCacheTotals totals_before = catalog.CacheTotals();
  EXPECT_EQ(totals_before.hits, hits_before);
  EXPECT_EQ(totals_before.misses, misses_before);

  // CLOSE retires the server (its per-server counters die with it) and a
  // re-OPEN starts a fresh one at zero. The registry's totals must carry
  // the retired counts forward — published rates never move backwards.
  ASSERT_TRUE(catalog.Close("box").ok());
  catalog.RefreshMetrics();
  EXPECT_GE(registry->counter("ziggy_sketch_cache_hits_total")->value(),
            hits_before);
  auto reopened = catalog.Open("box", ds->table);
  ASSERT_TRUE(reopened.ok());
  const uint64_t rsid = (*reopened)->OpenSession();
  ASSERT_TRUE((*reopened)->Characterize(rsid, predicate).ok());
  catalog.RefreshMetrics();
  const uint64_t hits_after =
      registry->counter("ziggy_sketch_cache_hits_total")->value();
  const uint64_t misses_after =
      registry->counter("ziggy_sketch_cache_misses_total")->value();
  EXPECT_GE(hits_after, hits_before);
  // The re-opened table's first characterize is a fresh miss on top of
  // the carried total.
  EXPECT_GT(misses_after, misses_before);
}

TEST(CatalogMetricsTest, DirtyAgeAndQueueDepthFollowTheFakeClock) {
  auto clock = std::make_unique<FakeClock>();
  FakeClock* fake = clock.get();
  auto registry = std::make_shared<MetricsRegistry>(fake);
  CatalogOptions options;
  options.metrics = registry;
  // Interval long enough that the flusher never fires on its own: the
  // dirty entry ages exactly as far as the FakeClock is advanced.
  options.flush_interval_ms = 3600000;
  options.serve.engine.search.min_tightness = 0.4;
  options.serve.engine.search.max_views = 10;
  ServerCatalog catalog(options);
  static int counter = 0;
  const std::string dir = testing::TempDir() + "/ziggy_metrics_test_" +
                          std::to_string(++counter);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());

  auto ds = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(catalog.Open("box", ds->table).ok());
  ASSERT_TRUE(catalog.SetPersist("box", true).ok());
  Status checkpoint = Status::OK();
  ASSERT_TRUE(catalog.Append("box", ds->table, &checkpoint).ok());
  ASSERT_TRUE(checkpoint.ok());

  // The append only marked the table dirty; age it a known amount.
  fake->AdvanceMillis(1234);
  const CatalogStats stats = catalog.stats();
  EXPECT_EQ(stats.dirty_tables, 1u);
  ASSERT_EQ(stats.dirty_ages.size(), 1u);
  EXPECT_EQ(stats.dirty_ages[0].first, "box");
  EXPECT_EQ(stats.dirty_ages[0].second, 1234u);
  EXPECT_EQ(stats.max_dirty_age_ms, 1234u);

  catalog.RefreshMetrics();
  EXPECT_EQ(registry->gauge("ziggy_flusher_queue_depth")->value(), 1);
  EXPECT_EQ(registry->gauge("ziggy_flusher_max_dirty_age_ms")->value(), 1234);
  EXPECT_EQ(
      registry->gauge("ziggy_table_dirty_age_ms{table=\"box\"}")->value(),
      1234);

  // Draining the flusher clears the queue; the per-table gauge must be
  // zeroed, not left frozen at its last dirty age.
  catalog.StopFlusher();
  EXPECT_EQ(catalog.stats().dirty_tables, 0u);
  catalog.RefreshMetrics();
  EXPECT_EQ(registry->gauge("ziggy_flusher_queue_depth")->value(), 0);
  EXPECT_EQ(registry->gauge("ziggy_flusher_max_dirty_age_ms")->value(), 0);
  EXPECT_EQ(
      registry->gauge("ziggy_table_dirty_age_ms{table=\"box\"}")->value(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace ziggy
