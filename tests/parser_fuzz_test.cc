// Property and fuzz tests for query/parser + query/simplify.
//
//  * Round trip: random AST → ToString → reparse → ToString must be a
//    fixed point (ToString is documented as "parseable by ParsePredicate").
//  * Semantics: SimplifyPredicate must preserve the selected row set on a
//    random table, and must be idempotent.
//  * Robustness: no input — random byte soup or mutated valid queries —
//    may crash the lexer/parser/simplifier/evaluator. Errors must come
//    back as Status.
//
// All randomness is seeded; failures print the offending seed/input.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "query/parser.h"
#include "query/simplify.h"
#include "storage/table.h"

namespace ziggy {
namespace {

// ---------------------------------------------------------------- fixture --

// 257 rows: two full bitmap words, one word with a single tail bit — the
// selections produced here cross every word-boundary case.
constexpr size_t kRows = 257;

Table MakeFuzzTable() {
  Rng rng(4242);
  std::vector<double> num_a(kRows);
  std::vector<double> num_b(kRows);
  std::vector<double> num_c(kRows);
  std::vector<std::string> cat_a(kRows);
  std::vector<std::string> cat_b(kRows);
  const char* labels_a[] = {"alpha", "beta", "gamma", "delta"};
  const char* labels_b[] = {"north", "south", "east", "west", "center"};
  for (size_t i = 0; i < kRows; ++i) {
    num_a[i] = rng.Normal(0.0, 2.0);
    num_b[i] = rng.Uniform(-10.0, 10.0);
    num_c[i] = rng.Bernoulli(0.1) ? std::nan("") : rng.Exponential(0.5);
    cat_a[i] = rng.Bernoulli(0.05) ? "" : labels_a[rng.UniformInt(0, 3)];
    cat_b[i] = labels_b[rng.UniformInt(0, 4)];
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromNumeric("num_a", std::move(num_a)));
  cols.push_back(Column::FromNumeric("num_b", std::move(num_b)));
  cols.push_back(Column::FromNumeric("num_c", std::move(num_c)));
  cols.push_back(Column::FromStrings("cat_a", cat_a));
  cols.push_back(Column::FromStrings("cat_b", cat_b));
  auto table = Table::FromColumns(std::move(cols));
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

// ---------------------------------------------------------- AST generator --

// Identifier/label pools avoid parser keywords and quote characters; the
// printer does not escape quotes inside string literals, so quotes are the
// one character class the round-trip contract excludes.
const std::vector<std::string>& NumericColumns() {
  static const std::vector<std::string> cols = {"num_a", "num_b", "num_c",
                                                "missing_num"};
  return cols;
}
const std::vector<std::string>& CategoricalColumns() {
  static const std::vector<std::string> cols = {"cat_a", "cat_b", "missing_cat"};
  return cols;
}
const std::vector<std::string>& Labels() {
  static const std::vector<std::string> labels = {
      "alpha", "beta", "gamma", "delta", "north", "south", "no such label",
      "x_1",   ""};
  return labels;
}

std::string Pick(Rng* rng, const std::vector<std::string>& pool) {
  return pool[static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(pool.size()) - 1))];
}

double RandomFiniteDouble(Rng* rng) {
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return static_cast<double>(rng->UniformInt(-100, 100));
    case 1:
      return rng->Uniform(-10.0, 10.0);
    case 2:
      return rng->Uniform(-1e30, 1e30);
    case 3:
      return rng->Uniform(-1e-6, 1e-6);
    default:
      return 0.0;
  }
}

CompareOp RandomOp(Rng* rng) {
  static const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                                  CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  return ops[rng->UniformInt(0, 5)];
}

ExprPtr RandomAtom(Rng* rng) {
  switch (rng->UniformInt(0, 5)) {
    case 0:  // numeric comparison
      return std::make_unique<ComparisonExpr>(Pick(rng, NumericColumns()),
                                              RandomOp(rng),
                                              Value{RandomFiniteDouble(rng)});
    case 1:  // categorical equality / inequality
      return std::make_unique<ComparisonExpr>(
          Pick(rng, CategoricalColumns()),
          rng->Bernoulli(0.5) ? CompareOp::kEq : CompareOp::kNe,
          Value{Pick(rng, Labels())});
    case 2: {  // BETWEEN (bounds in either order: semantics, not syntax)
      const double lo = RandomFiniteDouble(rng);
      const double hi = lo + std::fabs(RandomFiniteDouble(rng));
      return std::make_unique<BetweenExpr>(Pick(rng, NumericColumns()), lo, hi);
    }
    case 3: {  // IN list
      std::vector<Value> values;
      const bool numeric = rng->Bernoulli(0.5);
      const int64_t n = rng->UniformInt(1, 4);
      for (int64_t i = 0; i < n; ++i) {
        if (numeric) {
          values.emplace_back(RandomFiniteDouble(rng));
        } else {
          values.emplace_back(Pick(rng, Labels()));
        }
      }
      return std::make_unique<InExpr>(
          Pick(rng, numeric ? NumericColumns() : CategoricalColumns()),
          std::move(values));
    }
    case 4: {  // LIKE (quote-free patterns)
      static const std::vector<std::string> patterns = {"%",     "a%",   "%a",
                                                        "_lpha", "g%a",  "%or%",
                                                        "center", "__st", ""};
      return std::make_unique<LikeExpr>(Pick(rng, CategoricalColumns()),
                                        Pick(rng, patterns), rng->Bernoulli(0.3));
    }
    default:  // IS [NOT] NULL
      return std::make_unique<IsNullExpr>(
          rng->Bernoulli(0.5) ? Pick(rng, NumericColumns())
                              : Pick(rng, CategoricalColumns()),
          rng->Bernoulli(0.5));
  }
}

ExprPtr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.4)) return RandomAtom(rng);
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return std::make_unique<NotExpr>(RandomExpr(rng, depth - 1));
    default: {
      const LogicalExpr::Kind kind =
          rng->Bernoulli(0.5) ? LogicalExpr::Kind::kAnd : LogicalExpr::Kind::kOr;
      std::vector<ExprPtr> children;
      const int64_t n = rng->UniformInt(2, 4);
      for (int64_t i = 0; i < n; ++i) {
        children.push_back(RandomExpr(rng, depth - 1));
      }
      return std::make_unique<LogicalExpr>(kind, std::move(children));
    }
  }
}

// ------------------------------------------------------------------ tests --

TEST(ParserFuzzTest, RandomAstPrintsReparseToFixedPoint) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    const ExprPtr original = RandomExpr(&rng, 4);
    const std::string printed = original->ToString();
    Result<ExprPtr> reparsed = ParsePredicate(printed);
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": ToString produced "
                               << "unparseable text: " << printed << "\n"
                               << reparsed.status().ToString();
    EXPECT_EQ((*reparsed)->ToString(), printed) << "seed " << seed;
  }
}

TEST(ParserFuzzTest, RoundTripPreservesEvaluation) {
  const Table table = MakeFuzzTable();
  size_t evaluated = 0;
  for (uint64_t seed = 1000; seed < 1200; ++seed) {
    Rng rng(seed);
    const ExprPtr original = RandomExpr(&rng, 3);
    Result<ExprPtr> reparsed = ParsePredicate(original->ToString());
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed;
    Result<Selection> a = original->Evaluate(table);
    Result<Selection> b = (*reparsed)->Evaluate(table);
    ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed;
    if (a.ok()) {
      EXPECT_TRUE(*a == *b) << "seed " << seed;
      ++evaluated;
    }
  }
  // The pools include missing columns, so some trees error by design —
  // but the property must actually get exercised.
  EXPECT_GT(evaluated, 50u);
}

TEST(ParserFuzzTest, SimplifyPreservesSemanticsAndIsIdempotent) {
  const Table table = MakeFuzzTable();
  size_t compared = 0;
  for (uint64_t seed = 2000; seed < 2300; ++seed) {
    Rng rng(seed);
    const ExprPtr original = RandomExpr(&rng, 4);
    const std::string original_text = original->ToString();
    const ExprPtr simplified = SimplifyPredicate(original->Clone());

    // Idempotence: a normal form does not simplify further.
    const std::string once = simplified->ToString();
    const std::string twice = SimplifyPredicate(simplified->Clone())->ToString();
    EXPECT_EQ(once, twice) << "seed " << seed << " input: " << original_text;

    // Semantics: identical row sets (or both rejected).
    Result<Selection> a = original->Evaluate(table);
    Result<Selection> b = simplified->Evaluate(table);
    ASSERT_EQ(a.ok(), b.ok())
        << "seed " << seed << "\n  input: " << original_text
        << "\n  simplified: " << once;
    if (a.ok()) {
      EXPECT_TRUE(*a == *b)
          << "seed " << seed << "\n  input: " << original_text
          << "\n  simplified: " << once;
      ++compared;
    }
  }
  EXPECT_GT(compared, 80u);
}

// One deterministic malformed-input loop: every input must produce either
// a parse tree or a Status — never a crash. Inputs mix raw byte soup with
// mutations of valid queries (truncations, splices, character smashes).
TEST(ParserFuzzTest, MalformedInputNeverCrashes) {
  const Table table = MakeFuzzTable();
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " \t\n()<>=!'\",.%_-+*/\\;:[]{}#@$^&|~`?";
  Rng rng(31337);

  auto exercise = [&](const std::string& input) {
    Result<ExprPtr> parsed = ParseQuery(input);
    if (!parsed.ok()) return;
    // Survivors flow through the whole front half of the pipeline.
    const ExprPtr simplified = SimplifyPredicate((*parsed)->Clone());
    (void)simplified->ToString();
    (void)simplified->Evaluate(table);
  };

  // Raw soup.
  for (size_t iter = 0; iter < 3000; ++iter) {
    std::string input;
    const int64_t len = rng.UniformInt(0, 48);
    for (int64_t i = 0; i < len; ++i) {
      if (rng.Bernoulli(0.02)) {
        input.push_back(static_cast<char>(rng.UniformInt(1, 255)));  // any byte
      } else {
        input.push_back(
            charset[rng.UniformInt(0, static_cast<int64_t>(charset.size()) - 1)]);
      }
    }
    exercise(input);
  }

  // Mutated valid queries.
  const std::vector<std::string> seeds = {
      "num_a > 1.5 AND num_b <= 3",
      "SELECT * FROM t WHERE cat_a IN ('alpha', 'beta') AND num_c IS NOT NULL",
      "NOT (num_a BETWEEN -2 AND 2) OR cat_b LIKE 'n%'",
      "\"quoted col\" != 'payload' AND num_b IN (1, 2, 3)",
  };
  for (size_t iter = 0; iter < 2000; ++iter) {
    std::string input = seeds[iter % seeds.size()];
    const int64_t edits = rng.UniformInt(1, 4);
    for (int64_t e = 0; e < edits && !input.empty(); ++e) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(input.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:  // smash a character
          input[pos] =
              charset[rng.UniformInt(0, static_cast<int64_t>(charset.size()) - 1)];
          break;
        case 1:  // truncate
          input.resize(pos);
          break;
        case 2:  // duplicate a span
          input += input.substr(pos);
          break;
        default:  // delete a character
          input.erase(pos, 1);
          break;
      }
    }
    exercise(input);
  }
}

}  // namespace
}  // namespace ziggy
