// Reusable codec torture harness.
//
// Every on-disk format in the store (tables, deltas, sketches, pooled
// dictionaries) carries the same promise: a damaged image fails with a
// clean Status — no crash, no UB, no partial install, no silently
// different data. This header turns that promise into one reusable
// check: TortureImage feeds a valid serialized image through
//
//   - every-offset truncation (every prefix of the image),
//   - exhaustive single-bit flips (strided on large images),
//   - deterministic random splices (a chunk of the image copied over
//     another offset — the "two files interleaved by a crashed writer"
//     shape that single-bit flips cannot produce),
//
// and asserts the codec rejects each mutation. The codec is abstracted
// as a single `rejects(bytes) -> bool` callable so the same harness
// drives pure in-memory codecs and whole-store load paths alike (a
// store-level instantiation returns "true" when the corruption was
// contained: clean error, nothing installed).
//
// Single-bit flips are always *detectable* for these formats — every
// byte is covered by magic or a section CRC32 — so rejection is the
// correct expectation, not just a hope. Splices are guaranteed to
// differ from the original before being fed to the codec; a splice
// would need a CRC32 collision to be accepted, and the fixed seed makes
// any such collision reproducible rather than flaky.

#ifndef ZIGGY_TESTS_CODEC_TORTURE_H_
#define ZIGGY_TESTS_CODEC_TORTURE_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>

namespace ziggy {
namespace torture {

struct TortureOptions {
  /// Flip every bit when the image is at most this big; otherwise stride
  /// so about `sampled_flips` flips still cover the whole image.
  size_t exhaustive_flip_bytes = 4096;
  size_t sampled_flips = 4096;
  /// Try every truncation offset up to this image size; stride beyond.
  size_t exhaustive_truncation_bytes = 65536;
  size_t sampled_truncations = 2048;
  size_t splices = 256;
  size_t max_splice_bytes = 64;
  uint64_t seed = 0xD1CEu;
};

/// Runs the full torture schedule over `image`. `rejects` must return
/// true when the codec cleanly rejected the mutated bytes (and installed
/// nothing). `label` names the format in failure messages.
template <typename RejectsFn>
void TortureImage(const std::string& label, const std::string& image,
                  RejectsFn&& rejects, const TortureOptions& opts = {}) {
  ASSERT_FALSE(image.empty()) << label << ": refusing to torture an empty image";

  // Every-offset truncation. cut == 0 (empty input) is included: an
  // empty file must be an error, not an empty table.
  const size_t cut_step =
      image.size() <= opts.exhaustive_truncation_bytes
          ? 1
          : std::max<size_t>(1, image.size() / opts.sampled_truncations);
  for (size_t cut = 0; cut < image.size(); cut += cut_step) {
    EXPECT_TRUE(rejects(image.substr(0, cut)))
        << label << ": truncation to " << cut << " bytes was accepted";
  }

  // Bit flips, exhaustive or strided. The image is mutated in place and
  // restored so large images don't pay a copy per flip.
  const size_t total_bits = image.size() * 8;
  const size_t bit_step =
      image.size() <= opts.exhaustive_flip_bytes
          ? 1
          : std::max<size_t>(1, total_bits / opts.sampled_flips);
  std::string mutated = image;
  for (size_t bit = 0; bit < total_bits; bit += bit_step) {
    mutated[bit / 8] =
        static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    EXPECT_TRUE(rejects(mutated))
        << label << ": flip of bit " << bit << " (byte " << bit / 8
        << ") was accepted";
    mutated[bit / 8] = image[bit / 8];
  }

  // Random splices: a chunk of the image copied over another offset.
  std::mt19937_64 rng(opts.seed);
  for (size_t s = 0; s < opts.splices; ++s) {
    const size_t max_len = std::min(opts.max_splice_bytes, image.size());
    const size_t len = 1 + static_cast<size_t>(rng() % max_len);
    const size_t src = static_cast<size_t>(rng() % (image.size() - len + 1));
    const size_t dst = static_cast<size_t>(rng() % (image.size() - len + 1));
    std::string spliced = image;
    spliced.replace(dst, len, image, src, len);
    if (spliced == image) continue;  // splice landed on identical bytes
    EXPECT_TRUE(rejects(spliced))
        << label << ": splice of " << len << " bytes from " << src << " to "
        << dst << " was accepted";
  }
}

}  // namespace torture
}  // namespace ziggy

#endif  // ZIGGY_TESTS_CODEC_TORTURE_H_
