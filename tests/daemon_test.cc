// The networked serving stack, bottom to top:
//
//  * ServerCatalog — naming, lifecycle, and the invariant the whole PR
//    rests on: two tables served concurrently through one catalog (shared
//    worker pool, shared cache budget) produce byte-identical output to
//    each table served alone.
//  * DaemonHandler — verb semantics, driven directly (no sockets).
//  * ZiggyDaemon + ZiggyClient — the real thing over loopback TCP: golden
//    byte-match with the in-process pipeline, malformed/oversized input
//    answered with clean errors on a surviving connection, appends, stats.
//  * The checked-in CI fixtures (tests/golden/daemon_e2e.*) — regenerated
//    and verified here so the CI shell script can never drift from what
//    the library actually produces.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "data/synthetic.h"
#include "engine/report.h"
#include "persist/fs_util.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/daemon/daemon.h"
#include "serve/daemon/handler.h"
#include "storage/csv.h"

#ifndef ZIGGY_SOURCE_DIR
#define ZIGGY_SOURCE_DIR "."
#endif

namespace ziggy {
namespace {

// The predicate baked into tests/golden/daemon_e2e_commands.txt; pinned
// against MakeBoxOfficeDataset(7) below so the CI script cannot rot.
constexpr char kBoxofficePredicate[] = "revenue_index >= 1.1826265604539112";

ServeOptions GoldenServeOptions() {
  ServeOptions options;
  options.engine.search.min_tightness = 0.4;
  options.engine.search.max_views = 10;
  return options;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------- sources --

TEST(LoadTableFromSourceTest, DemoSourcesAndErrors) {
  Result<Table> box = LoadTableFromSource("demo://boxoffice?seed=7");
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->num_rows(), 900u);
  EXPECT_EQ(box->num_columns(), 12u);

  EXPECT_TRUE(LoadTableFromSource("demo://boxoffice").ok());
  EXPECT_FALSE(LoadTableFromSource("demo://nope").ok());
  EXPECT_FALSE(LoadTableFromSource("demo://boxoffice?speed=7").ok());
  EXPECT_FALSE(LoadTableFromSource("demo://boxoffice?seed=abc").ok());
  EXPECT_FALSE(LoadTableFromSource("/no/such/file.csv").ok());
}

// ---------------------------------------------------------------- catalog --

TEST(ServerCatalogTest, OpenFindCloseList) {
  ServerCatalog catalog;
  auto ds = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(catalog.Open("box", std::move(ds->table)).ok());
  EXPECT_EQ(catalog.num_tables(), 1u);

  EXPECT_TRUE(catalog.Find("box").ok());
  EXPECT_TRUE(catalog.Find("nope").status().IsNotFound());

  auto dup = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(
      catalog.Open("box", std::move(dup->table)).status().IsAlreadyExists());

  auto infos = catalog.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "box");
  EXPECT_EQ(infos[0].num_rows, 900u);
  EXPECT_EQ(infos[0].generation, 0u);

  EXPECT_TRUE(catalog.Close("box").ok());
  EXPECT_TRUE(catalog.Close("box").IsNotFound());
  EXPECT_EQ(catalog.num_tables(), 0u);
}

TEST(ServerCatalogTest, RejectsBadNamesAndEnforcesCapacity) {
  EXPECT_FALSE(ServerCatalog::IsValidTableName(""));
  EXPECT_FALSE(ServerCatalog::IsValidTableName("has space"));
  EXPECT_FALSE(ServerCatalog::IsValidTableName("semi;colon"));
  EXPECT_TRUE(ServerCatalog::IsValidTableName("ok_Name-1.2"));

  CatalogOptions options;
  options.max_tables = 1;
  ServerCatalog catalog(options);
  auto a = MakeBoxOfficeDataset(7);
  auto b = MakeBoxOfficeDataset(19);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(catalog.Open("a", std::move(a->table)).ok());
  EXPECT_TRUE(
      catalog.Open("b", std::move(b->table)).status().IsFailedPrecondition());
}

TEST(ServerCatalogTest, SharedBudgetIsChargedAndStatsExposeIt) {
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  auto ds = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(ds.ok());
  const std::string predicate = ds->selection_predicate;
  auto server = catalog.Open("box", std::move(ds->table));
  ASSERT_TRUE(server.ok());
  const uint64_t sid = (*server)->OpenSession();
  ASSERT_TRUE((*server)->Characterize(sid, predicate).ok());
  CatalogStats st = catalog.stats();
  EXPECT_EQ(st.tables, 1u);
  EXPECT_GT(st.shared_budget_used_bytes, 0u);  // the cached sketch
  EXPECT_GT(st.worker_pool_threads, 0u);
  // Closing the table destroys its server and cache; the shared ledger
  // must return to zero (no leaked accounting).
  ASSERT_TRUE(catalog.Close("box").ok());
  server = Status::NotFound("released");  // drop the last server handle
  EXPECT_EQ(catalog.stats().shared_budget_used_bytes, 0u);
}

TEST(ServerCatalogTest, TinySharedBudgetEnforcedAcrossTables) {
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  // A budget far below one sketch set: every insertion must shed down to
  // the single just-inserted entry, and the ledger must track it.
  options.total_cache_budget_bytes = 1024;
  ServerCatalog catalog(options);
  auto a = MakeBoxOfficeDataset(7);
  auto b = MakeBoxOfficeDataset(19);
  ASSERT_TRUE(a.ok() && b.ok());
  auto sa = catalog.Open("a", std::move(a->table));
  auto sb = catalog.Open("b", std::move(b->table));
  ASSERT_TRUE(sa.ok() && sb.ok());
  const uint64_t sida = (*sa)->OpenSession();
  const uint64_t sidb = (*sb)->OpenSession();
  for (int i = 0; i < 3; ++i) {
    // Distinct selections each round: every request inserts fresh
    // sketches, so the group budget is exercised, not the exact-hit path.
    const std::string suffix = "1." + std::to_string(i);
    ASSERT_TRUE((*sa)->Characterize(sida, "revenue_index > " + suffix).ok());
    ASSERT_TRUE((*sb)->Characterize(sidb, "revenue_index > " + suffix).ok());
  }
  const CacheStats ca = (*sa)->stats().cache;
  const CacheStats cb = (*sb)->stats().cache;
  // Each cache kept at most its most recent insertion ("cache of one").
  EXPECT_LE(ca.entries, 1u);
  EXPECT_LE(cb.entries, 1u);
  EXPECT_GT(ca.evictions + cb.evictions, 0u);
}

// Two tables served concurrently through one catalog byte-match their
// solo-served outputs: cross-table interference (shared pool, shared
// budget, interleaved scheduling) must be invisible in results.
TEST(ServerCatalogTest, TwoTablesConcurrentlyByteMatchSoloServing) {
  auto make_workload = [](uint64_t seed) {
    auto ds = MakeBoxOfficeDataset(seed).ValueOrDie();
    std::vector<std::string> queries = {ds.selection_predicate,
                                        "revenue_index > 1.0",
                                        "budget_0 > 0.5 AND budget_1 > 0.5",
                                        ds.selection_predicate,  // cache hit
                                        "audience_0 > 0.25"};
    return std::make_pair(std::move(ds), std::move(queries));
  };

  auto serve_solo = [](Table table, const std::vector<std::string>& queries) {
    auto server = ZiggyServer::Create(std::move(table), GoldenServeOptions());
    EXPECT_TRUE(server.ok());
    const uint64_t sid = (*server)->OpenSession();
    std::vector<std::string> reports;
    const Schema& schema = (*server)->state()->table().schema();
    for (const std::string& q : queries) {
      auto result = (*server)->Characterize(sid, q);
      EXPECT_TRUE(result.ok()) << q;
      reports.push_back(RenderCharacterizationReport(*result, schema));
    }
    return reports;
  };

  auto [ds_a, queries_a] = make_workload(7);
  auto [ds_b, queries_b] = make_workload(19);
  auto solo_a = serve_solo(std::move(ds_a.table), queries_a);
  auto solo_b = serve_solo(std::move(ds_b.table), queries_b);

  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  auto fresh_a = MakeBoxOfficeDataset(7);
  auto fresh_b = MakeBoxOfficeDataset(19);
  ASSERT_TRUE(fresh_a.ok() && fresh_b.ok());
  ASSERT_TRUE(catalog.Open("a", std::move(fresh_a->table)).ok());
  ASSERT_TRUE(catalog.Open("b", std::move(fresh_b->table)).ok());

  std::vector<std::string> concurrent_a, concurrent_b;
  auto drive = [&catalog](const std::string& name,
                          const std::vector<std::string>& queries,
                          std::vector<std::string>* out) {
    auto server = catalog.Find(name);
    ASSERT_TRUE(server.ok());
    const uint64_t sid = (*server)->OpenSession();
    const Schema& schema = (*server)->state()->table().schema();
    for (const std::string& q : queries) {
      auto result = (*server)->Characterize(sid, q);
      ASSERT_TRUE(result.ok()) << name << ": " << q;
      out->push_back(RenderCharacterizationReport(*result, schema));
    }
  };
  std::thread ta(drive, "a", queries_a, &concurrent_a);
  std::thread tb(drive, "b", queries_b, &concurrent_b);
  ta.join();
  tb.join();

  EXPECT_EQ(concurrent_a, solo_a);
  EXPECT_EQ(concurrent_b, solo_b);
}

// ---------------------------------------------------------------- handler --

TEST(DaemonHandlerTest, VerbSemantics) {
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  DaemonHandler handler(&catalog);

  auto call = [&handler](const std::string& line) {
    auto request = LineProtocol::ParseRequest(line);
    EXPECT_TRUE(request.ok()) << line;
    return handler.Handle(*request);
  };

  WireResponse open = call("OPEN box demo://boxoffice?seed=7");
  ASSERT_TRUE(open.ok) << open.body;
  EXPECT_EQ(open.body,
            "{\"table\":\"box\",\"rows\":900,\"columns\":12,\"generation\":0}");

  WireResponse dup = call("OPEN box demo://boxoffice?seed=7");
  EXPECT_FALSE(dup.ok);
  EXPECT_EQ(dup.code, StatusCode::kAlreadyExists);

  WireResponse list = call("LIST");
  ASSERT_TRUE(list.ok);
  EXPECT_EQ(list.body,
            "{\"tables\":[{\"name\":\"box\",\"rows\":900,\"columns\":12,"
            "\"generation\":0,\"sessions\":0}]}");

  EXPECT_EQ(call("VIEWS nope x > 1").code, StatusCode::kNotFound);
  EXPECT_EQ(call("VIEWS box revenue_index >").code, StatusCode::kParseError);
  EXPECT_EQ(handler.num_open_sessions(), 1u);  // lazily opened by VIEWS

  WireResponse views = call(std::string("VIEWS box ") + kBoxofficePredicate);
  ASSERT_TRUE(views.ok) << views.body;
  EXPECT_EQ(views.body.front(), '"');
  EXPECT_EQ(views.body.back(), '"');

  WireResponse characterize =
      call(std::string("CHARACTERIZE box ") + kBoxofficePredicate);
  ASSERT_TRUE(characterize.ok);
  EXPECT_NE(characterize.body.find("\"result\":{"), std::string::npos);
  EXPECT_NE(characterize.body.find("\"sketches\":\""), std::string::npos);

  WireResponse stats = call("STATS box");
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.body.find("\"component_cache\""), std::string::npos);
  WireResponse catalog_stats = call("STATS");
  ASSERT_TRUE(catalog_stats.ok);
  EXPECT_NE(catalog_stats.body.find("\"worker_pool_threads\""),
            std::string::npos);

  WireResponse close = call("CLOSE box");
  ASSERT_TRUE(close.ok);
  EXPECT_EQ(handler.num_open_sessions(), 0u);
  EXPECT_EQ(call("CLOSE box").code, StatusCode::kNotFound);

  // HELLO pins the full capability payload: no store attached, healthy,
  // default limits, every verb in table (= enum = wire) order.
  WireResponse hello = call("HELLO");
  ASSERT_TRUE(hello.ok) << hello.body;
  EXPECT_EQ(hello.body,
            "{\"server\":\"ziggy\",\"protocol\":2,"
            "\"features\":{\"pipelining\":true,\"compression\":false,"
            "\"degraded\":false},"
            "\"limits\":{\"max_line_bytes\":" +
                std::to_string(LineProtocol::kMaxLineBytes) +
                ",\"max_pipeline\":64},"
                "\"verbs\":[\"OPEN\",\"LIST\",\"CHARACTERIZE\",\"VIEWS\","
                "\"APPEND\",\"STATS\",\"SAVE\",\"PERSIST\",\"CLOSE\","
                "\"HEALTH\",\"HELLO\",\"QUIT\",\"METRICS\"]}");

  // METRICS: JSON by default, Prometheus text (wire-framed as one JSON
  // string) on request, and an ERR for an unknown format.
  WireResponse metrics_json = call("METRICS");
  ASSERT_TRUE(metrics_json.ok) << metrics_json.body;
  EXPECT_EQ(metrics_json.body.front(), '{');
  EXPECT_NE(metrics_json.body.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(metrics_json.body.find("\"histograms\":{"), std::string::npos);
  WireResponse metrics_prom = call("METRICS prometheus");
  ASSERT_TRUE(metrics_prom.ok) << metrics_prom.body;
  EXPECT_EQ(metrics_prom.body.front(), '"');
  EXPECT_EQ(metrics_prom.body.back(), '"');
  EXPECT_NE(metrics_prom.body.find("# TYPE"), std::string::npos);
  EXPECT_EQ(call("METRICS xml").code, StatusCode::kInvalidArgument);

  EXPECT_FALSE(handler.quit_requested());
  WireResponse quit = call("QUIT");
  ASSERT_TRUE(quit.ok);
  EXPECT_TRUE(handler.quit_requested());
}

// A connection's cached per-table session must not outlive the table: if
// another connection CLOSEs and re-OPENs the name, the next request here
// must bind to the *current* table, not silently serve the dead one.
TEST(DaemonHandlerTest, RebindsSessionAfterTableIsReplacedByAnotherConnection) {
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  DaemonHandler conn_a(&catalog);
  DaemonHandler conn_b(&catalog);

  auto call = [](DaemonHandler* handler, const std::string& line) {
    auto request = LineProtocol::ParseRequest(line);
    EXPECT_TRUE(request.ok()) << line;
    return handler->Handle(*request);
  };

  ASSERT_TRUE(call(&conn_a, "OPEN t demo://boxoffice?seed=7").ok);
  ASSERT_TRUE(call(&conn_a, "VIEWS t revenue_index > 1.2").ok);  // binds session

  // Connection B replaces `t` with a different dataset (different schema).
  ASSERT_TRUE(call(&conn_b, "CLOSE t").ok);
  ASSERT_TRUE(call(&conn_b, "OPEN t demo://crime?seed=11").ok);

  // A's cached binding is stale; the handler must resolve the new table —
  // a boxoffice column no longer exists, a crime column does.
  EXPECT_EQ(call(&conn_a, "VIEWS t revenue_index > 1.2").code,
            StatusCode::kNotFound);
  EXPECT_TRUE(call(&conn_a, "VIEWS t violent_crime_rate > 1.4").ok);
  EXPECT_EQ(conn_a.num_open_sessions(), 1u);
}

TEST(DaemonHandlerTest, SaveAndPersistRequireAStore) {
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  DaemonHandler handler(&catalog);

  auto call = [&handler](const std::string& line) {
    auto request = LineProtocol::ParseRequest(line);
    EXPECT_TRUE(request.ok()) << line;
    return handler.Handle(*request);
  };

  EXPECT_EQ(call("SAVE").code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(call("SAVE box").code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(call("PERSIST box on").code, StatusCode::kFailedPrecondition);
}

TEST(DaemonHandlerTest, SaveAndPersistVerbsAgainstAStore) {
  const std::string dir =
      ::testing::TempDir() + "/ziggy_daemon_test_store_verbs";
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  DaemonHandler handler(&catalog);

  auto call = [&handler](const std::string& line) {
    auto request = LineProtocol::ParseRequest(line);
    EXPECT_TRUE(request.ok()) << line;
    return handler.Handle(*request);
  };

  ASSERT_TRUE(call("OPEN box demo://boxoffice?seed=7").ok);
  EXPECT_EQ(call("SAVE nope").code, StatusCode::kNotFound);
  EXPECT_EQ(call("PERSIST nope on").code, StatusCode::kNotFound);
  EXPECT_EQ(call("PERSIST box maybe").code, StatusCode::kInvalidArgument);

  WireResponse save = call("SAVE box");
  ASSERT_TRUE(save.ok) << save.body;
  EXPECT_EQ(save.body, "{\"saved\":[{\"table\":\"box\",\"generation\":0}]}");
  EXPECT_TRUE(catalog.StoreHas("box"));

  WireResponse persist_on = call("PERSIST box on");
  ASSERT_TRUE(persist_on.ok);
  EXPECT_EQ(persist_on.body, "{\"table\":\"box\",\"persist\":true}");
  WireResponse persist_off = call("PERSIST box OFF");  // case-insensitive
  ASSERT_TRUE(persist_off.ok);
  EXPECT_EQ(persist_off.body, "{\"table\":\"box\",\"persist\":false}");

  WireResponse save_all = call("SAVE");
  ASSERT_TRUE(save_all.ok);
  EXPECT_EQ(save_all.body,
            "{\"saved\":[{\"table\":\"box\",\"generation\":0}]}");

  // Stats expose the store section.
  WireResponse stats = call("STATS");
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.body.find("\"store\":{\"attached\":true"), std::string::npos);

  ASSERT_TRUE(call("CLOSE box").ok);
  EXPECT_TRUE(catalog.StoreHas("box"));  // close keeps the checkpoint
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// A SAVE that hits a disk fault surfaces the error over the wire,
// installs nothing, and succeeds verbatim once the fault heals (the
// ScopedFault window closing is the heal).
TEST(DaemonHandlerTest, SaveFaultSurfacesErrorAndHealsCleanly) {
  const std::string dir = ::testing::TempDir() + "/ziggy_daemon_test_savefault";
  CatalogOptions options;
  options.serve = GoldenServeOptions();
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  DaemonHandler handler(&catalog);

  auto call = [&handler](const std::string& line) {
    auto request = LineProtocol::ParseRequest(line);
    EXPECT_TRUE(request.ok()) << line;
    return handler.Handle(*request);
  };

  ASSERT_TRUE(call("OPEN box demo://boxoffice?seed=7").ok);
  {
    ScopedFault fault("store.write:n1#ENOSPC");
    ASSERT_TRUE(fault.status().ok());
    WireResponse save = call("SAVE box");
    EXPECT_FALSE(save.ok);
    EXPECT_GE(fault.fires(), 1u);
  }
  EXPECT_FALSE(catalog.StoreHas("box"));

  WireResponse healed = call("SAVE box");
  ASSERT_TRUE(healed.ok) << healed.body;
  EXPECT_EQ(healed.body, "{\"saved\":[{\"table\":\"box\",\"generation\":0}]}");
  EXPECT_TRUE(catalog.StoreHas("box"));
  ASSERT_TRUE(call("CLOSE box").ok);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// OPEN falls back to a stored checkpoint: same command, same reply, warm
// path — the invariant the CI store-roundtrip gate replays over TCP.
TEST(DaemonHandlerTest, OpenServesCheckpointWhenStoreHasTheTable) {
  const std::string dir = ::testing::TempDir() + "/ziggy_daemon_test_warm_open";
  CatalogOptions options;
  options.serve = GoldenServeOptions();

  std::string cold_open_body, cold_views_body;
  {
    ServerCatalog catalog(options);
    ASSERT_TRUE(catalog.AttachStore(dir).ok());
    DaemonHandler handler(&catalog);
    auto open = LineProtocol::ParseRequest("OPEN box demo://boxoffice?seed=7");
    auto views = LineProtocol::ParseRequest(std::string("VIEWS box ") +
                                            kBoxofficePredicate);
    ASSERT_TRUE(open.ok() && views.ok());
    WireResponse open_reply = handler.Handle(*open);
    ASSERT_TRUE(open_reply.ok);
    cold_open_body = open_reply.body;
    WireResponse views_reply = handler.Handle(*views);
    ASSERT_TRUE(views_reply.ok);
    cold_views_body = views_reply.body;
    ASSERT_TRUE(handler.Handle(*LineProtocol::ParseRequest("SAVE box")).ok);
  }

  // "Restart": a fresh catalog on the same store. The identical OPEN now
  // serves the checkpoint — byte-identical replies, store_opens == 1.
  ServerCatalog catalog(options);
  ASSERT_TRUE(catalog.AttachStore(dir).ok());
  DaemonHandler handler(&catalog);
  auto open = LineProtocol::ParseRequest("OPEN box demo://boxoffice?seed=7");
  auto views = LineProtocol::ParseRequest(std::string("VIEWS box ") +
                                          kBoxofficePredicate);
  ASSERT_TRUE(open.ok() && views.ok());
  WireResponse warm_open = handler.Handle(*open);
  ASSERT_TRUE(warm_open.ok) << warm_open.body;
  EXPECT_EQ(warm_open.body, cold_open_body);
  WireResponse warm_views = handler.Handle(*views);
  ASSERT_TRUE(warm_views.ok);
  EXPECT_EQ(warm_views.body, cold_views_body);
  EXPECT_EQ(catalog.stats().store_opens, 1u);
  // The warm cache served the first query without a scan.
  auto server = catalog.Find("box");
  ASSERT_TRUE(server.ok());
  EXPECT_GT((*server)->stats().cache_warmed_entries, 0u);
  EXPECT_EQ((*server)->stats().sketch_misses, 0u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// ------------------------------------------------------------- TCP daemon --

class DaemonTcpTest : public ::testing::Test {
 protected:
  void StartDaemon(DaemonOptions options = {}) {
    options.catalog.serve = GoldenServeOptions();
    auto daemon = ZiggyDaemon::Start(std::move(options));
    ASSERT_TRUE(daemon.ok()) << daemon.status();
    daemon_ = std::move(*daemon);
  }

  Status Connect(ZiggyClient* client) {
    return client->Connect(daemon_->host(), daemon_->port());
  }

  std::unique_ptr<ZiggyDaemon> daemon_;
};

TEST_F(DaemonTcpTest, ServesGoldenOutputOverTheWire) {
  StartDaemon();
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());

  auto open = client.Open("box", "demo://boxoffice?seed=7");
  ASSERT_TRUE(open.ok()) << open.status();

  // Pin the predicate the CI commands file uses to the dataset's ground
  // truth, then check the wire report against the in-process golden file.
  auto ds = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->selection_predicate, kBoxofficePredicate);

  auto report = client.Views("box", kBoxofficePredicate);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string golden = ReadFileOrDie(
      std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/boxoffice_views.golden");
  EXPECT_EQ(*report, golden);

  EXPECT_TRUE(client.Quit().ok());
}

TEST_F(DaemonTcpTest, TwoConcurrentClientsBothGetGoldenOutput) {
  StartDaemon();
  const std::string golden = ReadFileOrDie(
      std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/boxoffice_views.golden");
  {
    ZiggyClient setup;
    ASSERT_TRUE(Connect(&setup).ok());
    ASSERT_TRUE(setup.Open("box", "demo://boxoffice?seed=7").ok());
  }
  auto drive = [this, &golden]() {
    ZiggyClient client;
    ASSERT_TRUE(Connect(&client).ok());
    for (int i = 0; i < 3; ++i) {
      auto report = client.Views("box", kBoxofficePredicate);
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_EQ(*report, golden);
    }
  };
  std::thread a(drive), b(drive);
  a.join();
  b.join();
  EXPECT_GE(daemon_->stats().connections_accepted, 3u);
}

TEST_F(DaemonTcpTest, MalformedAndOversizedInputGetCleanErrorsAndTheConnectionSurvives) {
  DaemonOptions options;
  options.max_line_bytes = 256;
  StartDaemon(std::move(options));
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());

  auto bogus = client.CallLine("FROBNICATE the data");
  ASSERT_TRUE(bogus.ok());  // transport fine; protocol-level ERR
  EXPECT_FALSE(bogus->ok);
  EXPECT_EQ(bogus->code, StatusCode::kInvalidArgument);

  auto empty_verb = client.CallLine("   ");
  ASSERT_TRUE(empty_verb.ok());
  EXPECT_FALSE(empty_verb->ok);

  auto oversized = client.CallLine("VIEWS box " + std::string(4096, 'x'));
  ASSERT_TRUE(oversized.ok());
  EXPECT_FALSE(oversized->ok);
  EXPECT_EQ(oversized->code, StatusCode::kOutOfRange);

  // The stream re-synchronized: normal traffic continues on the same
  // connection.
  auto list = client.List();
  ASSERT_TRUE(list.ok()) << list.status();
  EXPECT_EQ(*list, "{\"tables\":[]}");
  EXPECT_GE(daemon_->stats().protocol_errors, 3u);
}

TEST_F(DaemonTcpTest, AppendCreatesNewGenerationOverTheWire) {
  StartDaemon();
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.Open("box", "demo://boxoffice?seed=7").ok());

  auto ds = MakeBoxOfficeDataset(7);
  ASSERT_TRUE(ds.ok());
  const std::string csv_path =
      ::testing::TempDir() + "/ziggy_daemon_test_append.csv";
  ASSERT_TRUE(WriteCsvFile(ds->table, csv_path).ok());

  auto append = client.Append("box", csv_path);
  ASSERT_TRUE(append.ok()) << append.status();
  EXPECT_EQ(*append,
            "{\"table\":\"box\",\"appended_rows\":900,\"generation\":1}");

  auto list = client.List();
  ASSERT_TRUE(list.ok());
  EXPECT_NE(list->find("\"rows\":1800"), std::string::npos);
  // Queries on the doubled table still work end to end.
  auto report = client.Views("box", kBoxofficePredicate);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->find("inside="), std::string::npos);
  std::remove(csv_path.c_str());
}

// Full warm-restart cycle over TCP: daemon A checkpoints, daemon B boots
// from the store and serves byte-identical wire output for the same
// commands — the in-process version of the CI store-roundtrip gate.
TEST_F(DaemonTcpTest, WarmRestartedDaemonServesByteIdenticalWireOutput) {
  const std::string dir = ::testing::TempDir() + "/ziggy_daemon_tcp_store";
  const std::string golden = ReadFileOrDie(
      std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/boxoffice_views.golden");

  DaemonOptions options;
  options.store_dir = dir;
  StartDaemon(std::move(options));
  {
    ZiggyClient client;
    ASSERT_TRUE(Connect(&client).ok());
    ASSERT_TRUE(client.Open("box", "demo://boxoffice?seed=7").ok());
    auto report = client.Views("box", kBoxofficePredicate);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(*report, golden);
    auto saved = client.Save();
    ASSERT_TRUE(saved.ok()) << saved.status();
    EXPECT_EQ(*saved, "{\"saved\":[{\"table\":\"box\",\"generation\":0}]}");
  }
  daemon_->Stop();

  // Restart on the same store; replay the same OPEN + VIEWS.
  DaemonOptions restarted;
  restarted.store_dir = dir;
  StartDaemon(std::move(restarted));
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());
  auto open = client.Open("box", "demo://boxoffice?seed=7");
  ASSERT_TRUE(open.ok()) << open.status();
  EXPECT_EQ(*open,
            "{\"table\":\"box\",\"rows\":900,\"columns\":12,\"generation\":0}");
  auto report = client.Views("box", kBoxofficePredicate);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(*report, golden);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"opens\":1"), std::string::npos) << *stats;
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// A silent client is disconnected after --request-timeout-ms instead of
// pinning a handler thread forever (PR 3 hardening follow-up).
TEST_F(DaemonTcpTest, SilentConnectionIsTimedOutAndFreed) {
  DaemonOptions options;
  options.request_timeout_ms = 150;
  StartDaemon(std::move(options));

  ZiggyClient idle;
  // Pin the raw single-attempt path: with retries on, the client would
  // transparently reconnect after the timeout disconnect (that behavior
  // has its own test below) and this test wants to see the raw failure.
  idle.set_retry_policy({/*enabled=*/false});
  ASSERT_TRUE(Connect(&idle).ok());
  // Active traffic inside the window is unaffected.
  ASSERT_TRUE(idle.List().ok());

  // Now go silent past the timeout: the daemon answers with an ERR and
  // closes, so the next call fails instead of hanging.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  auto after = idle.List();
  EXPECT_FALSE(after.ok());
  // The reaper may take one accept-loop turn; poll briefly.
  for (int i = 0; i < 50 && daemon_->stats().connections_timed_out == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(daemon_->stats().connections_timed_out, 1u);

  // A fresh connection still serves.
  ZiggyClient fresh;
  ASSERT_TRUE(Connect(&fresh).ok());
  EXPECT_TRUE(fresh.List().ok());
}

TEST_F(DaemonTcpTest, StopUnblocksLiveConnections) {
  StartDaemon();
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.List().ok());
  daemon_->Stop();
  // The daemon closed the socket: the next call fails cleanly instead of
  // hanging (the idempotent-retry reconnects also fail — nothing listens).
  EXPECT_FALSE(client.List().ok());
}

// ----------------------------------------------------------- resilience --

TEST_F(DaemonTcpTest, HealthVerbReportsOkOverTheWire) {
  StartDaemon();
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.Open("box", "demo://boxoffice?seed=7").ok());

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_NE(health->find("\"status\":\"ok\""), std::string::npos) << *health;
  EXPECT_NE(health->find("\"tables\":1"), std::string::npos) << *health;
  EXPECT_NE(health->find("\"consecutive_failures\":0"), std::string::npos);
  // Over TCP the probe also carries the daemon's connection counters.
  EXPECT_NE(health->find("\"connections\":{\"accepted\":"), std::string::npos)
      << *health;

  // HEALTH takes no arguments.
  auto bad = client.CallLine("HEALTH now");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ok);
}

// A peer that disappears mid-response (RST, not FIN) must cost the daemon
// nothing but the connection: no SIGPIPE death, and fresh clients keep
// being served. Regression for the signal(SIGPIPE, SIG_IGN) hardening.
TEST_F(DaemonTcpTest, VanishedPeerMidResponseDoesNotKillTheDaemon) {
  StartDaemon();
  {
    ZiggyClient setup;
    ASSERT_TRUE(Connect(&setup).ok());
    ASSERT_TRUE(setup.Open("box", "demo://boxoffice?seed=7").ok());
  }
  for (int round = 0; round < 3; ++round) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon_->port());
    ASSERT_EQ(inet_pton(AF_INET, daemon_->host().c_str(), &addr.sin_addr), 1);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    // Ask for a large response, then vanish with an RST before reading a
    // byte of it: the daemon's send() hits a reset stream.
    const std::string request =
        "VIEWS box " + std::string(kBoxofficePredicate) + "\n";
    ASSERT_EQ(send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    linger hard{1, 0};
    (void)setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    close(fd);
  }
  // The daemon is alive and still serving golden bytes.
  ZiggyClient fresh;
  ASSERT_TRUE(Connect(&fresh).ok());
  auto report = fresh.Views("box", kBoxofficePredicate);
  ASSERT_TRUE(report.ok()) << report.status();
  const std::string golden = ReadFileOrDie(
      std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/boxoffice_views.golden");
  EXPECT_EQ(*report, golden);
}

// ------------------------------------------------------- pipelining --

/// A raw loopback connection for byte-level pipelining tests (the client
/// class would frame for us and hide exactly what we want to observe).
int ConnectRawSocket(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Blocking-reads `fd` until `want` newline-terminated lines arrived (or
/// the peer hung up / errored, returning what was read so the test's size
/// assertion fails with the partial transcript visible).
std::vector<std::string> ReadResponseLines(int fd, size_t want) {
  std::string data;
  size_t lines = 0;
  char buffer[4096];
  while (lines < want) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (buffer[i] == '\n') ++lines;
    }
    data.append(buffer, static_cast<size_t>(n));
  }
  std::vector<std::string> out;
  size_t begin = 0;
  for (size_t nl = data.find('\n'); nl != std::string::npos;
       nl = data.find('\n', begin)) {
    out.push_back(data.substr(begin, nl - begin));
    begin = nl + 1;
  }
  return out;
}

TEST_F(DaemonTcpTest, PipelinedRequestsAnswerStrictlyInOrder) {
  StartDaemon();
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.Open("box", "demo://boxoffice?seed=7").ok());

  // Queue a window of distinguishable requests without reading anything.
  ASSERT_TRUE(client.SendRequest({Verb::kList, {}}).ok());
  ASSERT_TRUE(client.SendRequest({Verb::kStats, {"box"}}).ok());
  ASSERT_TRUE(client.SendRequest({Verb::kHealth, {}}).ok());
  ASSERT_TRUE(client.SendRequest({Verb::kList, {}}).ok());
  EXPECT_EQ(client.inflight(), 4u);

  // A blocking call may not interleave into the pipeline: it would steal
  // the next pipelined response.
  auto blocked = client.List();
  EXPECT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsFailedPrecondition());
  EXPECT_EQ(client.inflight(), 4u);

  // Responses pop strictly in send order.
  auto list = client.WaitResponse();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->body.rfind("{\"tables\":[{\"name\":\"box\"", 0), 0u)
      << list->body;
  auto stats = client.WaitResponse();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"component_cache\""), std::string::npos);
  auto health = client.WaitResponse();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);
  // The last one through the non-blocking poll.
  for (;;) {
    auto polled = client.PollResponse();
    ASSERT_TRUE(polled.ok()) << polled.status();
    if (!polled->has_value()) continue;
    EXPECT_EQ((*polled)->body.rfind("{\"tables\":[{\"name\":\"box\"", 0), 0u);
    break;
  }
  EXPECT_EQ(client.inflight(), 0u);
  // With the pipeline drained, blocking calls work again.
  EXPECT_TRUE(client.List().ok());
  EXPECT_GE(daemon_->stats().pipelined_requests, 1u);
  EXPECT_TRUE(client.Quit().ok());
}

TEST_F(DaemonTcpTest, HelloAdvertisesProtocolFeaturesAndLimits) {
  DaemonOptions options;
  options.max_pipeline = 32;
  StartDaemon(std::move(options));
  ZiggyClient client;
  ASSERT_TRUE(Connect(&client).ok());
  auto hello = client.Hello();
  ASSERT_TRUE(hello.ok()) << hello.status();
  EXPECT_NE(hello->find("\"server\":\"ziggy\""), std::string::npos) << *hello;
  EXPECT_NE(hello->find("\"protocol\":2"), std::string::npos);
  EXPECT_NE(hello->find("\"pipelining\":true"), std::string::npos);
  EXPECT_NE(hello->find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(hello->find("\"max_pipeline\":32"), std::string::npos);
  EXPECT_NE(hello->find("\"HELLO\""), std::string::npos);
  // HELLO is pure negotiation: the session continues unchanged for a
  // client that sent it — and never changed for one that did not.
  EXPECT_TRUE(client.List().ok());
  EXPECT_TRUE(client.Quit().ok());
}

TEST_F(DaemonTcpTest, OversizedLineMidPipelineAnswersInOrderWithoutDesync) {
  DaemonOptions options;
  options.max_line_bytes = 128;
  StartDaemon(std::move(options));
  const int fd = ConnectRawSocket(daemon_->host(), daemon_->port());
  ASSERT_GE(fd, 0);

  // One segment, three requests, the middle one over the line limit. The
  // server must answer all three in order: OK, ERR, OK — no desync, no
  // drop of the request *after* the oversized one.
  const std::string segment =
      "LIST\nVIEWS box " + std::string(4096, 'x') + "\nLIST\n";
  ASSERT_EQ(send(fd, segment.data(), segment.size(), 0),
            static_cast<ssize_t>(segment.size()));
  const std::vector<std::string> lines = ReadResponseLines(fd, 3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "OK {\"tables\":[]}");
  EXPECT_EQ(lines[1].rfind("ERR OutOfRange", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2], "OK {\"tables\":[]}");
  close(fd);
}

TEST_F(DaemonTcpTest, SlowReaderBurstIsThrottledAndStillAnsweredInFull) {
  DaemonOptions options;
  options.max_pipeline = 2;  // tiny pipeline: a burst must pause reads
  StartDaemon(std::move(options));
  {
    ZiggyClient setup;
    ASSERT_TRUE(Connect(&setup).ok());
    ASSERT_TRUE(setup.Open("box", "demo://boxoffice?seed=7").ok());
  }
  const int fd = ConnectRawSocket(daemon_->host(), daemon_->port());
  ASSERT_GE(fd, 0);

  // Lead with a slow request so the queue is pinned at its bound while
  // the rest of the burst is already buffered, then don't read a byte
  // until everything is sent.
  constexpr size_t kBurst = 24;
  std::string segment = "VIEWS box " + std::string(kBoxofficePredicate) + "\n";
  for (size_t i = 1; i < kBurst; ++i) segment += "LIST\n";
  ASSERT_EQ(send(fd, segment.data(), segment.size(), 0),
            static_cast<ssize_t>(segment.size()));

  const std::vector<std::string> lines = ReadResponseLines(fd, kBurst);
  ASSERT_EQ(lines.size(), kBurst);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;
  }
  // The burst exceeded max_pipeline while request 0 was in flight, so the
  // loop must have paused this connection's reads at least once.
  EXPECT_GE(daemon_->stats().reads_throttled, 1u);
  EXPECT_GE(daemon_->stats().pipelined_requests, 1u);
  close(fd);
}

TEST_F(DaemonTcpTest, HalfClosedPeerStillGetsEveryQueuedResponse) {
  StartDaemon();
  const int fd = ConnectRawSocket(daemon_->host(), daemon_->port());
  ASSERT_GE(fd, 0);

  // Send a pipeline, then half-close: FIN with requests still queued. The
  // daemon must drain the queue, flush both responses, then close — not
  // treat the FIN as a dead connection.
  const std::string segment = "LIST\nHEALTH\n";
  ASSERT_EQ(send(fd, segment.data(), segment.size(), 0),
            static_cast<ssize_t>(segment.size()));
  ASSERT_EQ(shutdown(fd, SHUT_WR), 0);

  // Read to EOF: exactly the two responses, in order.
  const std::vector<std::string> lines = ReadResponseLines(fd, 3);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "OK {\"tables\":[]}");
  EXPECT_EQ(lines[1].rfind("OK {\"status\":\"ok\"", 0), 0u) << lines[1];
  close(fd);
}

// ------------------------------------------------------- client retries --

/// A hand-rolled one-shot TCP server: hangs up on the first connection
/// after reading the request (an ambiguous transport failure from the
/// client's point of view), then answers the second properly. Lets the
/// retry tests script the exact failure the real daemon can't produce on
/// demand.
class FlakyServer {
 public:
  FlakyServer() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(
        bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(listen(listen_fd_, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }

  ~FlakyServer() {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) close(listen_fd_);
  }

  uint16_t port() const { return port_; }

  /// Connection 1: read the request, close without replying. Connection 2
  /// (if `then_answer`): read the request, reply `response`.
  void Run(bool then_answer, std::string response) {
    thread_ = std::thread([this, then_answer, response = std::move(response)] {
      const int c1 = accept(listen_fd_, nullptr, nullptr);
      if (c1 >= 0) {
        char buf[512];
        (void)!recv(c1, buf, sizeof(buf), 0);
        close(c1);
      }
      if (!then_answer) return;
      const int c2 = accept(listen_fd_, nullptr, nullptr);
      if (c2 >= 0) {
        char buf[512];
        (void)!recv(c2, buf, sizeof(buf), 0);
        (void)!send(c2, response.data(), response.size(), MSG_NOSIGNAL);
        close(c2);
      }
    });
  }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST(ZiggyClientRetryTest, IdempotentVerbRetriesReconnectsAndSucceeds) {
  FlakyServer server;
  server.Run(/*then_answer=*/true, "OK {\"tables\":[]}\n");

  ZiggyClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto list = client.List();  // LIST is idempotent: retried transparently
  ASSERT_TRUE(list.ok()) << list.status();
  EXPECT_EQ(*list, "{\"tables\":[]}");
  EXPECT_EQ(client.retries(), 1u);
}

TEST(ZiggyClientRetryTest, NonIdempotentVerbSurfacesTheFailureUnretried) {
  FlakyServer server;
  server.Run(/*then_answer=*/false, "");

  ZiggyClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // APPEND may or may not have been applied by the vanished server — the
  // client must NOT guess. The error surfaces on the first failure.
  auto append = client.Append("box", "/tmp/rows.csv");
  EXPECT_FALSE(append.ok());
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_FALSE(client.connected());
}

TEST(ZiggyClientRetryTest, DisabledPolicySurfacesTransportErrors) {
  FlakyServer server;
  server.Run(/*then_answer=*/false, "");

  ZiggyClient client;
  client.set_retry_policy({/*enabled=*/false});
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_FALSE(client.List().ok());
  EXPECT_EQ(client.retries(), 0u);
}

TEST(ZiggyClientRetryTest, IdempotenceClassification) {
  // Reads (and the re-openable OPEN) retry; anything whose replay could
  // apply a side effect twice does not.
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kOpen));
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kList));
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kCharacterize));
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kViews));
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kStats));
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kHealth));
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kHello));
  EXPECT_TRUE(ZiggyClient::IsIdempotent(Verb::kMetrics));
  EXPECT_FALSE(ZiggyClient::IsIdempotent(Verb::kAppend));
  EXPECT_FALSE(ZiggyClient::IsIdempotent(Verb::kSave));
  EXPECT_FALSE(ZiggyClient::IsIdempotent(Verb::kPersist));
  EXPECT_FALSE(ZiggyClient::IsIdempotent(Verb::kClose));
  EXPECT_FALSE(ZiggyClient::IsIdempotent(Verb::kQuit));
}

// ------------------------------------------------------- CI e2e fixtures --

// The CI daemon-e2e job pipes tests/golden/daemon_e2e_commands.txt through
// `ziggy_cli connect` against a fresh ziggy_daemon and diffs stdout against
// tests/golden/daemon_e2e.golden. This test regenerates both expectations
// from the library itself, so the checked-in fixtures cannot drift from
// what the code produces. Regenerate with ZIGGY_UPDATE_GOLDEN=1.
TEST(DaemonE2eFixtureTest, CommandsAndGoldenMatchTheLibrary) {
  const std::string commands_path =
      std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/daemon_e2e_commands.txt";
  const std::string golden_path =
      std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/daemon_e2e.golden";

  const std::string expected_commands =
      std::string("open box demo://boxoffice?seed=7\n") +  //
      "list\n" +                                           //
      "views box " + kBoxofficePredicate + "\n" +          //
      "raw BOGUS stuff\n" +                                //
      "close box\n" +                                      //
      "quit\n";

  const std::string report = ReadFileOrDie(
      std::string(ZIGGY_SOURCE_DIR) + "/tests/golden/boxoffice_views.golden");
  const std::string expected_output =
      std::string(
          "{\"table\":\"box\",\"rows\":900,\"columns\":12,\"generation\":0}\n") +
      "{\"tables\":[{\"name\":\"box\",\"rows\":900,\"columns\":12,"
      "\"generation\":0,\"sessions\":0}]}\n" +
      report +  // ends with its own newline
      "error: InvalidArgument: unknown verb: BOGUS\n" +
      "{\"table\":\"box\",\"closed\":true}\n";

  if (std::getenv("ZIGGY_UPDATE_GOLDEN") != nullptr) {
    std::ofstream commands(commands_path);
    commands << expected_commands;
    ASSERT_TRUE(commands.good());
    std::ofstream golden(golden_path);
    golden << expected_output;
    ASSERT_TRUE(golden.good());
    GTEST_SKIP() << "daemon e2e fixtures regenerated";
  }

  EXPECT_EQ(ReadFileOrDie(commands_path), expected_commands);
  EXPECT_EQ(ReadFileOrDie(golden_path), expected_output);
}

}  // namespace
}  // namespace ziggy
