// Tests for the ASCII plot renderer (explain/plot.h).

#include <gtest/gtest.h>

#include "common/random.h"
#include "explain/plot.h"

namespace ziggy {
namespace {

struct PlotFixture {
  Table table;
  Selection selection;
};

PlotFixture MakePlotFixture() {
  Rng rng(9);
  const size_t n = 400;
  std::vector<double> x(n);
  std::vector<double> y(n);
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inside = i < n / 8;
    if (inside) sel.Set(i);
    x[i] = (inside ? 4.0 : 0.0) + rng.Normal();
    y[i] = (inside ? 4.0 : 0.0) + rng.Normal();
  }
  return {Table::FromColumns(
              {Column::FromNumeric("x", x), Column::FromNumeric("y", y)})
              .ValueOrDie(),
          sel};
}

TEST(ScatterPlotTest, RendersBothGlyphsAndAxes) {
  PlotFixture fx = MakePlotFixture();
  std::string plot = ScatterPlot(fx.table, fx.selection, "x", "y").ValueOrDie();
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find('.'), std::string::npos);
  EXPECT_NE(plot.find("> x"), std::string::npos);  // x axis label
  EXPECT_NE(plot.find("y\n"), std::string::npos);  // y axis label
  EXPECT_NE(plot.find("n=50"), std::string::npos);
}

TEST(ScatterPlotTest, SelectionClusterSitsTopRight) {
  // The planted selection is at (+4, +4): '+' glyphs must dominate the
  // upper-right quadrant of the raster and be absent from the lower-left.
  PlotFixture fx = MakePlotFixture();
  PlotOptions opts;
  opts.width = 40;
  opts.height = 16;
  std::string plot = ScatterPlot(fx.table, fx.selection, "x", "y", opts).ValueOrDie();
  std::vector<std::string> lines;
  std::istringstream is(plot);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  // Plot rows are lines [1, 1+height); columns offset by the '|' prefix.
  size_t plus_top_right = 0;
  size_t plus_bottom_left = 0;
  for (size_t r = 0; r < opts.height; ++r) {
    const std::string& row = lines.at(1 + r);
    for (size_t c = 1; c < row.size(); ++c) {
      if (row[c] != '+') continue;
      if (r < opts.height / 2 && c > opts.width / 2) ++plus_top_right;
      if (r >= opts.height / 2 && c <= opts.width / 2) ++plus_bottom_left;
    }
  }
  EXPECT_GT(plus_top_right, 0u);
  EXPECT_EQ(plus_bottom_left, 0u);
}

TEST(ScatterPlotTest, ErrorsSurface) {
  PlotFixture fx = MakePlotFixture();
  EXPECT_TRUE(ScatterPlot(fx.table, fx.selection, "nope", "y").status().IsNotFound());
  EXPECT_TRUE(ScatterPlot(fx.table, Selection(3), "x", "y").status()
                  .IsInvalidArgument());
  PlotOptions tiny;
  tiny.width = 1;
  EXPECT_TRUE(ScatterPlot(fx.table, fx.selection, "x", "y", tiny).status()
                  .IsInvalidArgument());
  Table cat = Table::FromColumns({Column::FromStrings("s", {"a", "b"}),
                                  Column::FromNumeric("v", {1, 2})})
                  .ValueOrDie();
  EXPECT_TRUE(ScatterPlot(cat, Selection::FromIndices(2, {0}), "s", "v").status()
                  .IsTypeMismatch());
}

TEST(ScatterPlotTest, AllNullColumnFailsPrecondition) {
  Table t = Table::FromColumns(
                {Column::FromNumeric("x", {NullNumeric(), NullNumeric()}),
                 Column::FromNumeric("y", {1.0, 2.0})})
                .ValueOrDie();
  EXPECT_TRUE(ScatterPlot(t, Selection::FromIndices(2, {0}), "x", "y").status()
                  .IsFailedPrecondition());
}

TEST(ScatterPlotTest, ConstantColumnStillRenders) {
  Table t = Table::FromColumns({Column::FromNumeric("x", {5, 5, 5, 5}),
                                Column::FromNumeric("y", {1, 2, 3, 4})})
                .ValueOrDie();
  std::string plot =
      ScatterPlot(t, Selection::FromIndices(4, {0, 1}), "x", "y").ValueOrDie();
  EXPECT_NE(plot.find('+'), std::string::npos);
}

TEST(HistogramPlotTest, ShowsShiftedMass) {
  PlotFixture fx = MakePlotFixture();
  std::string plot = HistogramPlot(fx.table, fx.selection, "x").ValueOrDie();
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find('.'), std::string::npos);
  // One line per bin plus the header.
  EXPECT_EQ(static_cast<size_t>(std::count(plot.begin(), plot.end(), '\n')), 25u);
}

TEST(HistogramPlotTest, ErrorsSurface) {
  PlotFixture fx = MakePlotFixture();
  EXPECT_TRUE(HistogramPlot(fx.table, fx.selection, "zz").status().IsNotFound());
  EXPECT_TRUE(
      HistogramPlot(fx.table, fx.selection, "x", 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ziggy
