// TableProfile::ApplyAppend vs. a fresh Compute over the grown table.
//
// The serving layer's append path leans on a strong claim: everything the
// delta machinery reaches is updated *bit-identically* to recomputing from
// scratch (same summation chains, same sort order after the tiebreak, same
// refreshed dependencies for tracked pairs). With the pair-tracking floor
// at 0 every pair is tracked, nothing is frozen, and the claim upgrades to
// full TableProfile::Equals — which these tests assert.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/table.h"
#include "zig/profile.h"

namespace ziggy {
namespace {

// No NULLs: a mixed pair whose observation count crosses 2 mid-append
// would be tracked by a fresh Compute but is frozen by ApplyAppend (the
// one documented divergence class this fixture avoids).
Table MakeTable(size_t rows, uint64_t seed, double lo = -5.0, double hi = 5.0) {
  Rng rng(seed);
  std::vector<double> a(rows);
  std::vector<double> b(rows);
  std::vector<double> c(rows);
  std::vector<std::string> g(rows);
  std::vector<std::string> h(rows);
  const char* glabels[] = {"g0", "g1", "g2"};
  const char* hlabels[] = {"h0", "h1"};
  for (size_t i = 0; i < rows; ++i) {
    a[i] = rng.Uniform(lo, hi);
    b[i] = 0.7 * a[i] + rng.Uniform(-1.0, 1.0);
    c[i] = rng.Normal(0.0, 1.0);
    g[i] = glabels[rng.UniformInt(0, 2)];
    h[i] = hlabels[rng.UniformInt(0, 1)];
  }
  auto table = Table::FromColumns({
      Column::FromNumeric("a", std::move(a)),
      Column::FromNumeric("b", std::move(b)),
      Column::FromNumeric("c", std::move(c)),
      Column::FromStrings("g", g),
      Column::FromStrings("h", h),
  });
  EXPECT_TRUE(table.ok());
  return std::move(table).ValueOrDie();
}

ProfileOptions TrackEverything() {
  ProfileOptions options;
  options.pair_dependency_floor = 0.0;  // nothing frozen: full equality holds
  options.histogram_bins = 8;
  options.cache_sort_orders = true;
  return options;
}

TEST(ProfileAppendTest, WithinRangeAppendEqualsFreshCompute) {
  const Table base = MakeTable(230, 1);
  // Re-sampled base rows: guaranteed inside every range and category set,
  // so this is the pure incremental path with no re-binning.
  Rng sample_rng(2);
  const Table tail = base.SampleRows(57, &sample_rng);
  auto grown = base.WithAppendedRows(tail);
  ASSERT_TRUE(grown.ok());

  auto incremental = TableProfile::Compute(base, TrackEverything());
  ASSERT_TRUE(incremental.ok());
  auto effects = incremental->ApplyAppend(*grown, base.num_rows());
  ASSERT_TRUE(effects.ok());
  EXPECT_EQ(effects->rows_appended, 57u);
  EXPECT_FALSE(effects->ranges_extended);
  EXPECT_FALSE(effects->categories_added);
  EXPECT_TRUE(effects->rebinned_columns.empty());
  EXPECT_FALSE(effects->invalidates_sketches());

  auto fresh = TableProfile::Compute(*grown, TrackEverything());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(incremental->Equals(*fresh))
      << "incremental append diverged from full recompute";
}

TEST(ProfileAppendTest, RangeExtendingAppendRebinsAndStillMatches) {
  const Table base = MakeTable(190, 3);
  const Table tail = MakeTable(40, 4, -9.0, 9.0);  // extends every range
  auto grown = base.WithAppendedRows(tail);
  ASSERT_TRUE(grown.ok());

  auto incremental = TableProfile::Compute(base, TrackEverything());
  ASSERT_TRUE(incremental.ok());
  auto effects = incremental->ApplyAppend(*grown, base.num_rows());
  ASSERT_TRUE(effects.ok());
  EXPECT_TRUE(effects->ranges_extended);
  EXPECT_TRUE(effects->invalidates_sketches());
  EXPECT_FALSE(effects->rebinned_columns.empty());

  auto fresh = TableProfile::Compute(*grown, TrackEverything());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(incremental->Equals(*fresh));
}

TEST(ProfileAppendTest, NewCategoryGrowsShapesAndMatches) {
  const Table base = MakeTable(150, 5);
  // Tail introduces an unseen label in column g.
  std::vector<double> a = {0.5, -0.5};
  std::vector<double> b = {0.1, 0.2};
  std::vector<double> c = {1.0, -1.0};
  auto tail = Table::FromColumns({
      Column::FromNumeric("a", std::move(a)),
      Column::FromNumeric("b", std::move(b)),
      Column::FromNumeric("c", std::move(c)),
      Column::FromStrings("g", {"g_new", "g0"}),
      Column::FromStrings("h", {"h1", "h0"}),
  });
  ASSERT_TRUE(tail.ok());
  auto grown = base.WithAppendedRows(*tail);
  ASSERT_TRUE(grown.ok());

  auto incremental = TableProfile::Compute(base, TrackEverything());
  ASSERT_TRUE(incremental.ok());
  auto effects = incremental->ApplyAppend(*grown, base.num_rows());
  ASSERT_TRUE(effects.ok());
  EXPECT_TRUE(effects->categories_added);
  EXPECT_TRUE(effects->invalidates_sketches());

  auto fresh = TableProfile::Compute(*grown, TrackEverything());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(incremental->Equals(*fresh));
}

TEST(ProfileAppendTest, ChainedAppendsStayExact) {
  const Table base = MakeTable(128, 6);  // exactly two bitmap words
  auto profile = TableProfile::Compute(base, TrackEverything());
  ASSERT_TRUE(profile.ok());

  Table current = base;
  for (uint64_t step = 0; step < 4; ++step) {
    // 1-row and 63/64/65-row tails cross every word-boundary case.
    const size_t tail_rows = step == 0 ? 1 : 62 + step;
    const Table tail = MakeTable(tail_rows, 10 + step, -4.5, 4.5);
    auto grown = current.WithAppendedRows(tail);
    ASSERT_TRUE(grown.ok());
    auto effects = profile->ApplyAppend(*grown, current.num_rows());
    ASSERT_TRUE(effects.ok());
    current = std::move(*grown);
  }
  auto fresh = TableProfile::Compute(current, TrackEverything());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(profile->Equals(*fresh));
}

TEST(ProfileAppendTest, RejectsMalformedAppends) {
  const Table base = MakeTable(64, 7);
  auto profile = TableProfile::Compute(base, TrackEverything());
  ASSERT_TRUE(profile.ok());
  // Fewer rows than the profile covers.
  EXPECT_FALSE(profile->ApplyAppend(base, 65).ok());
  // Column-count mismatch.
  auto narrow = Table::FromColumns({Column::FromNumeric("a", {1.0})});
  ASSERT_TRUE(narrow.ok());
  EXPECT_FALSE(profile->ApplyAppend(*narrow, 0).ok());
}

}  // namespace
}  // namespace ziggy
