// Unit tests for src/baselines: KL/centroid scorers, beam and exhaustive
// subspace search, Jacobi eigendecomposition, PCA characterization.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/pca.h"
#include "baselines/subspace_search.h"
#include "common/random.h"

namespace ziggy {
namespace {

// Two shifted columns (0, 1), two flat columns (2, 3), one categorical.
struct BaselineFixture {
  Table table;
  Selection selection;
};

BaselineFixture MakeBaselineFixture(uint64_t seed = 51) {
  Rng rng(seed);
  const size_t n = 600;
  std::vector<double> s0(n);
  std::vector<double> s1(n);
  std::vector<double> f0(n);
  std::vector<double> f1(n);
  std::vector<std::string> cat(n);
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inside = i % 5 == 0;
    if (inside) sel.Set(i);
    s0[i] = (inside ? 3.0 : 0.0) + rng.Normal();
    s1[i] = (inside ? -2.0 : 0.0) + rng.Normal();
    f0[i] = rng.Normal();
    f1[i] = rng.Normal();
    cat[i] = "c";
  }
  return {Table::FromColumns({Column::FromNumeric("s0", s0),
                              Column::FromNumeric("s1", s1),
                              Column::FromNumeric("f0", f0),
                              Column::FromNumeric("f1", f1),
                              Column::FromStrings("cat", cat)})
              .ValueOrDie(),
          sel};
}

// ------------------------------------------------------------- KL scorer ----

TEST(GaussianKlScorerTest, EligibleColumnsAreNumericOnly) {
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  EXPECT_EQ(scorer.EligibleColumns(), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(GaussianKlScorerTest, ShiftedColumnsScoreHigher) {
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  EXPECT_GT(scorer.ColumnScore(0), 10.0 * scorer.ColumnScore(2));
  EXPECT_GT(scorer.ColumnScore(1), 10.0 * scorer.ColumnScore(3));
}

TEST(GaussianKlScorerTest, ScoreIsAdditive) {
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  EXPECT_NEAR(scorer.Score({0, 1}), scorer.ColumnScore(0) + scorer.ColumnScore(1),
              1e-12);
}

TEST(GaussianKlScorerTest, IdenticalDistributionsScoreNearZero) {
  Rng rng(3);
  const size_t n = 2000;
  std::vector<double> x(n);
  for (double& v : x) v = rng.Normal();
  Selection sel(n);
  for (size_t i = 0; i < n; i += 2) sel.Set(i);
  Table t = Table::FromColumns({Column::FromNumeric("x", x)}).ValueOrDie();
  GaussianKlScorer scorer(t, sel);
  EXPECT_LT(scorer.ColumnScore(0), 0.05);
}

// -------------------------------------------------------- centroid scorer ----

TEST(CentroidDistanceScorerTest, ShiftDominates) {
  BaselineFixture fx = MakeBaselineFixture();
  CentroidDistanceScorer scorer(fx.table, fx.selection);
  EXPECT_GT(scorer.Score({0}), scorer.Score({2}) * 5.0);
  // Monotone under superset (adds non-negative squared shift).
  EXPECT_GE(scorer.Score({0, 1}), scorer.Score({0}) - 1e-12);
}

// ------------------------------------------------------------ beam search ----

TEST(BeamSearchTest, FindsShiftedPairAsTop) {
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  BeamSearchOptions opts;
  opts.max_size = 2;
  auto results = BeamSubspaceSearch(scorer, opts);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].columns, (std::vector<size_t>{0, 1}));
}

TEST(BeamSearchTest, ResultsSortedAndDeduplicated) {
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  BeamSearchOptions opts;
  opts.max_size = 3;
  opts.top_k = 50;
  auto results = BeamSubspaceSearch(scorer, opts);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
  std::set<std::vector<size_t>> uniq;
  for (const auto& r : results) EXPECT_TRUE(uniq.insert(r.columns).second);
}

TEST(BeamSearchTest, RespectsMaxSize) {
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  BeamSearchOptions opts;
  opts.max_size = 2;
  opts.top_k = 100;
  for (const auto& r : BeamSubspaceSearch(scorer, opts)) {
    EXPECT_LE(r.columns.size(), 2u);
  }
}

// ------------------------------------------------------ exhaustive search ----

TEST(ExhaustiveSearchTest, MatchesBeamOnAdditiveScorer) {
  // With an additive scorer, greedy beam search is optimal: both must find
  // the same top subspace.
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  auto exhaustive = ExhaustiveSubspaceSearch(scorer, 2, 5);
  BeamSearchOptions opts;
  opts.max_size = 2;
  auto beam = BeamSubspaceSearch(scorer, opts);
  ASSERT_FALSE(exhaustive.empty());
  ASSERT_FALSE(beam.empty());
  EXPECT_EQ(exhaustive[0].columns, beam[0].columns);
  EXPECT_NEAR(exhaustive[0].score, beam[0].score, 1e-12);
}

TEST(ExhaustiveSearchTest, EnumerationCount) {
  BaselineFixture fx = MakeBaselineFixture();
  GaussianKlScorer scorer(fx.table, fx.selection);
  // 4 numeric columns, size<=2: C(4,1) + C(4,2) = 10 subspaces.
  auto all = ExhaustiveSubspaceSearch(scorer, 2, 1000);
  EXPECT_EQ(all.size(), 10u);
}

// ----------------------------------------------------------------- Jacobi ----

TEST(JacobiTest, DiagonalMatrixIsItsOwnDecomposition) {
  std::vector<double> m{3, 0, 0, 0, 1, 0, 0, 0, 2};
  std::vector<double> values;
  std::vector<double> vectors;
  ASSERT_TRUE(JacobiEigenDecomposition(m, 3, &values, &vectors).ok());
  EXPECT_NEAR(values[0], 3.0, 1e-12);
  EXPECT_NEAR(values[1], 2.0, 1e-12);
  EXPECT_NEAR(values[2], 1.0, 1e-12);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  std::vector<double> m{2, 1, 1, 2};
  std::vector<double> values;
  std::vector<double> vectors;
  ASSERT_TRUE(JacobiEigenDecomposition(m, 2, &values, &vectors).ok());
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vectors[0]), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::fabs(vectors[1]), std::sqrt(0.5), 1e-8);
}

TEST(JacobiTest, ReconstructionAndOrthonormality) {
  Rng rng(7);
  const size_t n = 6;
  std::vector<double> m(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Uniform(-1, 1);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  std::vector<double> values;
  std::vector<double> vectors;
  ASSERT_TRUE(JacobiEigenDecomposition(m, n, &values, &vectors).ok());
  // A v = lambda v for each eigenpair.
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (size_t j = 0; j < n; ++j) av += m[i * n + j] * vectors[k * n + j];
      EXPECT_NEAR(av, values[k] * vectors[k * n + i], 1e-8);
    }
  }
  // Eigenvectors orthonormal.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (size_t j = 0; j < n; ++j) dot += vectors[a * n + j] * vectors[b * n + j];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(JacobiTest, RejectsSizeMismatch) {
  std::vector<double> values;
  std::vector<double> vectors;
  EXPECT_FALSE(JacobiEigenDecomposition({1, 2, 3}, 2, &values, &vectors).ok());
}

// -------------------------------------------------------------------- PCA ----

TEST(PcaTest, ExplainedVarianceSumsToAtMostOne) {
  BaselineFixture fx = MakeBaselineFixture();
  PcaResult r = PcaCharacterize(fx.table, fx.selection, 4).ValueOrDie();
  double total = 0.0;
  for (const auto& pc : r.components) {
    EXPECT_GE(pc.explained_variance_ratio, 0.0);
    total += pc.explained_variance_ratio;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(PcaTest, CorrelatedColumnsLoadTogether) {
  Rng rng(9);
  const size_t n = 800;
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    const double f = rng.Normal();
    x[i] = f + 0.1 * rng.Normal();
    y[i] = f + 0.1 * rng.Normal();
    z[i] = rng.Normal();
  }
  Table t = Table::FromColumns({Column::FromNumeric("x", x), Column::FromNumeric("y", y),
                                Column::FromNumeric("z", z)})
                .ValueOrDie();
  PcaResult r = PcaCharacterize(t, Selection::All(n), 1).ValueOrDie();
  ASSERT_EQ(r.components.size(), 1u);
  auto top2 = r.components[0].TopLoadings(2);
  std::sort(top2.begin(), top2.end());
  EXPECT_EQ(top2, (std::vector<size_t>{0, 1}));
  // The first PC mixes two columns: effective dimensionality near 2, which
  // is the paper's interpretability complaint made measurable.
  EXPECT_GT(r.components[0].EffectiveDimensionality(), 1.7);
}

TEST(PcaTest, NeedsTwoNumericColumns) {
  Table t = Table::FromColumns({Column::FromNumeric("x", {1, 2, 3})}).ValueOrDie();
  EXPECT_FALSE(PcaCharacterize(t, Selection::All(3), 1).ok());
}

TEST(PcaTest, NumComponentsClamped) {
  BaselineFixture fx = MakeBaselineFixture();
  PcaResult r = PcaCharacterize(fx.table, fx.selection, 100).ValueOrDie();
  EXPECT_EQ(r.components.size(), 4u);  // only 4 numeric columns
}

TEST(PrincipalComponentTest, EffectiveDimensionalityBounds) {
  PrincipalComponent single;
  single.loadings = {1.0, 0.0, 0.0};
  EXPECT_NEAR(single.EffectiveDimensionality(), 1.0, 1e-12);
  PrincipalComponent uniform;
  const double w = 1.0 / std::sqrt(3.0);
  uniform.loadings = {w, w, w};
  EXPECT_NEAR(uniform.EffectiveDimensionality(), 3.0, 1e-9);
}

}  // namespace
}  // namespace ziggy
