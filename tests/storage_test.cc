// Unit tests for src/storage: Column, Schema, Table, TableBuilder, Selection.

#include <gtest/gtest.h>

#include <cmath>

#include "storage/column.h"
#include "storage/schema.h"
#include "storage/selection.h"
#include "storage/table.h"

namespace ziggy {
namespace {

// ---------------------------------------------------------------- Column --

TEST(ColumnTest, NumericBasics) {
  Column c = Column::FromNumeric("x", {1.0, 2.0, 3.0});
  EXPECT_EQ(c.name(), "x");
  EXPECT_TRUE(c.is_numeric());
  EXPECT_FALSE(c.is_categorical());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 0u);
  EXPECT_DOUBLE_EQ(c.numeric_data()[1], 2.0);
}

TEST(ColumnTest, NumericNullIsNaN) {
  Column c = Column::FromNumeric("x", {1.0, NullNumeric(), 3.0});
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.ValueAsString(1), "NULL");
}

TEST(ColumnTest, CategoricalInternsLabels) {
  Column c = Column::FromStrings("s", {"a", "b", "a", "c", "b"});
  EXPECT_TRUE(c.is_categorical());
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.cardinality(), 3u);
  EXPECT_EQ(c.codes()[0], c.codes()[2]);
  EXPECT_NE(c.codes()[0], c.codes()[1]);
  EXPECT_EQ(c.dictionary()[static_cast<size_t>(c.codes()[3])], "c");
}

TEST(ColumnTest, CategoricalEmptyStringIsNull) {
  Column c = Column::FromStrings("s", {"a", "", "b"});
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.cardinality(), 2u);  // "" not interned
}

TEST(ColumnTest, LookupLabel) {
  Column c = Column::FromStrings("s", {"x", "y"});
  EXPECT_EQ(c.LookupLabel("x"), 0);
  EXPECT_EQ(c.LookupLabel("y"), 1);
  EXPECT_EQ(c.LookupLabel("zzz"), kNullCategory);
}

TEST(ColumnTest, GetValueVariants) {
  Column n = Column::FromNumeric("n", {1.5, NullNumeric()});
  EXPECT_EQ(std::get<double>(n.GetValue(0)), 1.5);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(n.GetValue(1)));
  Column s = Column::FromStrings("s", {"hi"});
  EXPECT_EQ(std::get<std::string>(s.GetValue(0)), "hi");
}

TEST(ColumnTest, AppendCodeRoundTrip) {
  Column c = Column::Categorical("s");
  const CategoryCode code = c.InternLabel("only");
  c.AppendCode(code);
  c.AppendCode(kNullCategory);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ValueAsString(0), "only");
  EXPECT_TRUE(c.IsNull(1));
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", ColumnType::kNumeric}).ok());
  ASSERT_TRUE(s.AddField({"b", ColumnType::kCategorical}).ok());
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FindField("a"), std::optional<size_t>(0));
  EXPECT_EQ(s.FindField("b"), std::optional<size_t>(1));
  EXPECT_FALSE(s.FindField("c").has_value());
}

TEST(SchemaTest, DuplicateNameRejected) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", ColumnType::kNumeric}).ok());
  EXPECT_TRUE(s.AddField({"a", ColumnType::kNumeric}).IsAlreadyExists());
}

TEST(SchemaTest, GetFieldIndexErrorNamesColumn) {
  Schema s;
  Result<size_t> r = s.GetFieldIndex("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("missing"), std::string::npos);
}

TEST(SchemaTest, FieldsOfType) {
  Schema s({{"a", ColumnType::kNumeric},
            {"b", ColumnType::kCategorical},
            {"c", ColumnType::kNumeric}});
  EXPECT_EQ(s.FieldsOfType(ColumnType::kNumeric), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(s.FieldsOfType(ColumnType::kCategorical), (std::vector<size_t>{1}));
}

TEST(SchemaTest, ToString) {
  Schema s({{"x", ColumnType::kNumeric}});
  EXPECT_EQ(s.ToString(), "(x: NUMERIC)");
}

// -------------------------------------------------------------- Selection --

TEST(SelectionTest, CountAndContains) {
  Selection s(5);
  EXPECT_EQ(s.Count(), 0u);
  s.Set(1);
  s.Set(3);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(0));
}

TEST(SelectionTest, AllAndInvert) {
  Selection all = Selection::All(4);
  EXPECT_EQ(all.Count(), 4u);
  Selection none = all.Invert();
  EXPECT_EQ(none.Count(), 0u);
}

TEST(SelectionTest, FromIndices) {
  Selection s = Selection::FromIndices(6, {0, 5});
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_EQ(s.ToIndices(), (std::vector<size_t>{0, 5}));
}

TEST(SelectionTest, AndOr) {
  Selection a = Selection::FromIndices(4, {0, 1});
  Selection b = Selection::FromIndices(4, {1, 2});
  EXPECT_EQ(a.And(b).ToIndices(), (std::vector<size_t>{1}));
  EXPECT_EQ(a.Or(b).ToIndices(), (std::vector<size_t>{0, 1, 2}));
}

TEST(SelectionTest, Jaccard) {
  Selection a = Selection::FromIndices(10, {0, 1, 2, 3});
  Selection b = Selection::FromIndices(10, {2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(a), 1.0);
  Selection empty1(10);
  Selection empty2(10);
  EXPECT_DOUBLE_EQ(empty1.Jaccard(empty2), 1.0);
}

TEST(SelectionTest, FingerprintDistinguishesContent) {
  Selection a = Selection::FromIndices(16, {1});
  Selection b = Selection::FromIndices(16, {2});
  Selection c = Selection::FromIndices(16, {1});
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());
}

TEST(SelectionTest, InvertRoundTrip) {
  Selection s = Selection::FromIndices(7, {0, 2, 4, 6});
  EXPECT_EQ(s.Invert().Invert(), s);
}

// ------------------------------------------------------------------ Table --

Table MakeSmallTable() {
  auto r = Table::FromColumns({Column::FromNumeric("x", {1, 2, 3, 4}),
                               Column::FromNumeric("y", {10, 20, 30, 40}),
                               Column::FromStrings("s", {"a", "b", "a", "b"})});
  return std::move(r).ValueOrDie();
}

TEST(TableTest, FromColumnsBasics) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.schema().field(2).type, ColumnType::kCategorical);
}

TEST(TableTest, FromColumnsRejectsLengthMismatch) {
  auto r = Table::FromColumns(
      {Column::FromNumeric("x", {1, 2}), Column::FromNumeric("y", {1})});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(TableTest, FromColumnsRejectsDuplicateNames) {
  auto r = Table::FromColumns(
      {Column::FromNumeric("x", {1}), Column::FromNumeric("x", {2})});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists());
}

TEST(TableTest, GetColumn) {
  Table t = MakeSmallTable();
  ASSERT_TRUE(t.GetColumn("y").ok());
  EXPECT_DOUBLE_EQ(t.GetColumn("y").ValueOrDie()->numeric_data()[2], 30.0);
  EXPECT_TRUE(t.GetColumn("zz").status().IsNotFound());
}

TEST(TableTest, FilterKeepsSelectedRows) {
  Table t = MakeSmallTable();
  Table f = t.Filter(Selection::FromIndices(4, {1, 3}));
  EXPECT_EQ(f.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(f.column(0).numeric_data()[0], 2.0);
  EXPECT_DOUBLE_EQ(f.column(0).numeric_data()[1], 4.0);
  EXPECT_EQ(f.column(2).ValueAsString(0), "b");
}

TEST(TableTest, ProjectReordersColumns) {
  Table t = MakeSmallTable();
  Table p = t.Project({"s", "x"}).ValueOrDie();
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.schema().field(0).name, "s");
  EXPECT_EQ(p.schema().field(1).name, "x");
  EXPECT_TRUE(t.Project({"nope"}).status().IsNotFound());
}

TEST(TableTest, PreviewRendersHeaderAndRows) {
  Table t = MakeSmallTable();
  const std::string p = t.Preview(0, 2);
  EXPECT_NE(p.find("x"), std::string::npos);
  EXPECT_NE(p.find("10"), std::string::npos);
  EXPECT_EQ(p.find("30"), std::string::npos);  // row 2 not included
}

TEST(TableTest, MemoryUsageNonZero) {
  EXPECT_GT(MakeSmallTable().MemoryUsageBytes(), 0u);
}

// ----------------------------------------------------------- TableBuilder --

TEST(TableBuilderTest, AppendRowsAndFinish) {
  TableBuilder b(Schema({{"v", ColumnType::kNumeric}, {"s", ColumnType::kCategorical}}));
  ASSERT_TRUE(b.AppendRow({Value{1.0}, Value{std::string("a")}}).ok());
  ASSERT_TRUE(b.AppendRow({Value{std::monostate{}}, Value{std::string("b")}}).ok());
  EXPECT_EQ(b.num_rows(), 2u);
  Table t = b.Finish().ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.column(0).IsNull(1));
}

TEST(TableBuilderTest, RejectsArityMismatch) {
  TableBuilder b(Schema({{"v", ColumnType::kNumeric}}));
  EXPECT_TRUE(b.AppendRow({}).IsInvalidArgument());
  EXPECT_TRUE(
      b.AppendRow({Value{1.0}, Value{2.0}}).IsInvalidArgument());
}

TEST(TableBuilderTest, RejectsTypeMismatchWithoutPartialMutation) {
  TableBuilder b(Schema({{"v", ColumnType::kNumeric}, {"s", ColumnType::kCategorical}}));
  // First cell fine, second cell wrong type: nothing must be appended.
  EXPECT_TRUE(b.AppendRow({Value{1.0}, Value{2.0}}).IsTypeMismatch());
  EXPECT_EQ(b.num_rows(), 0u);
  ASSERT_TRUE(b.AppendRow({Value{1.0}, Value{std::string("ok")}}).ok());
  Table t = b.Finish().ValueOrDie();
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableBuilderTest, NullsInBothColumnKinds) {
  TableBuilder b(Schema({{"v", ColumnType::kNumeric}, {"s", ColumnType::kCategorical}}));
  ASSERT_TRUE(b.AppendRow({Value{std::monostate{}}, Value{std::monostate{}}}).ok());
  Table t = b.Finish().ValueOrDie();
  EXPECT_TRUE(t.column(0).IsNull(0));
  EXPECT_TRUE(t.column(1).IsNull(0));
}

// -------------------------------------------- Selection resize & memoing --
// Word-boundary edge cases for the serving layer's append migration: 63,
// 64 and 65 rows straddle the packed-word boundary in all three ways.

TEST(SelectionResizeTest, GrowAcrossWordBoundariesKeepsBits) {
  for (const size_t start : {63u, 64u, 65u}) {
    for (const size_t grow_to : {63u, 64u, 65u, 128u, 129u}) {
      if (grow_to < start) continue;
      Selection s(start);
      s.Set(0);
      s.Set(start - 1);
      const size_t before = s.Count();
      s.Resize(grow_to);
      EXPECT_EQ(s.num_rows(), grow_to);
      EXPECT_EQ(s.num_words(), Selection::NumWordsFor(grow_to));
      EXPECT_EQ(s.Count(), before) << start << " -> " << grow_to;
      EXPECT_TRUE(s.Contains(0));
      EXPECT_TRUE(s.Contains(start - 1));
      // Every appended row is unselected.
      for (size_t r = start; r < grow_to; ++r) EXPECT_FALSE(s.Contains(r));
    }
  }
}

TEST(SelectionResizeTest, ShrinkClearsTailBits) {
  for (const size_t start : {65u, 64u, 128u}) {
    for (const size_t shrink_to : {63u, 64u, 65u, 1u}) {
      if (shrink_to > start) continue;
      Selection s = Selection::All(start);
      s.Resize(shrink_to);
      EXPECT_EQ(s.num_rows(), shrink_to);
      // Truncated bits are gone and the tail-word invariant holds: growing
      // back must not resurrect them.
      EXPECT_EQ(s.Count(), shrink_to) << start << " -> " << shrink_to;
      s.Resize(start);
      EXPECT_EQ(s.Count(), shrink_to) << start << " -> " << shrink_to;
    }
  }
}

TEST(SelectionResizeTest, ResizePreservesFingerprintSemantics) {
  // Same bit content over different row counts must fingerprint
  // differently (the cache re-keys migrated entries on this).
  Selection a(64);
  a.Set(5);
  Selection b = a;
  b.Resize(65);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  // And an independently built selection with identical content matches.
  Selection c(65);
  c.Set(5);
  EXPECT_EQ(b.Fingerprint(), c.Fingerprint());
}

TEST(SelectionMemoTest, InPlaceMutationInvalidatesCachedCount) {
  Selection s(130);
  s.Set(0);
  s.Set(64);
  s.Set(129);
  EXPECT_EQ(s.Count(), 3u);  // memoized here
  s.Set(1);
  EXPECT_EQ(s.Count(), 4u);  // Set must invalidate
  s.Set(1, false);
  EXPECT_EQ(s.Count(), 3u);  // clearing too
  s.Resize(64);
  EXPECT_EQ(s.Count(), 1u);  // Resize truncation too
  s.Resize(256);
  EXPECT_EQ(s.Count(), 1u);
  // Copies carry the memo but stay independent.
  Selection copy = s;
  EXPECT_EQ(copy.Count(), 1u);
  copy.Set(2);
  EXPECT_EQ(copy.Count(), 2u);
  EXPECT_EQ(s.Count(), 1u);
}

TEST(SelectionMemoTest, HammingDistanceCountsXorRows) {
  Selection a(130);
  Selection b(130);
  a.Set(0);
  a.Set(64);
  b.Set(64);
  b.Set(129);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
}

#ifdef GTEST_HAS_DEATH_TEST
#ifndef NDEBUG
// Out-of-range bitmap access is a programming error; the debug build must
// trap it (the release build compiles the check out of the hot loops).
TEST(SelectionDeathTest, OutOfRangeAccessDiesInDebug) {
  Selection s(64);
  EXPECT_DEATH(s.Set(64), "ZIGGY_CHECK failed");
  EXPECT_DEATH((void)s.Contains(64), "ZIGGY_CHECK failed");
  Selection empty;
  EXPECT_DEATH(empty.Set(0), "ZIGGY_CHECK failed");
}
#endif  // !NDEBUG

// Mixing bitmap sizes aborts in every build type (ZIGGY_CHECK, not DCHECK:
// these run once per set operation, not per row).
TEST(SelectionDeathTest, MismatchedSizesDie) {
  Selection a(64);
  Selection b(65);
  EXPECT_DEATH((void)a.And(b), "ZIGGY_CHECK failed");
  EXPECT_DEATH((void)a.HammingDistance(b), "ZIGGY_CHECK failed");
}
#endif  // GTEST_HAS_DEATH_TEST

// ------------------------------------------------------ Table row append --

TEST(TableAppendTest, AppendsRowsAndRemapsDictionaries) {
  auto base = Table::FromColumns(
      {Column::FromNumeric("x", {1.0, 2.0}),
       Column::FromStrings("c", {"red", "blue"})});
  ASSERT_TRUE(base.ok());
  // The tail's dictionary has a different code order plus a new label.
  auto tail = Table::FromColumns(
      {Column::FromNumeric("x", {3.0, 4.0, 5.0}),
       Column::FromStrings("c", {"blue", "green", ""})});
  ASSERT_TRUE(tail.ok());

  auto merged = base->WithAppendedRows(*tail);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_rows(), 5u);
  EXPECT_DOUBLE_EQ(merged->column(0).numeric_data()[4], 5.0);
  const Column& c = merged->column(1);
  EXPECT_EQ(c.cardinality(), 3u);  // red, blue, green
  EXPECT_EQ(c.ValueAsString(1), "blue");
  EXPECT_EQ(c.ValueAsString(2), "blue");  // remapped through labels
  EXPECT_EQ(c.ValueAsString(3), "green");
  EXPECT_TRUE(c.IsNull(4));
  // Base is untouched (immutability contract of the snapshot layer).
  EXPECT_EQ(base->num_rows(), 2u);
  EXPECT_EQ(base->column(1).cardinality(), 2u);
}

TEST(TableAppendTest, RejectsSchemaMismatch) {
  auto base = Table::FromColumns({Column::FromNumeric("x", {1.0})});
  auto wrong_name = Table::FromColumns({Column::FromNumeric("y", {1.0})});
  auto wrong_type = Table::FromColumns({Column::FromStrings("x", {"a"})});
  auto wrong_arity = Table::FromColumns(
      {Column::FromNumeric("x", {1.0}), Column::FromNumeric("y", {1.0})});
  ASSERT_TRUE(base.ok() && wrong_name.ok() && wrong_type.ok() && wrong_arity.ok());
  EXPECT_FALSE(base->WithAppendedRows(*wrong_name).ok());
  EXPECT_FALSE(base->WithAppendedRows(*wrong_type).ok());
  EXPECT_FALSE(base->WithAppendedRows(*wrong_arity).ok());
}

}  // namespace
}  // namespace ziggy
