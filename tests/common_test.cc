// Unit tests for src/common: Status, Result, string utilities, Rng.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace ziggy {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeMismatch("x").IsTypeMismatch());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("no such column: 'foo'");
  EXPECT_EQ(s.ToString(), "NotFound: no such column: 'foo'");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IOError("disk gone");
  Status t = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk gone");
  EXPECT_TRUE(s.IsIOError());  // source unchanged
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::ParseError("bad token");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsParseError());
}

TEST(StatusTest, AssignmentOverwrites) {
  Status s = Status::Internal("a");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
  s = Status::NotFound("b");
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("boom"); };
  auto wrapper = [&]() -> Status {
    ZIGGY_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    ZIGGY_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(wrapper().IsAlreadyExists());
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> r = Status::IOError("x");
  EXPECT_EQ(r.ValueOr(-1), -1);
  Result<int> v = 7;
  EXPECT_EQ(v.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto provider = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("too big");
    return 10;
  };
  auto consumer = [&](bool fail) -> Result<int> {
    ZIGGY_ASSIGN_OR_RETURN(int v, provider(fail));
    return v * 2;
  };
  EXPECT_EQ(consumer(false).ValueOrDie(), 20);
  EXPECT_TRUE(consumer(true).status().IsOutOfRange());
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b  "), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace("\t\nfoo\r\n"), "foo");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, ToLowerAndEqualsIgnoreCase) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringUtilTest, ParseDoubleAccepts) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").ValueOrDie(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 7 ").ValueOrDie(), 7.0);
  EXPECT_DOUBLE_EQ(ParseDouble(".5").ValueOrDie(), 0.5);
}

TEST(StringUtilTest, ParseDoubleRejects) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("--3").ok());
}

TEST(StringUtilTest, ParseIntAcceptsAndRejects) {
  EXPECT_EQ(ParseInt("123").ValueOrDie(), 123);
  EXPECT_EQ(ParseInt("-5").ValueOrDie(), -5);
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12a").ok());
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

// -------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasRoughlyCorrectMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(13);
  auto s = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(13);
  auto s = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ---------------------------------------------------------------- Logging --

TEST(LoggingTest, ThresholdRoundTrips) {
  const LogLevel old_level = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
  Logger::set_threshold(old_level);
}

}  // namespace
}  // namespace ziggy
