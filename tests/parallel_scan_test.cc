// Tests for the columnar blocked scan pipeline: the packed word bitmap
// Selection, the ParallelFor utility, and the equivalence of blocked /
// parallel sketch accumulation with the row-at-a-time reference path.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "common/random.h"
#include "zig/component_builder.h"
#include "zig/profile.h"
#include "zig/selection_sketches.h"

namespace ziggy {
namespace {

// ----------------------------------------------------- packed Selection --

// Word-boundary sizes: one under, exactly one word, one over.
class SelectionWordBoundaryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SelectionWordBoundaryTest, AllCountInvertRoundTrip) {
  const size_t n = GetParam();
  Selection all = Selection::All(n);
  EXPECT_EQ(all.num_rows(), n);
  EXPECT_EQ(all.Count(), n);
  for (size_t r = 0; r < n; ++r) EXPECT_TRUE(all.Contains(r)) << r;

  Selection none = all.Invert();
  EXPECT_EQ(none.Count(), 0u);
  EXPECT_EQ(none.Invert(), all);
  // The tail word's unused bits must stay zero or Count overshoots.
  EXPECT_EQ(none.Invert().Count(), n);
}

TEST_P(SelectionWordBoundaryTest, SetAndOrJaccardAtBoundaries) {
  const size_t n = GetParam();
  Selection a(n);
  Selection b(n);
  a.Set(0);
  a.Set(n - 1);
  b.Set(n - 1);
  EXPECT_EQ(a.Count(), n > 1 ? 2u : 1u);
  EXPECT_EQ(a.And(b).ToIndices(), (std::vector<size_t>{n - 1}));
  EXPECT_EQ(a.Or(b), a);
  if (n > 1) {
    EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.5);
    EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  }
  a.Set(n - 1, false);
  EXPECT_FALSE(a.Contains(n - 1));
}

TEST_P(SelectionWordBoundaryTest, ForEachSetBitVisitsAscending) {
  const size_t n = GetParam();
  std::vector<size_t> expect;
  Selection s(n);
  for (size_t r = 0; r < n; r += 7) {
    s.Set(r);
    expect.push_back(r);
  }
  std::vector<size_t> got;
  s.ForEachSetBit([&got](size_t r) { got.push_back(r); });
  EXPECT_EQ(got, expect);
  EXPECT_EQ(s.ToIndices(), expect);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, SelectionWordBoundaryTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129));

TEST(SelectionTest, CountWordRangePartitionsTotal) {
  Rng rng(5);
  Selection s(1000);
  for (size_t r = 0; r < 1000; ++r) {
    if (rng.Bernoulli(0.3)) s.Set(r);
  }
  size_t total = 0;
  for (size_t w = 0; w < s.num_words(); ++w) total += s.CountWordRange(w, w + 1);
  EXPECT_EQ(total, s.Count());
  EXPECT_EQ(s.CountWordRange(0, s.num_words()), s.Count());
}

TEST(SelectionTest, FromBytesMatchesSets) {
  std::vector<uint8_t> flags = {1, 0, 0, 1, 1, 0};
  Selection s = Selection::FromBytes(flags);
  EXPECT_EQ(s.ToIndices(), (std::vector<size_t>{0, 3, 4}));
}

TEST(SelectionTest, FingerprintSensitiveToLength) {
  // Same (empty) selected set, different row counts: distinct cache keys.
  EXPECT_NE(Selection(63).Fingerprint(), Selection(64).Fingerprint());
}

// ---------------------------------------------------------- ParallelFor --

TEST(ParallelForTest, PartitionIsDeterministicAndComplete) {
  const auto ranges = PartitionTasks(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(ranges[1].end, 7u);
  EXPECT_EQ(ranges[2].end, 10u);
  EXPECT_TRUE(PartitionTasks(0, 4).empty());
  // Never more ranges than tasks.
  EXPECT_EQ(PartitionTasks(2, 8).size(), 2u);
}

TEST(ParallelForTest, EveryTaskRunsExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelForEach(threads, hits.size(), [&hits](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
  }
}

TEST(ParallelForTest, EffectiveThreadsResolvesZero) {
  EXPECT_GE(EffectiveThreads(0), 1u);
  EXPECT_EQ(EffectiveThreads(3), 3u);
}

// ------------------------------------- blocked / parallel accumulation --

struct Fixture {
  Table table;
  TableProfile profile;
};

// A table exercising every sketch family: correlated numerics (tracked
// numeric pair), a categorical driving grouped moments and a contingency
// table with a second categorical, NULLs in both kinds.
Fixture MakeFixture(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<std::string> cat_a(n);
  std::vector<std::string> cat_b(n);
  for (size_t i = 0; i < n; ++i) {
    const double f = rng.Normal();
    x[i] = rng.Bernoulli(0.02) ? NullNumeric() : f + 0.3 * rng.Normal();
    y[i] = rng.Bernoulli(0.02) ? NullNumeric() : f + 0.3 * rng.Normal();
    const int g = rng.UniformInt(0, 3);
    cat_a[i] = rng.Bernoulli(0.02) ? "" : "a" + std::to_string(g);
    cat_b[i] = rng.Bernoulli(0.02) ? "" : "b" + std::to_string((g + rng.UniformInt(0, 1)) % 4);
  }
  Table t = Table::FromColumns({Column::FromNumeric("x", x),
                                Column::FromNumeric("y", y),
                                Column::FromStrings("ca", cat_a),
                                Column::FromStrings("cb", cat_b)})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  return {std::move(t), std::move(p)};
}

Selection MakeSelection(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  Selection s(n);
  for (size_t r = 0; r < n; ++r) {
    if (rng.Bernoulli(density)) s.Set(r);
  }
  return s;
}

// Row-at-a-time reference: the exact accumulation the seed engine did.
SelectionSketches ReferenceSketches(const Fixture& fx, const Selection& sel) {
  SelectionSketches ref;
  ref.InitShapes(fx.table, fx.profile);
  for (size_t r = 0; r < fx.table.num_rows(); ++r) {
    if (sel.Contains(r)) ref.AddRow(fx.table, fx.profile, r);
  }
  return ref;
}

void ExpectSketchesEqual(const Fixture& fx, const SelectionSketches& a,
                         const SelectionSketches& b, bool bit_identical) {
  const double tol = bit_identical ? 0.0 : 1e-9;
  auto near = [tol](double u, double v) {
    if (tol == 0.0) return u == v;
    return std::fabs(u - v) <= tol * std::max({1.0, std::fabs(u), std::fabs(v)});
  };
  for (size_t c = 0; c < fx.table.num_columns(); ++c) {
    EXPECT_EQ(a.column_sketch(c).count, b.column_sketch(c).count) << "col " << c;
    EXPECT_TRUE(near(a.column_sketch(c).sum, b.column_sketch(c).sum)) << "col " << c;
    EXPECT_TRUE(near(a.column_sketch(c).sum_sq, b.column_sketch(c).sum_sq))
        << "col " << c;
    // Integer statistics must be exact regardless of threading.
    EXPECT_EQ(a.category_counts(c), b.category_counts(c)) << "col " << c;
    EXPECT_EQ(a.histogram(c), b.histogram(c)) << "col " << c;
  }
  for (size_t i = 0; i < fx.profile.tracked_numeric_pairs().size(); ++i) {
    const auto& pa = a.numeric_pair_sketch(i);
    const auto& pb = b.numeric_pair_sketch(i);
    EXPECT_EQ(pa.count, pb.count);
    EXPECT_TRUE(near(pa.sum_x, pb.sum_x));
    EXPECT_TRUE(near(pa.sum_y, pb.sum_y));
    EXPECT_TRUE(near(pa.sum_xx, pb.sum_xx));
    EXPECT_TRUE(near(pa.sum_yy, pb.sum_yy));
    EXPECT_TRUE(near(pa.sum_xy, pb.sum_xy));
  }
  for (size_t i = 0; i < fx.profile.tracked_mixed_pairs().size(); ++i) {
    const auto& ga = a.mixed_pair_groups(i);
    const auto& gb = b.mixed_pair_groups(i);
    ASSERT_EQ(ga.size(), gb.size());
    for (size_t g = 0; g < ga.size(); ++g) {
      EXPECT_EQ(ga[g].count, gb[g].count);
      EXPECT_TRUE(near(ga[g].sum, gb[g].sum));
      EXPECT_TRUE(near(ga[g].sum_sq, gb[g].sum_sq));
    }
  }
  for (size_t i = 0; i < fx.profile.tracked_categorical_pairs().size(); ++i) {
    EXPECT_EQ(a.categorical_pair_table(i), b.categorical_pair_table(i));
  }
}

TEST(ColumnarAccumulationTest, SingleThreadBitIdenticalAcrossDensities) {
  const Fixture fx = MakeFixture(2500, 11);
  // Densities from the spec: empty, sparse, balanced, near-full.
  for (double density : {0.0, 0.01, 0.5, 0.99}) {
    const Selection sel = MakeSelection(fx.table.num_rows(), density, 23);
    const SelectionSketches ref = ReferenceSketches(fx, sel);
    SelectionSketches columnar;
    columnar.InitShapes(fx.table, fx.profile);
    columnar.AccumulateColumns(fx.table, fx.profile, sel);
    ExpectSketchesEqual(fx, ref, columnar, /*bit_identical=*/true);
  }
}

TEST(ColumnarAccumulationTest, BlockSizeDoesNotChangeResults) {
  const Fixture fx = MakeFixture(1500, 13);
  const Selection sel = MakeSelection(fx.table.num_rows(), 0.4, 29);
  const SelectionSketches ref = ReferenceSketches(fx, sel);
  for (size_t block_rows : {64u, 128u, 1000u, 1u << 20}) {
    SelectionSketches columnar;
    columnar.InitShapes(fx.table, fx.profile);
    columnar.AccumulateColumns(fx.table, fx.profile, sel, block_rows);
    ExpectSketchesEqual(fx, ref, columnar, /*bit_identical=*/true);
  }
}

TEST(ColumnarAccumulationTest, ParallelMatchesReferenceAcrossThreadCounts) {
  const Fixture fx = MakeFixture(3000, 17);
  for (double density : {0.0, 0.01, 0.5, 0.99}) {
    const Selection sel = MakeSelection(fx.table.num_rows(), density, 31);
    const SelectionSketches ref = ReferenceSketches(fx, sel);
    for (size_t threads : {1u, 2u, 4u}) {
      const SelectionSketches built =
          SelectionSketches::Build(fx.table, fx.profile, sel, threads);
      // threads == 1 reproduces the sequential path exactly; merged
      // partials may differ in the last ULPs of floating-point sums.
      ExpectSketchesEqual(fx, ref, built, /*bit_identical=*/threads == 1);
    }
  }
}

TEST(ColumnarAccumulationTest, MergeOfDisjointRangesEqualsWholeScan) {
  const Fixture fx = MakeFixture(1000, 19);
  const Selection sel = MakeSelection(fx.table.num_rows(), 0.5, 37);
  SelectionSketches whole;
  whole.InitShapes(fx.table, fx.profile);
  whole.AccumulateColumns(fx.table, fx.profile, sel);

  const size_t half = sel.num_words() / 2;
  SelectionSketches lo;
  lo.InitShapes(fx.table, fx.profile);
  lo.AccumulateWordRange(fx.table, fx.profile, sel, 0, half);
  SelectionSketches hi;
  hi.InitShapes(fx.table, fx.profile);
  hi.AccumulateWordRange(fx.table, fx.profile, sel, half, sel.num_words());
  lo.Merge(hi);
  // Counts are disjoint sums; verify a few representative fields exactly.
  EXPECT_EQ(lo.column_sketch(0).count, whole.column_sketch(0).count);
  EXPECT_EQ(lo.category_counts(2), whole.category_counts(2));
  EXPECT_NEAR(lo.column_sketch(0).sum, whole.column_sketch(0).sum, 1e-9);
}

TEST(ColumnarAccumulationTest, ComponentTablesEquivalentAcrossThreadCounts) {
  const Fixture fx = MakeFixture(2000, 21);
  const Selection sel = MakeSelection(fx.table.num_rows(), 0.25, 41);
  ComponentBuildOptions opts;
  const ComponentTable base =
      BuildComponents(fx.table, fx.profile, sel, opts).ValueOrDie();
  for (size_t threads : {2u, 4u}) {
    ComponentBuildOptions topts = opts;
    topts.num_threads = threads;
    const ComponentTable parallel =
        BuildComponents(fx.table, fx.profile, sel, topts).ValueOrDie();
    ASSERT_EQ(base.components().size(), parallel.components().size());
    for (size_t i = 0; i < base.components().size(); ++i) {
      const ZigComponent& cb = base.components()[i];
      const ZigComponent& cp = parallel.components()[i];
      EXPECT_EQ(cb.kind, cp.kind);
      EXPECT_EQ(cb.col_a, cp.col_a);
      EXPECT_EQ(cb.col_b, cp.col_b);
      EXPECT_NEAR(cb.inside_value, cp.inside_value, 1e-9);
      EXPECT_NEAR(cb.outside_value, cp.outside_value, 1e-9);
      EXPECT_EQ(cb.inside_n, cp.inside_n);
      EXPECT_EQ(cb.outside_n, cp.outside_n);
    }
  }
}

TEST(ColumnarAccumulationTest, TwoScanModeUsesColumnarPathAndAgrees) {
  const Fixture fx = MakeFixture(1200, 43);
  const Selection sel = MakeSelection(fx.table.num_rows(), 0.3, 47);
  ComponentBuildOptions shared;
  ComponentBuildOptions two_scan;
  two_scan.mode = PreparationMode::kTwoScan;
  two_scan.num_threads = 2;
  const ComponentTable a =
      BuildComponents(fx.table, fx.profile, sel, shared).ValueOrDie();
  const ComponentTable b =
      BuildComponents(fx.table, fx.profile, sel, two_scan).ValueOrDie();
  ASSERT_EQ(a.components().size(), b.components().size());
  for (size_t i = 0; i < a.components().size(); ++i) {
    EXPECT_NEAR(a.components()[i].inside_value, b.components()[i].inside_value, 1e-7);
    EXPECT_NEAR(a.components()[i].outside_value, b.components()[i].outside_value,
                1e-7);
  }
}

TEST(ColumnarAccumulationTest, ProfileIndependentOfThreadCount) {
  const Fixture fx = MakeFixture(800, 51);
  ProfileOptions po;
  po.num_threads = 4;
  const TableProfile threaded = TableProfile::Compute(fx.table, po).ValueOrDie();
  EXPECT_TRUE(fx.profile.Equals(threaded));
}

}  // namespace
}  // namespace ziggy
