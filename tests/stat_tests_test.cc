// Unit tests for stats/tests.h: two-sample tests and p-value aggregation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/tests.h"

namespace ziggy {
namespace {

NumericStats SampledNormal(Rng* rng, int n, double mean, double sd) {
  NumericStats s;
  for (int i = 0; i < n; ++i) s.Add(rng->Normal(mean, sd));
  return s;
}

// ----------------------------------------------------------------- Welch --

TEST(WelchTTestTest, DetectsMeanShift) {
  Rng rng(1);
  NumericStats a = SampledNormal(&rng, 300, 1.0, 1.0);
  NumericStats b = SampledNormal(&rng, 300, 0.0, 1.0);
  TestResult r = WelchTTest(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_GT(r.statistic, 5.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(WelchTTestTest, NullCaseIsCalibrated) {
  // Under H0, p-values should be roughly uniform: check the rejection rate
  // at alpha = 0.1 over repeated draws.
  Rng rng(2);
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    NumericStats a = SampledNormal(&rng, 50, 0.0, 1.0);
    NumericStats b = SampledNormal(&rng, 50, 0.0, 1.0);
    if (WelchTTest(a, b).p_value < 0.1) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_NEAR(rate, 0.1, 0.05);
}

TEST(WelchTTestTest, UnequalVariancesHandled) {
  Rng rng(3);
  NumericStats a = SampledNormal(&rng, 100, 0.5, 5.0);
  NumericStats b = SampledNormal(&rng, 2000, 0.0, 0.1);
  TestResult r = WelchTTest(a, b);
  ASSERT_TRUE(r.defined);
  // Welch dof must be far below the pooled dof (dominated by the small
  // high-variance sample).
  EXPECT_LT(r.dof, 150.0);
}

TEST(WelchTTestTest, UndefinedOnTinySamples) {
  NumericStats a;
  a.Add(1.0);
  NumericStats c;
  c.Add(1.0);
  c.Add(2.0);
  EXPECT_FALSE(WelchTTest(a, c).defined);
  EXPECT_FALSE(WelchTTest(c, a).defined);
}

TEST(WelchTTestTest, PointMassDistributions) {
  NumericStats a;
  NumericStats b;
  for (int i = 0; i < 5; ++i) {
    a.Add(2.0);
    b.Add(2.0);
  }
  TestResult same = WelchTTest(a, b);
  ASSERT_TRUE(same.defined);
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
  NumericStats c;
  for (int i = 0; i < 5; ++i) c.Add(3.0);
  TestResult diff = WelchTTest(a, c);
  EXPECT_DOUBLE_EQ(diff.p_value, 0.0);
}

// --------------------------------------------------------------- F test ----

TEST(VarianceFTestTest, DetectsVarianceRatio) {
  Rng rng(5);
  NumericStats a = SampledNormal(&rng, 400, 0.0, 3.0);
  NumericStats b = SampledNormal(&rng, 400, 0.0, 1.0);
  TestResult r = VarianceFTest(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_NEAR(r.statistic, 9.0, 1.5);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(VarianceFTestTest, EqualVariancesNotRejected) {
  Rng rng(6);
  NumericStats a = SampledNormal(&rng, 500, 0.0, 2.0);
  NumericStats b = SampledNormal(&rng, 500, 10.0, 2.0);
  EXPECT_GT(VarianceFTest(a, b).p_value, 0.01);
}

TEST(VarianceFTestTest, TwoSidedSymmetry) {
  Rng rng(7);
  NumericStats a = SampledNormal(&rng, 200, 0.0, 2.0);
  NumericStats b = SampledNormal(&rng, 300, 0.0, 1.0);
  const double p_ab = VarianceFTest(a, b).p_value;
  const double p_ba = VarianceFTest(b, a).p_value;
  EXPECT_NEAR(p_ab, p_ba, 1e-10);
}

TEST(VarianceFTestTest, ZeroVarianceEdge) {
  NumericStats a;
  NumericStats b;
  for (int i = 0; i < 4; ++i) {
    a.Add(1.0);
    b.Add(static_cast<double>(i));
  }
  TestResult r = VarianceFTest(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

// ---------------------------------------------------------- correlation z --

TEST(CorrelationZTestTest, DetectsDifference) {
  TestResult r = CorrelationZTest(0.9, 200, 0.1, 200);
  ASSERT_TRUE(r.defined);
  EXPECT_LT(r.p_value, 1e-10);
  EXPECT_GT(r.statistic, 6.0);
}

TEST(CorrelationZTestTest, UndefinedOnTinySamples) {
  EXPECT_FALSE(CorrelationZTest(0.9, 2, 0.1, 200).defined);
}

// ------------------------------------------------------------- chi-square --

TEST(ChiSquareHomogeneityTest_, IdenticalProportionsNotRejected) {
  std::vector<int64_t> a{100, 200, 300};
  std::vector<int64_t> b{200, 400, 600};  // same proportions, twice the mass
  TestResult r = ChiSquareHomogeneityTest(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.dof, 2.0);
}

TEST(ChiSquareHomogeneityTest_, ShiftedProportionsRejected) {
  std::vector<int64_t> a{900, 50, 50};
  std::vector<int64_t> b{100, 450, 450};
  TestResult r = ChiSquareHomogeneityTest(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_LT(r.p_value, 1e-12);
}

TEST(ChiSquareHomogeneityTest_, EmptyCategoriesDropped) {
  std::vector<int64_t> a{10, 0, 20};
  std::vector<int64_t> b{12, 0, 18};
  TestResult r = ChiSquareHomogeneityTest(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_DOUBLE_EQ(r.dof, 1.0);  // only two live categories
}

TEST(ChiSquareHomogeneityTest_, DegenerateInputsUndefined) {
  EXPECT_FALSE(ChiSquareHomogeneityTest({}, {}).defined);
  EXPECT_FALSE(ChiSquareHomogeneityTest({5, 5}, {0, 0}).defined);
  EXPECT_FALSE(ChiSquareHomogeneityTest({1, 2}, {1, 2, 3}).defined);
  // Single live category: no dof.
  EXPECT_FALSE(ChiSquareHomogeneityTest({5, 0}, {7, 0}).defined);
}

// ------------------------------------------------------------ aggregation --

TEST(AggregatePValuesTest, MinimumMethod) {
  EXPECT_DOUBLE_EQ(
      AggregatePValues({0.2, 0.01, 0.5}, CorrectionMethod::kMinimum), 0.01);
}

TEST(AggregatePValuesTest, BonferroniScalesByCount) {
  EXPECT_DOUBLE_EQ(
      AggregatePValues({0.01, 0.5, 0.7}, CorrectionMethod::kBonferroni), 0.03);
  // Capped at 1.
  EXPECT_DOUBLE_EQ(AggregatePValues({0.6, 0.9}, CorrectionMethod::kBonferroni), 1.0);
}

TEST(AggregatePValuesTest, SidakBetweenMinAndBonferroni) {
  const std::vector<double> ps{0.02, 0.3, 0.8, 0.9};
  const double p_min = AggregatePValues(ps, CorrectionMethod::kMinimum);
  const double p_sidak = AggregatePValues(ps, CorrectionMethod::kSidak);
  const double p_bonf = AggregatePValues(ps, CorrectionMethod::kBonferroni);
  EXPECT_LE(p_min, p_sidak);
  EXPECT_LE(p_sidak, p_bonf + 1e-12);
}

TEST(AggregatePValuesTest, FisherCombinesIndependentEvidence) {
  // Many moderately small p-values: Fisher aggregates them into a much
  // smaller combined p than any single one.
  const std::vector<double> ps(10, 0.05);
  const double fisher = AggregatePValues(ps, CorrectionMethod::kFisher);
  EXPECT_LT(fisher, 0.001);
  // A single p of 0.05 stays 0.05 under Fisher (chi2(2) tail at -2 ln .05).
  EXPECT_NEAR(AggregatePValues({0.05}, CorrectionMethod::kFisher), 0.05, 1e-10);
}

TEST(AggregatePValuesTest, FisherNullIsNeutral) {
  // All p = 0.5: combined evidence should stay unremarkable.
  const std::vector<double> ps(8, 0.5);
  const double fisher = AggregatePValues(ps, CorrectionMethod::kFisher);
  EXPECT_GT(fisher, 0.2);
  EXPECT_LT(fisher, 0.9);
}

TEST(AggregatePValuesTest, StoufferRewardsConsensus) {
  // Ten p = 0.1 agree: Stouffer's combined p is far below 0.1, while the
  // Bonferroni-style schemes (driven by the minimum) go the other way.
  const std::vector<double> ps(10, 0.1);
  const double stouffer = AggregatePValues(ps, CorrectionMethod::kStouffer);
  EXPECT_LT(stouffer, 0.001);
  EXPECT_GE(AggregatePValues(ps, CorrectionMethod::kBonferroni), 0.99);
}

TEST(AggregatePValuesTest, StoufferSingleIsIdentity) {
  EXPECT_NEAR(AggregatePValues({0.07}, CorrectionMethod::kStouffer), 0.07, 1e-9);
}

TEST(AggregatePValuesTest, StoufferHandlesExtremes) {
  const double p = AggregatePValues({0.0, 1.0}, CorrectionMethod::kStouffer);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(AggregatePValuesTest, EmptyIsOne) {
  EXPECT_DOUBLE_EQ(AggregatePValues({}, CorrectionMethod::kBonferroni), 1.0);
}

TEST(AggregatePValuesTest, SingleTestUnchanged) {
  for (auto m : {CorrectionMethod::kMinimum, CorrectionMethod::kBonferroni,
                 CorrectionMethod::kSidak}) {
    EXPECT_NEAR(AggregatePValues({0.04}, m), 0.04, 1e-12);
  }
}

TEST(BonferroniAdjustTest, InPlaceAdjustment) {
  std::vector<double> ps{0.01, 0.04, 0.5};
  BonferroniAdjust(&ps);
  EXPECT_DOUBLE_EQ(ps[0], 0.03);
  EXPECT_DOUBLE_EQ(ps[1], 0.12);
  EXPECT_DOUBLE_EQ(ps[2], 1.0);
}

}  // namespace
}  // namespace ziggy
