// Negative-compile probe: this translation unit MUST fail to compile under
// clang with -Werror=thread-safety-analysis. CMake's try_compile runs it
// (clang builds only) and errors out if it ever starts compiling — i.e. if
// the ZIGGY_REQUIRES enforcement rots. See requires_ok.cc for the positive
// control that keeps the probe honest.

#include "common/sync.h"

namespace {

class Guarded {
 public:
  Guarded() : mu_(ziggy::LockRank::kCatalog, "probe.mu_") {}

  int Read() {
    return ReadLocked();  // BUG (on purpose): caller does not hold mu_
  }

 private:
  int ReadLocked() ZIGGY_REQUIRES(mu_) { return value_; }

  ziggy::Mutex mu_;
  int value_ ZIGGY_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.Read();
}
