// Positive control for the negative-compile probe: identical shape to
// requires_violation.cc but with the lock correctly held. This TU MUST
// compile; if it doesn't, the probe is failing for some unrelated reason
// (broken include path, flag typo) and its "expected failure" result would
// be meaningless.

#include "common/sync.h"

namespace {

class Guarded {
 public:
  Guarded() : mu_(ziggy::LockRank::kCatalog, "probe.mu_") {}

  int Read() {
    ziggy::MutexLock lock(mu_);
    return ReadLocked();
  }

 private:
  int ReadLocked() ZIGGY_REQUIRES(mu_) { return value_; }

  ziggy::Mutex mu_;
  int value_ ZIGGY_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.Read();
}
