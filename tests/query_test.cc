// Unit tests for the query engine: lexer/parser (query/parser.h) and
// predicate evaluation (query/ast.h).

#include <gtest/gtest.h>

#include "query/parser.h"
#include "storage/table.h"

namespace ziggy {
namespace {

Table MakeTable() {
  auto r = Table::FromColumns(
      {Column::FromNumeric("age", {10, 20, 30, 40, NullNumeric()}),
       Column::FromNumeric("score", {1.5, 2.5, 3.5, 4.5, 5.5}),
       Column::FromStrings("state", {"CA", "NY", "CA", "TX", ""})});
  return std::move(r).ValueOrDie();
}

std::vector<size_t> Eval(const std::string& predicate) {
  Table t = MakeTable();
  ExprPtr e = ParsePredicate(predicate).ValueOrDie();
  return e->Evaluate(t).ValueOrDie().ToIndices();
}

// ------------------------------------------------------------ comparisons --

TEST(QueryEvalTest, NumericComparisons) {
  EXPECT_EQ(Eval("age > 20"), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(Eval("age >= 20"), (std::vector<size_t>{1, 2, 3}));
  EXPECT_EQ(Eval("age < 20"), (std::vector<size_t>{0}));
  EXPECT_EQ(Eval("age <= 20"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(Eval("age = 30"), (std::vector<size_t>{2}));
  EXPECT_EQ(Eval("age != 30"), (std::vector<size_t>{0, 1, 3}));
}

TEST(QueryEvalTest, EqualityOperatorSpellings) {
  EXPECT_EQ(Eval("age == 30"), (std::vector<size_t>{2}));
  EXPECT_EQ(Eval("age <> 30"), (std::vector<size_t>{0, 1, 3}));
}

TEST(QueryEvalTest, NullNeverMatchesComparison) {
  // Row 4 has NULL age: it must not appear on either side.
  EXPECT_EQ(Eval("age > 0"), (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(Eval("age != 999"), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(QueryEvalTest, CategoricalEquality) {
  EXPECT_EQ(Eval("state = 'CA'"), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(Eval("state != 'CA'"), (std::vector<size_t>{1, 3}));  // NULL excluded
}

TEST(QueryEvalTest, CategoricalUnknownLabelMatchesNothing) {
  EXPECT_EQ(Eval("state = 'ZZ'"), (std::vector<size_t>{}));
  // ... but != unknown label matches all non-null rows.
  EXPECT_EQ(Eval("state != 'ZZ'"), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(QueryEvalTest, BareWordCategoricalLiteral) {
  EXPECT_EQ(Eval("state = CA"), (std::vector<size_t>{0, 2}));
}

TEST(QueryEvalTest, OrderingOnCategoricalIsError) {
  Table t = MakeTable();
  ExprPtr e = ParsePredicate("state > 'CA'").ValueOrDie();
  EXPECT_TRUE(e->Evaluate(t).status().IsInvalidArgument());
}

TEST(QueryEvalTest, TypeMismatchLiteralIsError) {
  Table t = MakeTable();
  EXPECT_TRUE(ParsePredicate("age = 'ten'")
                  .ValueOrDie()
                  ->Evaluate(t)
                  .status()
                  .IsTypeMismatch());
  EXPECT_TRUE(ParsePredicate("state = 5")
                  .ValueOrDie()
                  ->Evaluate(t)
                  .status()
                  .IsTypeMismatch());
}

TEST(QueryEvalTest, UnknownColumnIsNotFound) {
  Table t = MakeTable();
  EXPECT_TRUE(
      ParsePredicate("bogus = 1").ValueOrDie()->Evaluate(t).status().IsNotFound());
}

// -------------------------------------------------------- BETWEEN / IN / IS --

TEST(QueryEvalTest, BetweenInclusive) {
  EXPECT_EQ(Eval("age BETWEEN 20 AND 30"), (std::vector<size_t>{1, 2}));
}

TEST(QueryEvalTest, BetweenOnCategoricalIsTypeError) {
  Table t = MakeTable();
  EXPECT_TRUE(ParsePredicate("state BETWEEN 1 AND 2")
                  .ValueOrDie()
                  ->Evaluate(t)
                  .status()
                  .IsTypeMismatch());
}

TEST(QueryEvalTest, InListCategorical) {
  EXPECT_EQ(Eval("state IN ('CA', 'TX')"), (std::vector<size_t>{0, 2, 3}));
}

TEST(QueryEvalTest, InListNumeric) {
  EXPECT_EQ(Eval("age IN (10, 40)"), (std::vector<size_t>{0, 3}));
}

TEST(QueryEvalTest, IsNullAndIsNotNull) {
  EXPECT_EQ(Eval("age IS NULL"), (std::vector<size_t>{4}));
  EXPECT_EQ(Eval("age IS NOT NULL"), (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(Eval("state IS NULL"), (std::vector<size_t>{4}));
}

// ------------------------------------------------------------ boolean ops --

TEST(QueryEvalTest, AndOrNot) {
  EXPECT_EQ(Eval("age > 10 AND age < 40"), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(Eval("age = 10 OR age = 40"), (std::vector<size_t>{0, 3}));
  EXPECT_EQ(Eval("NOT age > 20"), (std::vector<size_t>{0, 1, 4}));  // two-valued NOT
}

TEST(QueryEvalTest, PrecedenceAndParentheses) {
  // AND binds tighter than OR.
  EXPECT_EQ(Eval("age = 10 OR age = 20 AND score > 2"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(Eval("(age = 10 OR age = 20) AND score > 2"), (std::vector<size_t>{1}));
}

TEST(QueryEvalTest, CaseInsensitiveKeywords) {
  EXPECT_EQ(Eval("age between 20 and 30"), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(Eval("state in ('CA')"), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(Eval("not age > 20 and age is not null"), (std::vector<size_t>{0, 1}));
}

TEST(QueryEvalTest, MultiColumnConjunction) {
  EXPECT_EQ(Eval("state = 'CA' AND score < 2"), (std::vector<size_t>{0}));
}

// ------------------------------------------------------------- full query --

TEST(QueryParseTest, SelectWherePrefixIsAccepted) {
  Table t = MakeTable();
  ExprPtr e =
      ParseQuery("SELECT * FROM people WHERE age >= 30 AND state = 'CA'").ValueOrDie();
  EXPECT_EQ(e->Evaluate(t).ValueOrDie().ToIndices(), (std::vector<size_t>{2}));
}

TEST(QueryParseTest, SelectColumnListPrefixIsSkipped) {
  Table t = MakeTable();
  ExprPtr e = ParseQuery("SELECT age, score FROM t WHERE age = 10").ValueOrDie();
  EXPECT_EQ(e->Evaluate(t).ValueOrDie().Count(), 1u);
}

TEST(QueryParseTest, SelectWithoutWhereIsInvalid) {
  auto r = ParseQuery("SELECT * FROM people");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(QueryParseTest, BarePredicateThroughParseQuery) {
  Table t = MakeTable();
  ExprPtr e = ParseQuery("age = 20").ValueOrDie();
  EXPECT_EQ(e->Evaluate(t).ValueOrDie().Count(), 1u);
}

// ------------------------------------------------------------ parse errors --

TEST(QueryParseTest, SyntaxErrors) {
  EXPECT_TRUE(ParsePredicate("age >").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("age 5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("(age = 5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("age = 5 extra junk").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("age BETWEEN 'a' AND 5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("age IN 5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("age IN (5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("age IS 5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("state = 'unterminated").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("age === 5").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("").status().IsParseError());
}

TEST(QueryParseTest, NumberFormats) {
  EXPECT_EQ(Eval("score >= 4.5"), (std::vector<size_t>{3, 4}));
  EXPECT_EQ(Eval("score >= 4.5e0"), (std::vector<size_t>{3, 4}));
  EXPECT_EQ(Eval("age > -1e2"), (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(Eval("score >= .5 AND score <= 2.0"), (std::vector<size_t>{0}));
}

// --------------------------------------------------------------- ToString --

TEST(QueryAstTest, ToStringRoundTripsThroughParser) {
  Table t = MakeTable();
  const std::vector<std::string> predicates = {
      "age > 20 AND state = 'CA'",
      "NOT (age BETWEEN 10 AND 20)",
      "state IN ('CA', 'NY') OR score <= 2",
      "age IS NOT NULL AND score IS NULL",
  };
  for (const auto& p : predicates) {
    ExprPtr e1 = ParsePredicate(p).ValueOrDie();
    const std::string rendered = e1->ToString();
    ExprPtr e2 = ParsePredicate(rendered).ValueOrDie();
    EXPECT_EQ(e1->Evaluate(t).ValueOrDie().ToIndices(),
              e2->Evaluate(t).ValueOrDie().ToIndices())
        << "predicate: " << p << " rendered: " << rendered;
  }
}

}  // namespace
}  // namespace ziggy
