// The binary columnar table codec (storage/table_io.h): exact round
// trips — including NaN NULLs bit-for-bit and dictionary order verbatim —
// and the corruption guarantees the store's durability rests on: any
// truncation, bit flip, or wrong magic yields a clean Status, never a
// crash or a silently different table.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/binary_io.h"
#include "common/checksum.h"
#include "data/synthetic.h"
#include "storage/csv.h"
#include "storage/table_io.h"

namespace ziggy {
namespace {

Table MakeMixedTable() {
  std::vector<Column> columns;
  columns.push_back(Column::FromNumeric(
      "num", {1.5, -2.25, NullNumeric(), 0.0, 1e300, -0.0}));
  columns.push_back(
      Column::FromStrings("cat", {"red", "", "blue", "red", "green", "blue"}));
  columns.push_back(Column::FromNumeric(
      "num2", {0.1, 0.2, 0.3, 0.4, 0.5, std::nextafter(1.0, 2.0)}));
  return Table::FromColumns(std::move(columns)).ValueOrDie();
}

std::string SerializeToString(const Table& table) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(WriteTable(table, &out).ok());
  return out.str();
}

Result<Table> DeserializeFromString(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return ReadTable(&in);
}

/// Bitwise equality: schema, numeric payloads (NaN included), dictionary
/// order, and codes must all survive verbatim.
void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema(), b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    if (ca.is_numeric()) {
      const auto& va = ca.numeric_data();
      const auto& vb = cb.numeric_data();
      ASSERT_EQ(va.size(), vb.size());
      if (!va.empty()) {
        EXPECT_EQ(std::memcmp(va.data(), vb.data(), sizeof(double) * va.size()),
                  0)
            << "numeric payload of column " << ca.name() << " differs";
      }
    } else {
      EXPECT_EQ(ca.dictionary(), cb.dictionary());
      EXPECT_EQ(ca.codes(), cb.codes());
    }
  }
}

TEST(TableIoTest, MixedTableRoundTripsBitIdentical) {
  const Table original = MakeMixedTable();
  const std::string bytes = SerializeToString(original);
  Result<Table> restored = DeserializeFromString(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(original, *restored);
}

TEST(TableIoTest, SyntheticDatasetRoundTripsBitIdentical) {
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  const std::string bytes = SerializeToString(ds.table);
  Result<Table> restored = DeserializeFromString(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(ds.table, *restored);
}

TEST(TableIoTest, ReserializingRestoredTableIsByteIdentical) {
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  const std::string bytes = SerializeToString(ds.table);
  Table restored = DeserializeFromString(bytes).ValueOrDie();
  EXPECT_EQ(SerializeToString(restored), bytes);
}

TEST(TableIoTest, FilteredTableKeepsFullDictionary) {
  // Filter drops rows but keeps the dictionary: the codec must accept
  // dictionaries larger than the row count.
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  Selection few(ds.table.num_rows());
  few.Set(0);
  few.Set(1);
  const Table filtered = ds.table.Filter(few);
  const std::string bytes = SerializeToString(filtered);
  Result<Table> restored = DeserializeFromString(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(filtered, *restored);
}

TEST(TableIoTest, FileRoundTrip) {
  const Table original = MakeMixedTable();
  const std::string path = testing::TempDir() + "/ziggy_table_io_test.ztbl";
  ASSERT_TRUE(WriteTableFile(original, path).ok());
  Result<Table> restored = ReadTableFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(original, *restored);
  std::remove(path.c_str());
}

TEST(TableIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadTableFile("/nonexistent/dir/t.ztbl").status().IsIOError());
}

// ---------------------------------------------------------- corruption ----

TEST(TableIoTest, WrongMagicRejected) {
  std::string bytes = SerializeToString(MakeMixedTable());
  bytes[0] = 'X';
  EXPECT_TRUE(DeserializeFromString(bytes).status().IsParseError());
  EXPECT_FALSE(DeserializeFromString("short").ok());
  EXPECT_FALSE(DeserializeFromString("ZIGPROF2-not-a-table").ok());
}

// Truncation / bit-flip / splice corruption of full images and deltas is
// covered exhaustively — for BOTH format versions — by the shared
// torture harness in codec_torture_test.cc.

TEST(TableIoTest, TrailingGarbageAfterValidImageIsIgnored) {
  // The codec reads exactly its own sections; bytes past the last column
  // are another file's business (concatenated store streams).
  const Table original = MakeMixedTable();
  std::string bytes = SerializeToString(original);
  bytes += "trailing-garbage";
  Result<Table> restored = DeserializeFromString(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(original, *restored);
}

// --------------------------------------------------- compressed (v2) ----

std::string SerializeCompressed(const Table& table) {
  std::ostringstream out(std::ios::binary);
  TableWriteOptions options;
  options.compress = true;
  EXPECT_TRUE(WriteTable(table, &out, options).ok());
  return out.str();
}

TEST(TableIoV2Test, CompressedRoundTripsBitIdentical) {
  const Table original = MakeMixedTable();
  const std::string bytes = SerializeCompressed(original);
  EXPECT_EQ(bytes.compare(0, 8, kTableMagicV2, 8), 0);
  Result<Table> restored = DeserializeFromString(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(original, *restored);
}

TEST(TableIoV2Test, SyntheticDatasetRoundTripsBitIdentical) {
  // Full-precision draws (the worst case for every codec: raw/lz only).
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  Result<Table> restored = DeserializeFromString(SerializeCompressed(ds.table));
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(ds.table, *restored);
}

TEST(TableIoV2Test, QuantizedDatasetCompressesAndRoundTrips) {
  // Fixed-precision values (real data's shape) must engage the integer
  // codecs: a measurable win over v1, and still bit-for-bit on restore.
  SyntheticDataset ds =
      MakeCrimeDataset(11, /*value_decimals=*/3).ValueOrDie();
  const std::string v1 = SerializeToString(ds.table);
  const std::string v2 = SerializeCompressed(ds.table);
  EXPECT_LT(v2.size() * 2, v1.size())
      << "compressed image is not at least 2x smaller: " << v2.size()
      << " vs " << v1.size();
  Result<Table> restored = DeserializeFromString(v2);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectTablesBitIdentical(ds.table, *restored);
  // And the uncompressed re-serialization of the restored table matches
  // the original's exactly — compression is invisible downstream.
  EXPECT_EQ(SerializeToString(*restored), v1);
}

TEST(TableIoV2Test, UncompressedByteSizeFormulaIsExact) {
  for (const Table& table :
       {MakeMixedTable(), MakeBoxOfficeDataset(7).ValueOrDie().table}) {
    EXPECT_EQ(UncompressedTableBytes(table), SerializeToString(table).size());
  }
}

// ------------------------------------------------------ delta segments ----

/// The live append the delta codec snapshots: base + tail through
/// WithAppendedRows (the serving layer's generation builder).
Table MakeAppendTail() {
  std::vector<Column> columns;
  columns.push_back(Column::FromNumeric(
      "num", {9.75, NullNumeric(), -3.5}));
  // Mix of base-dictionary labels, NEW labels, and a NULL.
  columns.push_back(Column::FromStrings("cat", {"violet", "red", ""}));
  columns.push_back(Column::FromNumeric("num2", {0.6, -0.0, 7e-200}));
  return Table::FromColumns(std::move(columns)).ValueOrDie();
}

std::vector<size_t> DictSizesOf(const Table& table) {
  std::vector<size_t> sizes(table.num_columns(), 0);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).is_categorical()) {
      sizes[c] = table.column(c).dictionary().size();
    }
  }
  return sizes;
}

std::string SerializeDeltaToString(const Table& table, size_t base_rows,
                                   const std::vector<size_t>& dict_sizes) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(WriteTableDelta(table, base_rows, dict_sizes, &out).ok());
  return out.str();
}

Result<Table> ApplyDeltaFromString(const Table& base,
                                   const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return ApplyTableDelta(base, &in);
}

TEST(TableDeltaTest, ReplayReproducesLiveAppendBitIdentical) {
  const Table base = MakeMixedTable();
  const Table live =
      base.WithAppendedRows(MakeAppendTail()).ValueOrDie();
  const std::string delta =
      SerializeDeltaToString(live, base.num_rows(), DictSizesOf(base));
  Result<Table> replayed = ApplyDeltaFromString(base, delta);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ExpectTablesBitIdentical(live, *replayed);
  // The strongest form: the replayed table re-serializes (full codec)
  // byte-identically to the live one — dictionary order, codes, NaNs.
  EXPECT_EQ(SerializeToString(*replayed), SerializeToString(live));
}

TEST(TableDeltaTest, DeltaBytesScaleWithTailNotTable) {
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  SyntheticDataset tail = MakeBoxOfficeDataset(19).ValueOrDie();
  const Table live = ds.table.WithAppendedRows(tail.table).ValueOrDie();
  const std::string full = SerializeToString(live);
  const std::string delta = SerializeDeltaToString(
      live, ds.table.num_rows(), DictSizesOf(ds.table));
  // 900 base + 900 tail rows: the delta must be roughly half the full
  // image, and a small-tail delta must be far smaller still.
  EXPECT_LT(delta.size(), full.size());
  Selection two(tail.table.num_rows());
  two.Set(0);
  two.Set(1);
  const Table small_live =
      ds.table.WithAppendedRows(tail.table.Filter(two)).ValueOrDie();
  const std::string small_delta = SerializeDeltaToString(
      small_live, ds.table.num_rows(), DictSizesOf(ds.table));
  EXPECT_LT(small_delta.size() * 10, full.size());
  Result<Table> replayed = ApplyDeltaFromString(ds.table, small_delta);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ExpectTablesBitIdentical(small_live, *replayed);
}

TEST(TableDeltaTest, ChainOfSegmentsReplaysExactly) {
  SyntheticDataset ds = MakeBoxOfficeDataset(7).ValueOrDie();
  Table live = ds.table;
  Table replayed = ds.table;
  for (uint64_t seed : {19u, 23u, 29u}) {
    const Table base = live;
    SyntheticDataset tail = MakeBoxOfficeDataset(seed).ValueOrDie();
    live = base.WithAppendedRows(tail.table).ValueOrDie();
    const std::string delta =
        SerializeDeltaToString(live, base.num_rows(), DictSizesOf(base));
    Result<Table> next = ApplyDeltaFromString(replayed, delta);
    ASSERT_TRUE(next.ok()) << next.status();
    replayed = std::move(*next);
  }
  ExpectTablesBitIdentical(live, replayed);
  EXPECT_EQ(SerializeToString(replayed), SerializeToString(live));
}

TEST(TableDeltaTest, EmptyTailRoundTrips) {
  const Table base = MakeMixedTable();
  const std::string delta =
      SerializeDeltaToString(base, base.num_rows(), DictSizesOf(base));
  Result<Table> replayed = ApplyDeltaFromString(base, delta);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ExpectTablesBitIdentical(base, *replayed);
}

TEST(TableDeltaTest, RejectsMismatchedBase) {
  const Table base = MakeMixedTable();
  const Table live = base.WithAppendedRows(MakeAppendTail()).ValueOrDie();
  const std::string delta =
      SerializeDeltaToString(live, base.num_rows(), DictSizesOf(base));

  // Wrong base row count: applying to the live table instead of the base.
  EXPECT_TRUE(ApplyDeltaFromString(live, delta).status().IsParseError());

  // Wrong schema: a base with a renamed column.
  std::vector<Column> renamed;
  renamed.push_back(Column::FromNumeric(
      "other", base.column(0).numeric_data()));
  renamed.push_back(base.column(1));
  renamed.push_back(base.column(2));
  const Table wrong_schema =
      Table::FromColumns(std::move(renamed)).ValueOrDie();
  EXPECT_TRUE(
      ApplyDeltaFromString(wrong_schema, delta).status().IsParseError());

  // Wrong dictionary prefix size: a base whose categorical column grew.
  Column grown = base.column(1);
  (void)grown.InternLabel("violet");
  std::vector<Column> grown_columns;
  grown_columns.push_back(base.column(0));
  grown_columns.push_back(std::move(grown));
  grown_columns.push_back(base.column(2));
  const Table wrong_dict =
      Table::FromColumns(std::move(grown_columns)).ValueOrDie();
  EXPECT_TRUE(
      ApplyDeltaFromString(wrong_dict, delta).status().IsParseError());
}

TEST(TableDeltaTest, WrongMagicRejected) {
  const Table base = MakeMixedTable();
  const Table live = base.WithAppendedRows(MakeAppendTail()).ValueOrDie();
  std::string delta =
      SerializeDeltaToString(live, base.num_rows(), DictSizesOf(base));
  delta[3] = 'X';
  EXPECT_TRUE(ApplyDeltaFromString(base, delta).status().IsParseError());
  // A full-table image is not a delta.
  EXPECT_FALSE(ApplyDeltaFromString(base, SerializeToString(live)).ok());
}

TEST(TableDeltaTest, CompressedDeltaReplaysBitIdentical) {
  const Table base = MakeMixedTable();
  const Table live = base.WithAppendedRows(MakeAppendTail()).ValueOrDie();
  std::ostringstream out(std::ios::binary);
  TableWriteOptions options;
  options.compress = true;
  ASSERT_TRUE(
      WriteTableDelta(live, base.num_rows(), DictSizesOf(base), &out, options)
          .ok());
  const std::string delta = out.str();
  EXPECT_EQ(delta.compare(0, 8, kTableDeltaMagicV2, 8), 0);
  Result<Table> replayed = ApplyDeltaFromString(base, delta);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ExpectTablesBitIdentical(live, *replayed);
  EXPECT_EQ(SerializeToString(*replayed), SerializeToString(live));
}

TEST(TableDeltaTest, UncompressedDeltaByteSizeFormulaIsExact) {
  const Table base = MakeMixedTable();
  const Table live = base.WithAppendedRows(MakeAppendTail()).ValueOrDie();
  const std::string delta =
      SerializeDeltaToString(live, base.num_rows(), DictSizesOf(base));
  EXPECT_EQ(UncompressedDeltaBytes(live, base.num_rows(), DictSizesOf(base)),
            delta.size());
}

TEST(TableDeltaTest, FileRoundTripAndMissingFile) {
  const Table base = MakeMixedTable();
  const Table live = base.WithAppendedRows(MakeAppendTail()).ValueOrDie();
  const std::string path = testing::TempDir() + "/ziggy_table_io_test.zdlt";
  ASSERT_TRUE(
      WriteTableDeltaFile(live, base.num_rows(), DictSizesOf(base), path)
          .ok());
  Result<Table> replayed = ApplyTableDeltaFile(base, path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ExpectTablesBitIdentical(live, *replayed);
  std::remove(path.c_str());
  EXPECT_TRUE(ApplyTableDeltaFile(base, path).status().IsIOError());
}

// ------------------------------------------------------- binary_io unit ----

TEST(BinaryIoTest, SectionRoundTripAndCorruption) {
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(WriteSection(&out, "hello world").ok());
  ASSERT_TRUE(WriteSection(&out, "").ok());
  const std::string image = out.str();

  std::istringstream in(image, std::ios::binary);
  Result<std::string> first = ReadSection(&in, kMaxSectionBytes);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "hello world");
  Result<std::string> second = ReadSection(&in, kMaxSectionBytes);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");

  // A payload flip fails the CRC.
  std::string corrupt = image;
  corrupt[sizeof(uint64_t) + 1] ^= 0x01;
  std::istringstream bad(corrupt, std::ios::binary);
  EXPECT_TRUE(ReadSection(&bad, kMaxSectionBytes).status().IsParseError());

  // An over-limit length prefix is rejected before allocation.
  std::string huge;
  PutU64(&huge, uint64_t{1} << 40);
  huge += "payload";
  std::istringstream oversized(huge, std::ios::binary);
  EXPECT_FALSE(ReadSection(&oversized, kMaxSectionBytes).ok());
}

TEST(BinaryIoTest, ByteReaderNeverReadsPastEnd) {
  std::string payload;
  PutU64(&payload, 42);
  ByteReader reader(payload);
  EXPECT_TRUE(reader.ReadU64().ok());
  EXPECT_FALSE(reader.ReadU8().ok());
  EXPECT_FALSE(reader.ReadBytes(1).ok());

  ByteReader lying(payload);
  // A length prefix larger than the remaining bytes must fail cleanly.
  EXPECT_FALSE(lying.ReadLengthPrefixed(1u << 20).ok());
}

TEST(ChecksumTest, KnownVectorsAndChaining) {
  // The zlib/PNG CRC-32 of "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chaining discontiguous spans equals one contiguous pass.
  const uint32_t chained = Crc32("6789", Crc32("12345"));
  EXPECT_EQ(chained, Crc32("123456789"));
}

}  // namespace
}  // namespace ziggy
