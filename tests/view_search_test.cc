// Unit tests for views/view_search.h: constraint enforcement (Eq. 3-4),
// ranking (Eq. 1), and planted-structure recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "views/view_search.h"
#include "zig/component_builder.h"

namespace ziggy {
namespace {

// Table with two planted themes (cols 1-2 shifted & correlated, cols 3-4
// correlated but NOT shifted) plus noise columns 5-6 and driver col 0.
struct SearchFixture {
  Table table;
  Selection selection;
  TableProfile profile;
  ComponentTable components;
};

SearchFixture MakeSearchFixture(uint64_t seed = 21) {
  Rng rng(seed);
  const size_t n = 800;
  std::vector<double> driver(n);
  std::vector<double> a0(n);
  std::vector<double> a1(n);
  std::vector<double> b0(n);
  std::vector<double> b1(n);
  std::vector<double> n0(n);
  std::vector<double> n1(n);
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inside = i % 10 == 0;
    if (inside) sel.Set(i);
    driver[i] = inside ? 2.0 + rng.Normal() : rng.Normal();
    const double fa = rng.Normal();
    const double shift = inside ? 2.5 : 0.0;
    a0[i] = shift + 0.85 * fa + 0.52 * rng.Normal();
    a1[i] = shift + 0.85 * fa + 0.52 * rng.Normal();
    const double fb = rng.Normal();
    b0[i] = 0.85 * fb + 0.52 * rng.Normal();
    b1[i] = 0.85 * fb + 0.52 * rng.Normal();
    n0[i] = rng.Normal();
    n1[i] = rng.Normal();
  }
  Table t = Table::FromColumns(
                {Column::FromNumeric("driver", driver), Column::FromNumeric("a0", a0),
                 Column::FromNumeric("a1", a1), Column::FromNumeric("b0", b0),
                 Column::FromNumeric("b1", b1), Column::FromNumeric("n0", n0),
                 Column::FromNumeric("n1", n1)})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  return {std::move(t), std::move(sel), std::move(p), std::move(ct)};
}

TEST(ViewTightnessTest, SingletonIsOne) {
  SearchFixture fx = MakeSearchFixture();
  EXPECT_DOUBLE_EQ(ViewTightness(fx.profile, {1}), 1.0);
}

TEST(ViewTightnessTest, MinPairwiseDependency) {
  SearchFixture fx = MakeSearchFixture();
  const double t_pair = ViewTightness(fx.profile, {1, 2});
  EXPECT_GT(t_pair, 0.4);  // a0, a1 correlated
  const double t_mixed = ViewTightness(fx.profile, {1, 5});
  EXPECT_LT(t_mixed, 0.2);  // a0 vs noise
  EXPECT_LE(ViewTightness(fx.profile, {1, 2, 5}), t_mixed + 1e-12);
}

TEST(ViewSearchTest, RecoversShiftedThemeAsTopView) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.min_tightness = 0.3;
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  ASSERT_FALSE(r.views.empty());
  // The top view must contain the shifted theme columns {1, 2} (the driver
  // column 0 may legitimately join if correlated enough; here it isn't).
  const auto& top = r.views.front().columns;
  EXPECT_TRUE(std::find(top.begin(), top.end(), 1u) != top.end() ||
              std::find(top.begin(), top.end(), 0u) != top.end());
  // Find the view containing column 1: it must also contain column 2.
  for (const auto& v : r.views) {
    const bool has1 = std::find(v.columns.begin(), v.columns.end(), 1u) != v.columns.end();
    const bool has2 = std::find(v.columns.begin(), v.columns.end(), 2u) != v.columns.end();
    if (has1 || has2) EXPECT_EQ(has1, has2) << "theme a split across views";
  }
}

TEST(ViewSearchTest, UnshiftedThemeRanksBelowShifted) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.min_tightness = 0.3;
  opts.max_views = 0;  // all
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  int rank_shifted = -1;
  int rank_unshifted = -1;
  for (size_t i = 0; i < r.views.size(); ++i) {
    const auto& cols = r.views[i].columns;
    if (std::find(cols.begin(), cols.end(), 1u) != cols.end()) {
      if (rank_shifted < 0) rank_shifted = static_cast<int>(i);
    }
    if (std::find(cols.begin(), cols.end(), 3u) != cols.end()) {
      if (rank_unshifted < 0) rank_unshifted = static_cast<int>(i);
    }
  }
  ASSERT_GE(rank_shifted, 0);
  ASSERT_GE(rank_unshifted, 0);
  EXPECT_LT(rank_shifted, rank_unshifted);
}

TEST(ViewSearchTest, DisjointViewsDoNotShareColumns) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.min_tightness = 0.2;
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  std::set<size_t> seen;
  for (const auto& v : r.views) {
    for (size_t c : v.columns) {
      EXPECT_TRUE(seen.insert(c).second) << "column " << c << " appears twice (Eq. 4)";
    }
  }
}

TEST(ViewSearchTest, TightnessConstraintHolds) {
  SearchFixture fx = MakeSearchFixture();
  for (double min_tight : {0.2, 0.4, 0.6, 0.8}) {
    ViewSearchOptions opts;
    opts.min_tightness = min_tight;
    opts.max_views = 0;
    ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
    for (const auto& v : r.views) {
      if (v.columns.size() > 1) {
        EXPECT_GE(v.tightness, min_tight - 1e-9)
            << "MIN_tight=" << min_tight << " violated";
      }
    }
  }
}

TEST(ViewSearchTest, MaxViewSizeRespected) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.min_tightness = 0.0;  // everything merges
  opts.max_view_size = 2;
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  for (const auto& v : r.views) EXPECT_LE(v.columns.size(), 2u);
}

TEST(ViewSearchTest, MaxViewsTruncatesRanking) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.min_tightness = 0.2;
  opts.max_views = 2;
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  EXPECT_LE(r.views.size(), 2u);
  ViewSearchOptions all;
  all.min_tightness = 0.2;
  all.max_views = 0;
  ViewSearchResult r_all = SearchViews(fx.profile, fx.components, all).ValueOrDie();
  EXPECT_GE(r_all.views.size(), r.views.size());
  // Truncation keeps the best-scoring prefix.
  for (size_t i = 0; i < r.views.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.views[i].score.total, r_all.views[i].score.total);
  }
}

TEST(ViewSearchTest, ScoresAreSortedDescending) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.max_views = 0;
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  for (size_t i = 1; i < r.views.size(); ++i) {
    EXPECT_GE(r.views[i - 1].score.total, r.views[i].score.total);
  }
}

TEST(ViewSearchTest, SingletonsCanBeDisabled) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.min_tightness = 0.9;  // nothing clusters: all singletons
  opts.allow_singletons = false;
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  EXPECT_TRUE(r.views.empty());
  opts.allow_singletons = true;
  ViewSearchResult r2 = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  EXPECT_FALSE(r2.views.empty());
}

TEST(ViewSearchTest, NonDisjointModeProducesOverlaps) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions opts;
  opts.min_tightness = 0.3;
  opts.enforce_disjoint = false;
  opts.max_views = 0;
  ViewSearchResult r = SearchViews(fx.profile, fx.components, opts).ValueOrDie();
  // Subsets of the shifted theme now compete: strictly more candidates
  // than the disjoint run.
  ViewSearchOptions disjoint = opts;
  disjoint.enforce_disjoint = true;
  ViewSearchResult rd = SearchViews(fx.profile, fx.components, disjoint).ValueOrDie();
  EXPECT_GT(r.num_candidates, rd.num_candidates);
  // And overlap exists somewhere in the ranking.
  std::set<size_t> seen;
  bool overlap = false;
  for (const auto& v : r.views) {
    for (size_t c : v.columns) {
      if (!seen.insert(c).second) overlap = true;
    }
  }
  EXPECT_TRUE(overlap);
}

TEST(ViewSearchTest, InvalidOptionsRejected) {
  SearchFixture fx = MakeSearchFixture();
  ViewSearchOptions bad_tight;
  bad_tight.min_tightness = 1.5;
  EXPECT_TRUE(SearchViews(fx.profile, fx.components, bad_tight).status()
                  .IsInvalidArgument());
  ViewSearchOptions bad_size;
  bad_size.max_view_size = 0;
  EXPECT_TRUE(SearchViews(fx.profile, fx.components, bad_size).status()
                  .IsInvalidArgument());
}

TEST(ViewTest, ColumnNamesRendering) {
  SearchFixture fx = MakeSearchFixture();
  View v;
  v.columns = {1, 2};
  EXPECT_EQ(v.ColumnNames(fx.table.schema()), "{a0, a1}");
}

}  // namespace
}  // namespace ziggy
