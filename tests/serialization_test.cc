// Tests for TableProfile serialization (zig/profile_io.cc) and the JSON
// rendering of characterizations (engine/json.h).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/synthetic.h"
#include "engine/json.h"
#include "engine/ziggy_engine.h"
#include "zig/component_builder.h"
#include "zig/profile.h"

namespace ziggy {
namespace {

// ------------------------------------------------------- profile round trip --

TEST(ProfileSerializationTest, StreamRoundTripIsExact) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  TableProfile original = TableProfile::Compute(ds.table).ValueOrDie();
  std::stringstream buf;
  ASSERT_TRUE(original.Serialize(&buf).ok());
  TableProfile restored = TableProfile::Deserialize(&buf).ValueOrDie();
  EXPECT_TRUE(original.Equals(restored));
  EXPECT_EQ(restored.num_columns(), original.num_columns());
  EXPECT_EQ(restored.tracked_numeric_pairs(), original.tracked_numeric_pairs());
}

TEST(ProfileSerializationTest, RestoredProfileProducesIdenticalComponents) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  TableProfile original = TableProfile::Compute(ds.table).ValueOrDie();
  std::stringstream buf;
  ASSERT_TRUE(original.Serialize(&buf).ok());
  TableProfile restored = TableProfile::Deserialize(&buf).ValueOrDie();

  ComponentTable a = BuildComponents(ds.table, original, ds.planted).ValueOrDie();
  ComponentTable b = BuildComponents(ds.table, restored, ds.planted).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.components()[i].effect.value, b.components()[i].effect.value);
    EXPECT_DOUBLE_EQ(a.components()[i].p_value, b.components()[i].p_value);
  }
}

TEST(ProfileSerializationTest, FileRoundTrip) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  TableProfile original = TableProfile::Compute(ds.table).ValueOrDie();
  const std::string path = testing::TempDir() + "/ziggy_profile_test.bin";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  TableProfile restored = TableProfile::LoadFromFile(path).ValueOrDie();
  EXPECT_TRUE(original.Equals(restored));
  std::remove(path.c_str());
}

TEST(ProfileSerializationTest, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOTAPROF-and-some-garbage-bytes-here";
  EXPECT_TRUE(TableProfile::Deserialize(&buf).status().IsParseError());
}

TEST(ProfileSerializationTest, LegacyVersionGetsExplicitMismatchError) {
  // A ZIGPROF1 stream (format 1 binned histogram boundaries differently —
  // see the kMagic comment in profile_io.cc) must be rejected with an
  // actionable version error telling the user to recompute, not the
  // generic bad-magic ParseError an unrelated file gets.
  std::stringstream v1;
  v1 << "ZIGPROF1" << std::string(64, '\0');
  Status st = TableProfile::Deserialize(&v1).status();
  EXPECT_TRUE(st.IsFailedPrecondition()) << st;
  EXPECT_NE(st.message().find("version"), std::string::npos);
  EXPECT_NE(st.message().find("recompute"), std::string::npos);

  // A hypothetical future format is refused the same way (no silent
  // misparse of a newer stream by an older binary).
  std::stringstream v9;
  v9 << "ZIGPROF9" << std::string(64, '\0');
  EXPECT_TRUE(TableProfile::Deserialize(&v9).status().IsFailedPrecondition());
}

TEST(ProfileSerializationTest, TruncatedStreamRejected) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  TableProfile original = TableProfile::Compute(ds.table).ValueOrDie();
  std::stringstream buf;
  ASSERT_TRUE(original.Serialize(&buf).ok());
  const std::string full = buf.str();
  for (size_t cut : {size_t{4}, full.size() / 4, full.size() / 2, full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(TableProfile::Deserialize(&truncated).ok()) << "cut=" << cut;
  }
}

TEST(ProfileSerializationTest, MissingFileIsIOError) {
  EXPECT_TRUE(TableProfile::LoadFromFile("/nonexistent/dir/p.bin").status().IsIOError());
}

TEST(ProfileSerializationTest, OptionsSurviveRoundTrip) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ProfileOptions opts;
  opts.pair_dependency_floor = 0.123;
  opts.histogram_bins = 7;
  opts.cache_sort_orders = false;
  TableProfile original = TableProfile::Compute(ds.table, opts).ValueOrDie();
  std::stringstream buf;
  ASSERT_TRUE(original.Serialize(&buf).ok());
  TableProfile restored = TableProfile::Deserialize(&buf).ValueOrDie();
  EXPECT_DOUBLE_EQ(restored.options().pair_dependency_floor, 0.123);
  EXPECT_EQ(restored.options().histogram_bins, 7u);
  EXPECT_FALSE(restored.options().cache_sort_orders);
}

// ----------------------------------------------------------------- JSON ------

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscapeTest, NonAsciiBecomesUnicodeEscapes) {
  // BMP code points escape to one \uXXXX ...
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\\u00e9");
  EXPECT_EQ(JsonEscape("\xe2\x82\xac"), "\\u20ac");  // EURO SIGN
  // ... and non-BMP code points (emoji category labels) to a surrogate
  // pair — a bare \uXXXXX token or raw truncation would be invalid JSON.
  EXPECT_EQ(JsonEscape("\xf0\x9f\x98\x80"), "\\ud83d\\ude00");  // U+1F600
  EXPECT_EQ(JsonEscape("x\xf0\x90\x8d\x88y"), "x\\ud800\\udf48y");  // U+10348
}

TEST(JsonEscapeTest, InvalidUtf8BecomesReplacementCharacter) {
  // Latin-1 bytes, lone continuation bytes, truncated sequences, and
  // overlong encodings must never leak through raw: the reply would not
  // be valid JSON (or valid UTF-8).
  EXPECT_EQ(JsonEscape("\xe9"), "\\ufffd");              // Latin-1 e-acute
  EXPECT_EQ(JsonEscape("a\x80z"), "a\\ufffdz");          // bare continuation
  EXPECT_EQ(JsonEscape("\xf0\x9f\x98"), "\\ufffd\\ufffd\\ufffd");  // cut
  EXPECT_EQ(JsonEscape("\xc0\xaf"), "\\ufffd\\ufffd");   // overlong '/'
  EXPECT_EQ(JsonEscape("\xed\xa0\x80"),                  // encoded surrogate
            "\\ufffd\\ufffd\\ufffd");
}

TEST(JsonRenderTest, ContainsAllSections) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  const std::string query = ds.selection_predicate;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(query).ValueOrDie();
  const std::string json = CharacterizationToJson(r, engine.table().schema());
  EXPECT_NE(json.find("\"inside_count\":"), std::string::npos);
  EXPECT_NE(json.find("\"timings_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"views\":["), std::string::npos);
  EXPECT_NE(json.find("\"headline\":"), std::string::npos);
  EXPECT_NE(json.find("\"score_breakdown\":"), std::string::npos);
  // Balanced braces and brackets (cheap structural check).
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonRenderTest, ViewCountMatches) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  const std::string query = ds.selection_predicate;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(query).ValueOrDie();
  const std::string json = CharacterizationToJson(r, engine.table().schema());
  size_t count = 0;
  size_t pos = 0;
  while ((pos = json.find("\"rank\":", pos)) != std::string::npos) {
    ++count;
    pos += 7;
  }
  EXPECT_EQ(count, r.views.size());
}

TEST(JsonRenderTest, NoNaNLiterals) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  const std::string query = ds.selection_predicate;
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  Characterization r = engine.CharacterizeQuery(query).ValueOrDie();
  const std::string json = CharacterizationToJson(r, engine.table().schema());
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace ziggy
