// Tests for the extended preparation machinery: rank-shift and
// distribution-shift components, SelectionSketches row add/remove, and the
// Preparer's incremental (delta) strategy.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "data/synthetic.h"
#include "engine/ziggy_engine.h"
#include "zig/component_builder.h"

namespace ziggy {
namespace {

struct Fixture {
  Table table;
  Selection selection;
  TableProfile profile;
};

// Columns: "shifted" (planted +2 inside), "heavy" (inside has the same mean
// and variance-ish but is drawn from a shifted-median asymmetric
// distribution), "flat".
Fixture MakeFixture(uint64_t seed = 77) {
  Rng rng(seed);
  const size_t n = 1200;
  std::vector<double> shifted(n);
  std::vector<double> heavy(n);
  std::vector<double> flat(n);
  Selection sel(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inside = i % 4 == 0;
    if (inside) sel.Set(i);
    shifted[i] = (inside ? 2.0 : 0.0) + rng.Normal();
    if (inside) {
      // Median well above 0 but mean pulled back by a far-left tail:
      // rank/distribution components see this, the mean barely moves.
      heavy[i] = rng.Bernoulli(0.8) ? rng.Uniform(0.5, 1.5) : rng.Uniform(-6.0, -2.0);
    } else {
      heavy[i] = rng.Normal(0.0, 1.0);
    }
    flat[i] = rng.Normal();
  }
  Table t = Table::FromColumns({Column::FromNumeric("shifted", shifted),
                                Column::FromNumeric("heavy", heavy),
                                Column::FromNumeric("flat", flat)})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  return {std::move(t), std::move(sel), std::move(p)};
}

// ----------------------------------------------------------- new profile --

TEST(ProfileExtensionsTest, SortOrderIsAscending) {
  Fixture fx = MakeFixture();
  const auto& order = fx.profile.SortOrder(0);
  const auto& data = fx.table.column(0).numeric_data();
  ASSERT_EQ(order.size(), fx.table.num_rows());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(data[order[i - 1]], data[order[i]]);
  }
}

TEST(ProfileExtensionsTest, SortOrderExcludesNulls) {
  Table t = Table::FromColumns(
                {Column::FromNumeric("x", {3.0, NullNumeric(), 1.0, NullNumeric()})})
                .ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  EXPECT_EQ(p.SortOrder(0).size(), 2u);
}

TEST(ProfileExtensionsTest, SortOrderOptional) {
  Fixture fx = MakeFixture();
  ProfileOptions opts;
  opts.cache_sort_orders = false;
  TableProfile p = TableProfile::Compute(fx.table, opts).ValueOrDie();
  EXPECT_TRUE(p.SortOrder(0).empty());
}

TEST(ProfileExtensionsTest, GlobalHistogramCoversAllRows) {
  Fixture fx = MakeFixture();
  const auto& h = fx.profile.HistogramCountsOf(0);
  ASSERT_FALSE(h.empty());
  int64_t total = 0;
  for (int64_t v : h) total += v;
  EXPECT_EQ(total, static_cast<int64_t>(fx.table.num_rows()));
}

TEST(ProfileExtensionsTest, HistogramBinOfClamps) {
  EXPECT_EQ(HistogramBinOf(-100.0, 0.0, 10.0, 5), 0u);
  EXPECT_EQ(HistogramBinOf(100.0, 0.0, 10.0, 5), 4u);
  EXPECT_EQ(HistogramBinOf(10.0, 0.0, 10.0, 5), 4u);  // upper edge inclusive
  EXPECT_EQ(HistogramBinOf(0.0, 0.0, 10.0, 5), 0u);
  EXPECT_EQ(HistogramBinOf(5.0, 5.0, 5.0, 4), 0u);  // degenerate range
}

// ------------------------------------------------------- new components ----

TEST(RankShiftTest, DetectsPlantedShift) {
  Fixture fx = MakeFixture();
  ComponentTable ct =
      BuildComponents(fx.table, fx.profile, fx.selection).ValueOrDie();
  const ZigComponent* rank = ct.Find(ComponentKind::kRankShift, 0);
  ASSERT_NE(rank, nullptr);
  EXPECT_GT(rank->effect.value, 0.7);  // strong dominance
  EXPECT_LT(rank->p_value, 1e-10);
  EXPECT_GT(rank->inside_value, 0.85);  // P(inside > outside)
}

TEST(RankShiftTest, FlatColumnNearZero) {
  Fixture fx = MakeFixture();
  ComponentTable ct =
      BuildComponents(fx.table, fx.profile, fx.selection).ValueOrDie();
  const ZigComponent* rank = ct.Find(ComponentKind::kRankShift, 2);
  ASSERT_NE(rank, nullptr);
  EXPECT_LT(std::fabs(rank->effect.value), 0.15);
}

TEST(RankShiftTest, CatchesWhatMeanShiftUnderstates) {
  // The "heavy" column: median clearly shifted, mean pulled back by the
  // planted left tail. The rank component must be decisively significant.
  Fixture fx = MakeFixture();
  ComponentTable ct =
      BuildComponents(fx.table, fx.profile, fx.selection).ValueOrDie();
  const ZigComponent* rank = ct.Find(ComponentKind::kRankShift, 1);
  ASSERT_NE(rank, nullptr);
  EXPECT_GT(rank->effect.value, 0.25);
  EXPECT_LT(rank->p_value, 1e-4);
}

TEST(RankShiftTest, DisabledByOption) {
  Fixture fx = MakeFixture();
  ComponentBuildOptions opts;
  opts.enable_rank_shift = false;
  ComponentTable ct =
      BuildComponents(fx.table, fx.profile, fx.selection, opts).ValueOrDie();
  EXPECT_EQ(ct.Find(ComponentKind::kRankShift, 0), nullptr);
}

TEST(RankShiftTest, TieHandlingIsSymmetric) {
  // All values identical: U must be exactly n1*n2/2, delta 0.
  const size_t n = 40;
  std::vector<double> same(n, 5.0);
  Table t = Table::FromColumns({Column::FromNumeric("x", same)}).ValueOrDie();
  TableProfile p = TableProfile::Compute(t).ValueOrDie();
  Selection sel(n);
  for (size_t i = 0; i < n / 2; ++i) sel.Set(i);
  ComponentTable ct = BuildComponents(t, p, sel).ValueOrDie();
  const ZigComponent* rank = ct.Find(ComponentKind::kRankShift, 0);
  ASSERT_NE(rank, nullptr);
  EXPECT_NEAR(rank->effect.value, 0.0, 1e-12);
  EXPECT_NEAR(rank->inside_value, 0.5, 1e-12);
}

TEST(DistributionShiftTest, DetectsPlantedShape) {
  Fixture fx = MakeFixture();
  ComponentTable ct =
      BuildComponents(fx.table, fx.profile, fx.selection).ValueOrDie();
  const ZigComponent* dist = ct.Find(ComponentKind::kDistributionShift, 1);
  ASSERT_NE(dist, nullptr);
  EXPECT_GT(dist->inside_value, 0.3);  // TV distance
  EXPECT_LT(dist->p_value, 1e-10);
  EXPECT_FALSE(dist->detail.empty());  // names the concentrated range
}

TEST(DistributionShiftTest, FlatColumnInsignificant) {
  Fixture fx = MakeFixture();
  ComponentTable ct =
      BuildComponents(fx.table, fx.profile, fx.selection).ValueOrDie();
  const ZigComponent* dist = ct.Find(ComponentKind::kDistributionShift, 2);
  ASSERT_NE(dist, nullptr);
  EXPECT_GT(dist->p_value, 0.001);
}

TEST(DistributionShiftTest, DisabledByOption) {
  Fixture fx = MakeFixture();
  ComponentBuildOptions opts;
  opts.enable_distribution_shift = false;
  ComponentTable ct =
      BuildComponents(fx.table, fx.profile, fx.selection, opts).ValueOrDie();
  EXPECT_EQ(ct.Find(ComponentKind::kDistributionShift, 0), nullptr);
}

TEST(NewComponentsTest, SharedEqualsTwoScanStillHolds) {
  Fixture fx = MakeFixture();
  ComponentBuildOptions shared;
  ComponentBuildOptions naive;
  naive.mode = PreparationMode::kTwoScan;
  ComponentTable a =
      BuildComponents(fx.table, fx.profile, fx.selection, shared).ValueOrDie();
  ComponentTable b =
      BuildComponents(fx.table, fx.profile, fx.selection, naive).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.components()[i].effect.value, b.components()[i].effect.value, 1e-9);
  }
}

// -------------------------------------------------- SelectionSketches ops --

TEST(SelectionSketchesTest, AddThenRemoveIsIdentity) {
  Fixture fx = MakeFixture();
  SelectionSketches a;
  a.InitShapes(fx.table, fx.profile);
  for (size_t r : fx.selection.ToIndices()) a.AddRow(fx.table, fx.profile, r);

  SelectionSketches b = a;
  b.AddRow(fx.table, fx.profile, 1);
  b.AddRow(fx.table, fx.profile, 2);
  b.RemoveRow(fx.table, fx.profile, 2);
  b.RemoveRow(fx.table, fx.profile, 1);
  for (size_t c = 0; c < fx.table.num_columns(); ++c) {
    EXPECT_EQ(b.column_sketch(c).count, a.column_sketch(c).count);
    EXPECT_NEAR(b.column_sketch(c).sum, a.column_sketch(c).sum, 1e-9);
    EXPECT_NEAR(b.column_sketch(c).sum_sq, a.column_sketch(c).sum_sq, 1e-9);
    EXPECT_EQ(b.histogram(c), a.histogram(c));
  }
}

TEST(SelectionSketchesTest, MemoryUsageReported) {
  Fixture fx = MakeFixture();
  SelectionSketches s;
  s.InitShapes(fx.table, fx.profile);
  EXPECT_GT(s.MemoryUsageBytes(), 0u);
}

// ----------------------------------------------------------- Preparer ------

TEST(PreparerTest, FirstQueryIsFullScan) {
  Fixture fx = MakeFixture();
  Preparer prep(&fx.table, &fx.profile, ComponentBuildOptions{});
  ASSERT_TRUE(prep.Prepare(fx.selection).ok());
  EXPECT_EQ(prep.last_strategy(), Preparer::Strategy::kFullScan);
}

TEST(PreparerTest, OverlappingQueryGoesIncremental) {
  Fixture fx = MakeFixture();
  Preparer prep(&fx.table, &fx.profile, ComponentBuildOptions{});
  ASSERT_TRUE(prep.Prepare(fx.selection).ok());
  Selection refined = fx.selection;
  refined.Set(1);  // one extra row
  refined.Set(fx.selection.ToIndices()[0], false);  // one removed
  ASSERT_TRUE(prep.Prepare(refined).ok());
  EXPECT_EQ(prep.last_strategy(), Preparer::Strategy::kIncremental);
  EXPECT_EQ(prep.last_delta_rows(), 2u);
}

TEST(PreparerTest, DisjointQueryFallsBackToFullScan) {
  Fixture fx = MakeFixture();
  Preparer prep(&fx.table, &fx.profile, ComponentBuildOptions{});
  ASSERT_TRUE(prep.Prepare(fx.selection).ok());
  // Complement: delta = whole table > |selection|.
  ASSERT_TRUE(prep.Prepare(fx.selection.Invert()).ok());
  EXPECT_EQ(prep.last_strategy(), Preparer::Strategy::kFullScan);
}

TEST(PreparerTest, IncrementalMatchesFromScratch) {
  Fixture fx = MakeFixture();
  Preparer prep(&fx.table, &fx.profile, ComponentBuildOptions{});
  ASSERT_TRUE(prep.Prepare(fx.selection).ok());

  Rng rng(5);
  Selection current = fx.selection;
  for (int step = 0; step < 6; ++step) {
    // Random small perturbation of the selection.
    Selection next = current;
    for (int k = 0; k < 20; ++k) {
      const size_t r =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                    fx.table.num_rows()) -
                                                    1));
      next.Set(r, rng.Bernoulli(0.5));
    }
    if (next.Count() == 0 || next.Count() == fx.table.num_rows()) continue;
    ComponentTable incremental = prep.Prepare(next).ValueOrDie();
    ComponentTable scratch =
        BuildComponents(fx.table, fx.profile, next).ValueOrDie();
    ASSERT_EQ(incremental.size(), scratch.size()) << "step " << step;
    for (size_t i = 0; i < incremental.size(); ++i) {
      EXPECT_NEAR(incremental.components()[i].effect.value,
                  scratch.components()[i].effect.value, 1e-7)
          << "step " << step << " component " << i;
      EXPECT_EQ(incremental.components()[i].inside_n,
                scratch.components()[i].inside_n);
    }
    current = next;
  }
}

TEST(PreparerTest, ResetForcesFullScan) {
  Fixture fx = MakeFixture();
  Preparer prep(&fx.table, &fx.profile, ComponentBuildOptions{});
  ASSERT_TRUE(prep.Prepare(fx.selection).ok());
  prep.Reset();
  Selection refined = fx.selection;
  refined.Set(1);
  ASSERT_TRUE(prep.Prepare(refined).ok());
  EXPECT_EQ(prep.last_strategy(), Preparer::Strategy::kFullScan);
}

TEST(PreparerTest, TwoScanModeNeverIncremental) {
  Fixture fx = MakeFixture();
  ComponentBuildOptions opts;
  opts.mode = PreparationMode::kTwoScan;
  Preparer prep(&fx.table, &fx.profile, opts);
  ASSERT_TRUE(prep.Prepare(fx.selection).ok());
  EXPECT_EQ(prep.last_strategy(), Preparer::Strategy::kTwoScan);
  Selection refined = fx.selection;
  refined.Set(1);
  ASSERT_TRUE(prep.Prepare(refined).ok());
  EXPECT_EQ(prep.last_strategy(), Preparer::Strategy::kTwoScan);
}

TEST(PreparerTest, RejectsDegenerateSelections) {
  Fixture fx = MakeFixture();
  Preparer prep(&fx.table, &fx.profile, ComponentBuildOptions{});
  EXPECT_TRUE(prep.Prepare(Selection(fx.table.num_rows())).status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(prep.Prepare(Selection::All(fx.table.num_rows())).status()
                  .IsFailedPrecondition());
}

// -------------------------------------------------------------- engine ----

TEST(EngineIncrementalTest, RefinementUsesDelta) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyEngine engine = ZiggyEngine::Create(std::move(ds.table)).ValueOrDie();
  Characterization r1 =
      engine.CharacterizeQuery("revenue_index > 1.2").ValueOrDie();
  EXPECT_EQ(r1.strategy, Preparer::Strategy::kFullScan);
  Characterization r2 =
      engine.CharacterizeQuery("revenue_index > 1.25").ValueOrDie();
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(r2.strategy, Preparer::Strategy::kIncremental);
  EXPECT_GT(r2.delta_rows, 0u);
  // And the result matches a fresh engine's answer.
  SyntheticDataset ds2 = MakeBoxOfficeDataset().ValueOrDie();
  ZiggyEngine fresh = ZiggyEngine::Create(std::move(ds2.table)).ValueOrDie();
  Characterization expect =
      fresh.CharacterizeQuery("revenue_index > 1.25").ValueOrDie();
  ASSERT_EQ(r2.views.size(), expect.views.size());
  for (size_t i = 0; i < r2.views.size(); ++i) {
    EXPECT_EQ(r2.views[i].view.columns, expect.views[i].view.columns);
    EXPECT_NEAR(r2.views[i].view.score.total, expect.views[i].view.score.total, 1e-9);
  }
}

// Property sweep: incremental equivalence across perturbation sizes.
class IncrementalEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEquivalence, MatchesScratchAfterKFlips) {
  const int flips = GetParam();
  Fixture fx = MakeFixture(1000 + static_cast<uint64_t>(flips));
  Preparer prep(&fx.table, &fx.profile, ComponentBuildOptions{});
  ASSERT_TRUE(prep.Prepare(fx.selection).ok());
  Rng rng(static_cast<uint64_t>(flips));
  Selection next = fx.selection;
  for (int k = 0; k < flips; ++k) {
    const size_t r = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(fx.table.num_rows()) - 1));
    next.Set(r, !next.Contains(r));
  }
  if (next.Count() == 0 || next.Count() == fx.table.num_rows()) GTEST_SKIP();
  ComponentTable incremental = prep.Prepare(next).ValueOrDie();
  ComponentTable scratch = BuildComponents(fx.table, fx.profile, next).ValueOrDie();
  ASSERT_EQ(incremental.size(), scratch.size());
  for (size_t i = 0; i < incremental.size(); ++i) {
    EXPECT_NEAR(incremental.components()[i].effect.value,
                scratch.components()[i].effect.value, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Flips, IncrementalEquivalence,
                         ::testing::Values(1, 5, 20, 100, 299));

}  // namespace
}  // namespace ziggy
