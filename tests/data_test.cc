// Unit tests for src/data: synthetic generators and workload generation.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "query/parser.h"
#include "stats/dependency.h"
#include "stats/descriptive.h"

namespace ziggy {
namespace {

TEST(SyntheticTest, SpecValidation) {
  SyntheticSpec spec;
  spec.num_rows = 5;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
  spec.num_rows = 100;
  spec.planted_fraction = 0.0;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
  spec.planted_fraction = 1.5;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
  spec.planted_fraction = 0.1;
  spec.num_categorical = 1;
  spec.num_shifted_categorical = 2;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_rows = 500;
  spec.planted_fraction = 0.2;
  spec.themes = {{"t", 3, 0.8, 1.0, 1.0, 0.0}};
  spec.num_noise_columns = 2;
  spec.num_categorical = 2;
  spec.num_shifted_categorical = 1;
  SyntheticDataset ds = GenerateSynthetic(spec).ValueOrDie();
  // driver + 3 theme + 2 noise + 2 categorical = 8.
  EXPECT_EQ(ds.table.num_columns(), 8u);
  EXPECT_EQ(ds.table.num_rows(), 500u);
  EXPECT_EQ(ds.table.schema().field(0).name, "driver");
  // Planted fraction approximately honored.
  const double frac =
      static_cast<double>(ds.planted.Count()) / static_cast<double>(ds.table.num_rows());
  EXPECT_NEAR(frac, 0.2, 0.05);
}

TEST(SyntheticTest, PredicateSelectsPlantedRows) {
  SyntheticSpec spec;
  spec.num_rows = 400;
  spec.themes = {{"t", 2, 0.8, 1.5, 1.0, 0.0}};
  SyntheticDataset ds = GenerateSynthetic(spec).ValueOrDie();
  ExprPtr e = ParsePredicate(ds.selection_predicate).ValueOrDie();
  Selection sel = e->Evaluate(ds.table).ValueOrDie();
  EXPECT_GT(sel.Jaccard(ds.planted), 0.99);
}

TEST(SyntheticTest, ThemeColumnsAreCorrelated) {
  SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.themes = {{"t", 2, 0.9, 0.0, 1.0, 0.0}};
  SyntheticDataset ds = GenerateSynthetic(spec).ValueOrDie();
  const auto& x = ds.table.GetColumn("t_0").ValueOrDie()->numeric_data();
  const auto& y = ds.table.GetColumn("t_1").ValueOrDie()->numeric_data();
  // Pairwise correlation ~ loading^2 = 0.81.
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.81, 0.06);
}

TEST(SyntheticTest, MeanShiftIsPlanted) {
  SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.planted_fraction = 0.1;
  spec.themes = {{"t", 1, 0.8, 2.0, 1.0, 0.0}};
  SyntheticDataset ds = GenerateSynthetic(spec).ValueOrDie();
  const auto& col = ds.table.GetColumn("t_0").ValueOrDie()->numeric_data();
  NumericStats inside = ComputeNumericStats(col, ds.planted);
  NumericStats outside = ComputeNumericStats(col, ds.planted.Invert());
  EXPECT_NEAR(inside.mean - outside.mean, 2.0, 0.25);
}

TEST(SyntheticTest, ScaleShiftIsPlanted) {
  SyntheticSpec spec;
  spec.num_rows = 4000;
  spec.planted_fraction = 0.2;
  spec.themes = {{"t", 1, 0.5, 0.0, 3.0, 0.0}};
  SyntheticDataset ds = GenerateSynthetic(spec).ValueOrDie();
  const auto& col = ds.table.GetColumn("t_0").ValueOrDie()->numeric_data();
  NumericStats inside = ComputeNumericStats(col, ds.planted);
  NumericStats outside = ComputeNumericStats(col, ds.planted.Invert());
  EXPECT_NEAR(inside.StdDev() / outside.StdDev(), 3.0, 0.35);
}

TEST(SyntheticTest, CorrelationBreakIsPlanted) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  spec.planted_fraction = 0.3;
  spec.themes = {{"t", 2, 0.9, 0.0, 1.0, 1.0}};  // full break inside
  SyntheticDataset ds = GenerateSynthetic(spec).ValueOrDie();
  const auto& x = ds.table.GetColumn("t_0").ValueOrDie()->numeric_data();
  const auto& y = ds.table.GetColumn("t_1").ValueOrDie()->numeric_data();
  const double r_in = ComputePairStats(x, y, ds.planted).Correlation();
  const double r_out = ComputePairStats(x, y, ds.planted.Invert()).Correlation();
  EXPECT_GT(r_out, 0.7);
  EXPECT_LT(r_in, 0.25);
}

TEST(SyntheticTest, PlantedViewsListShiftedThemesOnly) {
  SyntheticSpec spec;
  spec.num_rows = 300;
  spec.themes = {{"shifted", 2, 0.8, 1.0, 1.0, 0.0}, {"flat", 2, 0.8, 0.0, 1.0, 0.0}};
  spec.num_categorical = 2;
  spec.num_shifted_categorical = 1;
  SyntheticDataset ds = GenerateSynthetic(spec).ValueOrDie();
  // One numeric theme + one categorical singleton.
  ASSERT_EQ(ds.planted_views.size(), 2u);
  EXPECT_EQ(ds.planted_views[0].size(), 2u);  // the shifted theme columns
  EXPECT_EQ(ds.table.schema().field(ds.planted_views[0][0]).name, "shifted_0");
  EXPECT_EQ(ds.planted_views[1].size(), 1u);  // shifted categorical
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticDataset a = MakeBoxOfficeDataset(5).ValueOrDie();
  SyntheticDataset b = MakeBoxOfficeDataset(5).ValueOrDie();
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  for (size_t c = 0; c < a.table.num_columns(); ++c) {
    if (!a.table.column(c).is_numeric()) continue;
    for (size_t r = 0; r < a.table.num_rows(); r += 97) {
      EXPECT_DOUBLE_EQ(a.table.column(c).numeric_data()[r],
                       b.table.column(c).numeric_data()[r]);
    }
  }
}

TEST(UseCaseShapesTest, BoxOffice) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  EXPECT_EQ(ds.table.num_rows(), 900u);
  EXPECT_EQ(ds.table.num_columns(), 12u);
}

TEST(UseCaseShapesTest, Crime) {
  SyntheticDataset ds = MakeCrimeDataset().ValueOrDie();
  EXPECT_EQ(ds.table.num_rows(), 1994u);
  EXPECT_EQ(ds.table.num_columns(), 128u);
  // The four Figure-1 themes plus one categorical are planted.
  EXPECT_EQ(ds.planted_views.size(), 5u);
}

TEST(UseCaseShapesTest, Oecd) {
  SyntheticDataset ds = MakeOecdDataset().ValueOrDie();
  EXPECT_EQ(ds.table.num_rows(), 6823u);
  EXPECT_EQ(ds.table.num_columns(), 519u);
}

TEST(WorkloadTest, GeneratesParseableSelectiveQueries) {
  SyntheticDataset ds = MakeBoxOfficeDataset().ValueOrDie();
  Rng rng(3);
  auto queries = GenerateWorkload(ds.table, 20, &rng);
  ASSERT_EQ(queries.size(), 20u);
  for (const auto& q : queries) {
    ExprPtr e = ParsePredicate(q).ValueOrDie();
    Selection sel = e->Evaluate(ds.table).ValueOrDie();
    EXPECT_GT(sel.Count(), 0u) << q;
    EXPECT_LT(sel.Count(), ds.table.num_rows()) << q;
  }
}

TEST(WorkloadTest, EmptyForTableWithoutNumericColumns) {
  Table t = Table::FromColumns({Column::FromStrings("s", {"a", "b"})}).ValueOrDie();
  Rng rng(1);
  EXPECT_TRUE(GenerateWorkload(t, 5, &rng).empty());
}

}  // namespace
}  // namespace ziggy
