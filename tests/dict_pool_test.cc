// The shared dictionary pool (persist/dict_pool.h), standalone and wired
// into the store:
//
//  * pool mechanics — content addressing, prefix merging (an append
//    generation's longer dictionary absorbs the shorter one), collision
//    verification by labels, corrupt-file skip at Open;
//  * GC safety — a dictionary referenced by any live manifest entry (or
//    pinned by an in-flight save) is never deleted; two tables sharing
//    one dictionary stay independently loadable after either is removed;
//  * store integration — compressed checkpoints round-trip bit for bit
//    across a cold reopen, share pool files across tables, and a store
//    written with compression ON loads fine with compression OFF (and
//    vice versa: the read side is per-file auto-detection).

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "persist/dict_pool.h"
#include "persist/fs_util.h"
#include "persist/store.h"
#include "storage/table.h"
#include "zig/profile.h"

namespace ziggy {
namespace {

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  return testing::TempDir() + "/ziggy_dict_pool_test_" + tag + "_" +
         std::to_string(++counter);
}

size_t CountPoolFiles(const std::string& store_dir) {
  namespace fs = std::filesystem;
  const fs::path dicts = fs::path(store_dir) / "dicts";
  std::error_code ec;
  size_t n = 0;
  for (fs::directory_iterator it(dicts, ec); !ec && it != fs::directory_iterator();
       ++it) {
    if (it->path().extension() == ".zdic") ++n;
  }
  return n;
}

// ------------------------------------------------------ pool mechanics ----

TEST(DictPoolTest, AcquireResolveRoundTrip) {
  const std::string dir = UniqueDir("roundtrip");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  auto pool = DictPool::Open(dir).ValueOrDie();

  const std::vector<std::string> labels = {"red", "green", "blue"};
  const DictRef ref = pool->Acquire(labels).ValueOrDie();
  EXPECT_EQ(ref.size, labels.size());
  EXPECT_EQ(ref.hash, DictPool::ChainHash(labels));

  auto dict = pool->Resolve(ref).ValueOrDie();
  EXPECT_EQ(dict->labels, labels);
  // Resolve caches: same shared instance for the same ref.
  EXPECT_EQ(pool->Resolve(ref).ValueOrDie().get(), dict.get());

  // A second Acquire is a shared hit, not a second file.
  EXPECT_EQ(pool->Acquire(labels).ValueOrDie().hash, ref.hash);
  EXPECT_EQ(pool->stats().writes, 1u);
  EXPECT_EQ(pool->stats().shared_hits, 1u);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(DictPoolTest, PrefixOfPooledDictionaryIsAHit) {
  const std::string dir = UniqueDir("prefix");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  auto pool = DictPool::Open(dir).ValueOrDie();

  const std::vector<std::string> longer = {"a", "b", "c", "d", "e"};
  const std::vector<std::string> shorter = {"a", "b", "c"};
  const DictRef big = pool->Acquire(longer).ValueOrDie();
  // The shorter dictionary is a prefix of the pooled one: same file,
  // smaller size — the append-workload sharing shape.
  const DictRef small = pool->Acquire(shorter).ValueOrDie();
  EXPECT_EQ(small.hash, big.hash);
  EXPECT_EQ(small.size, 3u);
  EXPECT_EQ(pool->stats().writes, 1u);

  auto dict = pool->Resolve(small).ValueOrDie();
  EXPECT_EQ(dict->labels, shorter);
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(DictPoolTest, LongerDictionaryMergesOverShorter) {
  const std::string dir = UniqueDir("merge");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  auto pool = DictPool::Open(dir).ValueOrDie();

  const std::vector<std::string> shorter = {"a", "b", "c"};
  const std::vector<std::string> longer = {"a", "b", "c", "d", "e"};
  const DictRef small = pool->Acquire(shorter).ValueOrDie();
  const DictRef big = pool->Acquire(longer).ValueOrDie();
  EXPECT_NE(small.hash, big.hash);  // written before the merge existed

  // After the longer dictionary lands, the shorter one resolves to a
  // prefix of the MERGED file — the old file can age out via GC.
  const DictRef again = pool->Acquire(shorter).ValueOrDie();
  EXPECT_EQ(again.hash, big.hash);
  EXPECT_EQ(again.size, 3u);

  pool->SweepUnreferenced({big.hash});
  EXPECT_EQ(pool->stats().dict_files, 1u);
  EXPECT_TRUE(pool->Resolve(small).status().IsNotFound());
  EXPECT_TRUE(pool->Resolve(big).ok());
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(DictPoolTest, SweepKeepsLiveAndPinned) {
  const std::string dir = UniqueDir("sweep");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  auto pool = DictPool::Open(dir).ValueOrDie();

  const DictRef live = pool->Acquire({"live1", "live2"}).ValueOrDie();
  const DictRef pinned = pool->Acquire({"pinned1"}).ValueOrDie();
  const DictRef orphan = pool->Acquire({"orphan1"}).ValueOrDie();

  {
    ScopedDictPins pins(pool.get());
    pins.Add(pinned.hash);
    pool->SweepUnreferenced({live.hash});
    // Live and pinned survive; the orphan is gone, file included.
    EXPECT_TRUE(pool->Resolve(live).ok());
    EXPECT_TRUE(pool->Resolve(pinned).ok());
    EXPECT_TRUE(pool->Resolve(orphan).status().IsNotFound());
    EXPECT_TRUE(PathExists(pool->DictPath(live.hash)));
    EXPECT_TRUE(PathExists(pool->DictPath(pinned.hash)));
    EXPECT_FALSE(PathExists(pool->DictPath(orphan.hash)));
  }
  // Pins released: the next sweep may collect the formerly pinned dict.
  pool->SweepUnreferenced({live.hash});
  EXPECT_TRUE(pool->Resolve(pinned).status().IsNotFound());
  EXPECT_TRUE(pool->Resolve(live).ok());
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(DictPoolTest, ReopenReindexesAndSkipsCorruptFiles) {
  const std::string dir = UniqueDir("reopen");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  DictRef good;
  std::string corrupt_path;
  {
    auto pool = DictPool::Open(dir).ValueOrDie();
    good = pool->Acquire({"alpha", "beta"}).ValueOrDie();
    const DictRef victim = pool->Acquire({"victim"}).ValueOrDie();
    corrupt_path = pool->DictPath(victim.hash);
  }
  {
    // Damage one pool file on disk.
    std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
    out << "ZIGDIC01 but the rest is garbage";
  }
  auto pool = DictPool::Open(dir).ValueOrDie();
  // The intact dictionary is indexed and a shared hit again...
  EXPECT_EQ(pool->Acquire({"alpha", "beta"}).ValueOrDie().hash, good.hash);
  EXPECT_EQ(pool->stats().shared_hits, 1u);
  EXPECT_EQ(pool->stats().dict_files, 1u);  // the corrupt one was skipped
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

TEST(DictPoolTest, RefusesEmptyDictionariesAndLabels) {
  const std::string dir = UniqueDir("invalid");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  auto pool = DictPool::Open(dir).ValueOrDie();
  EXPECT_FALSE(pool->Acquire({}).ok());
  EXPECT_FALSE(pool->Acquire({"ok", ""}).ok());
  ASSERT_TRUE(RemoveDirectory(dir).ok());
}

// --------------------------------------------------- store integration ----

class CompressedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueDir("store");
    StoreOptions options;
    options.compression = StoreCompression::kOn;
    store_ = ZiggyStore::Open(dir_, options).ValueOrDie();
    ds_ = MakeBoxOfficeDataset(7, /*value_decimals=*/3).ValueOrDie();
    profile_ = TableProfile::Compute(ds_.table).ValueOrDie();
  }

  void TearDown() override {
    store_.reset();
    ASSERT_TRUE(RemoveDirectory(dir_).ok());
  }

  void ExpectTablesBitIdentical(const Table& a, const Table& b) {
    ASSERT_EQ(a.schema(), b.schema());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (a.column(c).is_numeric()) {
        const auto& va = a.column(c).numeric_data();
        const auto& vb = b.column(c).numeric_data();
        ASSERT_EQ(va.size(), vb.size());
        EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)),
                  0)
            << "column " << a.column(c).name();
      } else {
        EXPECT_EQ(a.column(c).dictionary(), b.column(c).dictionary());
        EXPECT_EQ(a.column(c).codes(), b.column(c).codes());
      }
    }
  }

  std::string dir_;
  std::unique_ptr<ZiggyStore> store_;
  SyntheticDataset ds_;
  TableProfile profile_;
};

TEST_F(CompressedStoreTest, CompressedCheckpointRoundTripsAcrossReopen) {
  ASSERT_TRUE(store_->SaveTable("box", ds_.table, 0, profile_, {}).ok());
  const StoreStats stats = store_->stats();
  EXPECT_GT(stats.checkpoint_raw_bytes, 0u);
  EXPECT_LT(stats.checkpoint_bytes, stats.checkpoint_raw_bytes);
  EXPECT_GT(stats.dict_pool_files, 0u);

  // Cold reopen: a fresh process must reindex the pool and resolve the
  // manifest's dictionary refs.
  store_.reset();
  store_ = ZiggyStore::Open(dir_).ValueOrDie();
  StoredTable loaded = store_->LoadTable("box").ValueOrDie();
  ExpectTablesBitIdentical(ds_.table, loaded.table);
}

TEST_F(CompressedStoreTest, CompressedStoreLoadsWithCompressionOff) {
  ASSERT_TRUE(store_->SaveTable("box", ds_.table, 0, profile_, {}).ok());
  store_.reset();
  StoreOptions off;
  off.compression = StoreCompression::kOff;
  store_ = ZiggyStore::Open(dir_, off).ValueOrDie();
  EXPECT_FALSE(store_->compression_enabled());
  StoredTable loaded = store_->LoadTable("box").ValueOrDie();
  ExpectTablesBitIdentical(ds_.table, loaded.table);
  // And an uncompressed re-save of the same table still works, pool refs
  // dropped from the manifest entry.
  ASSERT_TRUE(store_->SaveTable("box", ds_.table, 1, profile_, {}).ok());
  StoredTable again = store_->LoadTable("box").ValueOrDie();
  ExpectTablesBitIdentical(ds_.table, again.table);
}

TEST_F(CompressedStoreTest, TwoTablesShareOnePoolFile) {
  ASSERT_TRUE(store_->SaveTable("one", ds_.table, 0, profile_, {}).ok());
  const size_t files_after_first = CountPoolFiles(dir_);
  ASSERT_GT(files_after_first, 0u);
  ASSERT_TRUE(store_->SaveTable("two", ds_.table, 0, profile_, {}).ok());
  // Identical dictionaries: the second save reuses every pool file.
  EXPECT_EQ(CountPoolFiles(dir_), files_after_first);
  EXPECT_GT(store_->stats().dict_pool_shared_hits, 0u);

  // Removing ONE table must not strand the other: the dictionary is
  // still referenced by a live manifest entry.
  ASSERT_TRUE(store_->RemoveTable("one").ok());
  EXPECT_EQ(CountPoolFiles(dir_), files_after_first);
  StoredTable survivor = store_->LoadTable("two").ValueOrDie();
  ExpectTablesBitIdentical(ds_.table, survivor.table);

  // ... including across a cold reopen.
  store_.reset();
  store_ = ZiggyStore::Open(dir_).ValueOrDie();
  ExpectTablesBitIdentical(ds_.table,
                           store_->LoadTable("two").ValueOrDie().table);

  // Removing the LAST referencing table sweeps the pool files.
  ASSERT_TRUE(store_->RemoveTable("two").ok());
  EXPECT_EQ(CountPoolFiles(dir_), 0u);
}

TEST_F(CompressedStoreTest, MissingPoolFileFailsLoadCleanly) {
  ASSERT_TRUE(store_->SaveTable("box", ds_.table, 0, profile_, {}).ok());
  // Destroy the dicts directory behind the store's back, then cold-open.
  store_.reset();
  ASSERT_TRUE(RemoveDirectory(JoinPath(dir_, "dicts")).ok());
  store_ = ZiggyStore::Open(dir_).ValueOrDie();
  Result<StoredTable> loaded = store_->LoadTable("box");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status();
}

TEST_F(CompressedStoreTest, DeltaChainOnCompressedBaseReplays) {
  ASSERT_TRUE(
      store_->SaveTable("box", ds_.table, 0, profile_, {}, /*lineage=*/77)
          .ok());
  SyntheticDataset tail = MakeBoxOfficeDataset(19, /*value_decimals=*/3)
                              .ValueOrDie();
  const Table live = ds_.table.WithAppendedRows(tail.table).ValueOrDie();
  TableProfile live_profile = TableProfile::Compute(live).ValueOrDie();
  ASSERT_TRUE(
      store_->SaveTable("box", live, 1, live_profile, {}, /*lineage=*/77)
          .ok());
  EXPECT_EQ(store_->stats().delta_checkpoints, 1u);

  store_.reset();
  store_ = ZiggyStore::Open(dir_).ValueOrDie();
  StoredTable loaded = store_->LoadTable("box").ValueOrDie();
  ExpectTablesBitIdentical(live, loaded.table);
}

}  // namespace
}  // namespace ziggy
