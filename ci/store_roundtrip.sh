#!/usr/bin/env bash
# Warm-restart gates for the durable store.
#
# Phase 1-3: boots ziggy_daemon with a fresh --store directory, primes it
# (open + SAVE) over the wire, kills the daemon, restarts it on the same
# store, replays the *unmodified* e2e command script, and diffs the
# transcript against the same golden the cold-boot daemon-e2e job uses.
# The OPEN in the replay is served from the checkpoint (proven by
# grepping the catalog's store counters), so this failing means a
# warm-restarted daemon no longer serves byte-identical output to a cold
# boot.
#
# Phase 4-6 (ISSUE 5): the crash-safe O(delta) write path. A daemon with
# the background flusher enabled takes appends over the wire, the script
# waits for the flusher to cut the delta checkpoints (manifest shows
# base + chain), captures a VIEWS reply on the appended table, and then
# SIGKILLs the daemon — no clean shutdown, durability rests entirely on
# the fsync-backed base+delta commits. The warm restart must replay the
# chain and answer the same VIEWS byte-identically against the captured
# golden.
#
# Usage: ci/store_roundtrip.sh [build-dir]   (run from the repository root)
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK="$(mktemp -d)"
DAEMON_PID=""
source ci/lib.sh
trap daemon_cleanup EXIT

# ---- phase 1: cold boot, prime the store, checkpoint, kill ----
boot_daemon "$WORK/daemon1.log" --store "$WORK/store"
echo "cold daemon on 127.0.0.1:$PORT (store: $WORK/store)"
printf 'open box demo://boxoffice?seed=7\nviews box revenue_index >= 1.1826265604539112\nsave box\nquit\n' \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$WORK/prime.txt"
grep -q '"saved":\[{"table":"box","generation":0}\]' "$WORK/prime.txt" || {
  echo "SAVE did not checkpoint the table:"
  cat "$WORK/prime.txt"
  exit 1
}
stop_daemon
grep -q '^table box 0 ' "$WORK/store/ziggy.manifest" || {
  echo "store manifest missing the checkpoint:"
  cat "$WORK/store/ziggy.manifest"
  exit 1
}

# ---- phase 2: warm restart, replay the untouched e2e script, diff ----
boot_daemon "$WORK/daemon2.log" --store "$WORK/store"
echo "warm daemon on 127.0.0.1:$PORT"
"$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" \
  < tests/golden/daemon_e2e_commands.txt > "$WORK/out.txt"

diff -u tests/golden/daemon_e2e.golden "$WORK/out.txt"
echo "warm-restart transcript matches tests/golden/daemon_e2e.golden"

# ---- phase 3: prove the replay actually took the warm path ----
printf 'raw STATS\nquit\n' \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$WORK/stats.txt"
grep -q '"store":{"attached":true,"tables":1,"opens":1' "$WORK/stats.txt" || {
  echo "catalog stats do not show a warm open:"
  cat "$WORK/stats.txt"
  exit 1
}
echo "warm open confirmed by catalog store counters"
stop_daemon

# ---- phase 4: appends + background flusher -> delta chain on disk ----
# A 1s flusher interval: both appends land well before the first flush
# tick, so the flusher coalesces them into ONE delta segment on top of
# the generation-0 base (two separate flushes of these table-sized demo
# tails could legitimately trigger a compaction instead, which is not
# what this gate pins).
VIEWS_CMD='views box revenue_index >= 1.1826265604539112'
boot_daemon "$WORK/daemon3.log" --store "$WORK/store2" --flush-interval-ms 1000
echo "append daemon on 127.0.0.1:$PORT (store: $WORK/store2, flusher: 1s)"
printf 'open box demo://boxoffice?seed=7\nsave box\npersist box on\nappend box demo://boxoffice?seed=19\nappend box demo://boxoffice?seed=23\nquit\n' \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$WORK/append.txt"
grep -q '"appended_rows":900,"generation":2' "$WORK/append.txt" || {
  echo "appends did not reach generation 2:"
  cat "$WORK/append.txt"
  exit 1
}
# APPEND returned before durability: wait for the background flusher to
# checkpoint generation 2 (manifest line: name gen sketches base ndeltas...).
for _ in $(seq 1 100); do
  grep -q '^table box 2 ' "$WORK/store2/ziggy.manifest" 2>/dev/null && break
  sleep 0.1
done
grep -q '^table box 2 ' "$WORK/store2/ziggy.manifest" || {
  echo "flusher never checkpointed generation 2:"
  cat "$WORK/store2/ziggy.manifest"
  exit 1
}
# The checkpoints must be O(delta): base generation 0 plus a chain, not a
# rewritten base (field 5 of the v2 manifest line is the base generation,
# field 6 the number of delta segments).
read -r _ _ _ _ BASE NDELTAS _ < <(grep '^table box ' "$WORK/store2/ziggy.manifest")
[ "$BASE" = "0" ] && [ "$NDELTAS" -ge 1 ] || {
  echo "expected a base-0 delta chain, manifest says:"
  cat "$WORK/store2/ziggy.manifest"
  exit 1
}
ls "$WORK/store2/tables/box/" | grep -q '^delta\.g' || {
  echo "no delta segment files on disk:"
  ls "$WORK/store2/tables/box/"
  exit 1
}
echo "flusher wrote base + $NDELTAS delta segment(s)"

# ---- phase 5: capture the live reply, then SIGKILL mid-run ----
printf '%s\nquit\n' "$VIEWS_CMD" \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$WORK/live_views.txt"
kill9_daemon
echo "daemon SIGKILLed (no shutdown drain; durability = fsynced base+deltas)"

# ---- phase 6: warm restart replays the chain byte-identically ----
boot_daemon "$WORK/daemon4.log" --store "$WORK/store2" --flush-interval-ms 1000
printf 'open box demo://ignored-warm-checkpoint-wins\n%s\nquit\n' "$VIEWS_CMD" \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$WORK/warm_boot.txt"
grep -q '"rows":2700' "$WORK/warm_boot.txt" || {
  echo "warm restart did not replay the appended generations:"
  cat "$WORK/warm_boot.txt"
  exit 1
}
# The warm VIEWS reply must match the pre-kill daemon's byte for byte.
tail -n +2 "$WORK/warm_boot.txt" > "$WORK/warm_views.txt"
diff -u "$WORK/live_views.txt" "$WORK/warm_views.txt"
echo "SIGKILL roundtrip: warm base+delta replay matches the live transcript"
