#!/usr/bin/env bash
# Warm-restart gate for the durable store: boots ziggy_daemon with a fresh
# --store directory, primes it (open + SAVE) over the wire, kills the
# daemon, restarts it on the same store, replays the *unmodified* e2e
# command script, and diffs the transcript against the same golden the
# cold-boot daemon-e2e job uses. The OPEN in the replay is served from the
# checkpoint (proven by grepping the catalog's store counters), so this
# failing means a warm-restarted daemon no longer serves byte-identical
# output to a cold boot.
#
# Usage: ci/store_roundtrip.sh [build-dir]   (run from the repository root)
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK="$(mktemp -d)"
DAEMON_PID=""
source ci/lib.sh
trap daemon_cleanup EXIT

# ---- phase 1: cold boot, prime the store, checkpoint, kill ----
boot_daemon "$WORK/daemon1.log" --store "$WORK/store"
echo "cold daemon on 127.0.0.1:$PORT (store: $WORK/store)"
printf 'open box demo://boxoffice?seed=7\nviews box revenue_index >= 1.1826265604539112\nsave box\nquit\n' \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$WORK/prime.txt"
grep -q '"saved":\[{"table":"box","generation":0}\]' "$WORK/prime.txt" || {
  echo "SAVE did not checkpoint the table:"
  cat "$WORK/prime.txt"
  exit 1
}
stop_daemon
grep -q '^table box 0 ' "$WORK/store/ziggy.manifest" || {
  echo "store manifest missing the checkpoint:"
  cat "$WORK/store/ziggy.manifest"
  exit 1
}

# ---- phase 2: warm restart, replay the untouched e2e script, diff ----
boot_daemon "$WORK/daemon2.log" --store "$WORK/store"
echo "warm daemon on 127.0.0.1:$PORT"
"$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" \
  < tests/golden/daemon_e2e_commands.txt > "$WORK/out.txt"

diff -u tests/golden/daemon_e2e.golden "$WORK/out.txt"
echo "warm-restart transcript matches tests/golden/daemon_e2e.golden"

# ---- phase 3: prove the replay actually took the warm path ----
printf 'raw STATS\nquit\n' \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$WORK/stats.txt"
grep -q '"store":{"attached":true,"tables":1,"opens":1' "$WORK/stats.txt" || {
  echo "catalog stats do not show a warm open:"
  cat "$WORK/stats.txt"
  exit 1
}
echo "warm open confirmed by catalog store counters"
