#!/usr/bin/env bash
# Chaos gate: real wire traffic against a daemon with injected store and
# wire faults (ISSUE 6). What it proves, phase by phase:
#
#   1. Golden capture — a clean daemon's VIEWS reply is the yardstick.
#   2. Chaos boot — ZIGGY_FAULTS arms count-limited faults in the daemon:
#      every store write fails for a while (ENOSPC), and a handful of
#      wire send/recv operations die mid-stream (eof / ECONNRESET).
#   3. Wire-fault storm — a read-only barrage of VIEWS sessions. Every
#      transcript must be byte-identical to the golden: the client's
#      idempotent-verb retry reconnects through the injected transport
#      failures, invisibly to the caller.
#   4. Store-fault window — appends on a persisted table drive the
#      background flusher into the failing store: HEALTH must report the
#      degraded read-only latch, an APPEND inside the window must be
#      refused with Unavailable, and reads must keep serving golden bytes.
#   5. Heal — the fault budget exhausts (the injector disarms the site);
#      the flusher's backoff retry lands and HEALTH auto-clears to ok.
#      Writes flow again, a SAVE checkpoints, and the live VIEWS reply on
#      the mutated table is captured.
#   6. SIGKILL + warm restart with no faults: the store built under fire
#      replays byte-identically to the live capture. Then three rounds of
#      SIGKILL landing mid-commit while append+save traffic hammers the
#      compressed store: every warm restart must resolve the pooled
#      shared dictionaries and keep serving — a torn commit may cost the
#      last generation, never a dictionary a live manifest references.
#   7. Overload — a daemon booted under a tiny RLIMIT_NOFILE is flooded
#      with held connections: the accept loop must survive EMFILE
#      (accept_retries > 0) and serve normally once the flood drains;
#      --max-connections sheds excess load with an explicit Unavailable.
#
# Usage: ci/chaos.sh [build-dir]   (run from the repository root)
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK="$(mktemp -d)"
DAEMON_PID=""
source ci/lib.sh

# On failure, keep the evidence where the CI workflow can upload it.
chaos_cleanup() {
  local code=$?
  if [ "$code" -ne 0 ]; then
    echo "chaos gate FAILED (exit $code); preserving transcripts"
    mkdir -p chaos-artifacts
    cp -r "$WORK"/. chaos-artifacts/ 2>/dev/null || true
  fi
  daemon_cleanup
}
trap chaos_cleanup EXIT

PRED='revenue_index >= 1.1826265604539112'
cli() { "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT"; }

# ---- phase 1: golden capture from a clean daemon ----
boot_daemon "$WORK/clean.log"
printf 'open gold demo://boxoffice?seed=7\nviews gold %s\n' "$PRED" \
  | cli > "$WORK/golden_open.txt"
printf 'views gold %s\n' "$PRED" | cli > "$WORK/golden.txt"
grep -q 'inside=' "$WORK/golden.txt" || {
  echo "golden capture produced no report:"; cat "$WORK/golden.txt"; exit 1
}
stop_daemon

# ---- phase 2: boot the chaos daemon ----
# store.write: every store save attempt fails on its first section write,
# twelve times (trips --degraded-after 3 with a window long enough to
# observe, then exhausts = the "disk heals"). wire.send/recv: sparse
# count-limited transport faults burned off by the read storm.
export ZIGGY_FAULTS='store.write:n1*12#ENOSPC,wire.send:n5*4#eof,wire.recv:n7*3#ECONNRESET'
export ZIGGY_FAULT_SEED=42
boot_daemon "$WORK/chaos.log" --store "$WORK/store" \
  --flush-interval-ms 50 --flush-backoff-initial-ms 100 \
  --flush-backoff-max-ms 300 --degraded-after 3
unset ZIGGY_FAULTS ZIGGY_FAULT_SEED
grep -q 'fault injection armed' "$WORK/chaos.log" || {
  echo "chaos daemon did not arm its faults:"; cat "$WORK/chaos.log"; exit 1
}
echo "chaos daemon on 127.0.0.1:$PORT"

# Prime before any fault can fire (the wire rules need 5+ hits): the
# serving table, the mutating table, and its persist flag.
printf 'open gold demo://boxoffice?seed=7\nopen mut demo://boxoffice?seed=19\npersist mut on\n' \
  | cli > "$WORK/prime.txt"
grep -q '"table":"mut"' "$WORK/prime.txt" || {
  echo "prime failed:"; cat "$WORK/prime.txt"; exit 1
}

# ---- phase 3: wire-fault storm, reads byte-identical throughout ----
for i in $(seq 1 40); do
  printf 'views gold %s\n' "$PRED" | cli > "$WORK/storm_$i.txt"
  diff -u "$WORK/golden.txt" "$WORK/storm_$i.txt" || {
    echo "read $i diverged under wire faults"; exit 1
  }
done
echo "40/40 reads byte-identical through injected transport faults"

# ---- phase 4: store faults trip the degraded read-only latch ----
printf 'append mut demo://boxoffice?seed=23\n' | cli > "$WORK/append1.txt"
grep -q '"appended_rows":900' "$WORK/append1.txt" || {
  echo "pre-degraded append failed:"; cat "$WORK/append1.txt"; exit 1
}
DEGRADED=""
for _ in $(seq 1 100); do
  printf 'health\n' | cli > "$WORK/health.txt" || true
  if grep -q '"status":"degraded"' "$WORK/health.txt"; then DEGRADED=1; break; fi
  sleep 0.1
done
[ -n "$DEGRADED" ] || {
  echo "store faults never tripped degraded mode:"
  cat "$WORK/health.txt"; exit 1
}
grep -q '"retry_after_ms":' "$WORK/health.txt"
echo "degraded latch tripped: $(cat "$WORK/health.txt")"

# Writes are refused with Unavailable (a delivered ERR, not a hangup) ...
printf 'append mut demo://boxoffice?seed=23\n' | cli > "$WORK/append_degraded.txt"
grep -q 'Unavailable' "$WORK/append_degraded.txt" || {
  echo "degraded APPEND was not refused:"; cat "$WORK/append_degraded.txt"; exit 1
}
# ... while reads keep serving the exact same bytes.
printf 'views gold %s\n' "$PRED" | cli > "$WORK/views_degraded.txt"
diff -u "$WORK/golden.txt" "$WORK/views_degraded.txt"
echo "degraded mode: writes refused, reads still golden"

# ---- phase 5: the fault budget exhausts; the catalog heals itself ----
HEALED=""
for _ in $(seq 1 200); do
  printf 'health\n' | cli > "$WORK/health2.txt" || true
  if grep -q '"status":"ok"' "$WORK/health2.txt"; then HEALED=1; break; fi
  sleep 0.1
done
[ -n "$HEALED" ] || {
  echo "degraded mode never auto-cleared:"; cat "$WORK/health2.txt"; exit 1
}
echo "auto-healed: $(cat "$WORK/health2.txt")"

printf 'append mut demo://boxoffice?seed=23\nsave mut\n' | cli > "$WORK/append2.txt"
grep -q '"appended_rows":900' "$WORK/append2.txt" || {
  echo "post-heal append failed:"; cat "$WORK/append2.txt"; exit 1
}
grep -q '"saved":\[{"table":"mut"' "$WORK/append2.txt" || {
  echo "post-heal SAVE failed:"; cat "$WORK/append2.txt"; exit 1
}
printf 'views mut %s\n' "$PRED" | cli > "$WORK/mut_live.txt"
grep -q 'inside=' "$WORK/mut_live.txt"
printf 'raw STATS\n' | cli > "$WORK/stats.txt"
grep -q '"degraded":false' "$WORK/stats.txt"
grep -q '"backoff_tables":0' "$WORK/stats.txt"

# ---- phase 6: SIGKILL; a clean warm restart replays the chaos store ----
kill9_daemon
boot_daemon "$WORK/warm.log" --store "$WORK/store"
printf 'open mut demo://ignored-warm-checkpoint-wins\nviews mut %s\n' "$PRED" \
  | cli > "$WORK/warm.txt"
tail -n +2 "$WORK/warm.txt" > "$WORK/mut_warm.txt"
diff -u "$WORK/mut_live.txt" "$WORK/mut_warm.txt"
echo "warm restart of the store written under fire is byte-identical"
stop_daemon

# ---- phase 6b: shared dictionaries survive SIGKILL mid-commit ----
# The chaos store is compressed (the default): its checkpoints reference
# pooled dictionaries under store/dicts/. Each round boots on the store
# (implicitly validating the previous crash), hammers append+save commits
# on a tight flush interval, and SIGKILLs at a different offset.
ls "$WORK/store/dicts"/dict.*.zdic > /dev/null || {
  echo "chaos store has no pooled dictionaries"; ls -R "$WORK/store"; exit 1
}
for round in 1 2 3; do
  boot_daemon "$WORK/kill_$round.log" --store "$WORK/store" \
    --flush-interval-ms 20
  printf 'open mut demo://ignored-warm-checkpoint-wins\npersist mut on\n' \
    | cli > "$WORK/kill_prime_$round.txt"
  grep -q '"persist":true' "$WORK/kill_prime_$round.txt" || {
    echo "round $round: persist prime failed:"
    cat "$WORK/kill_prime_$round.txt"; exit 1
  }
  ( for _ in $(seq 1 20); do
      printf 'append mut demo://boxoffice?seed=29\nsave mut\n' | cli || true
    done ) > /dev/null 2>&1 &
  APPENDER=$!
  sleep "0.$((round * 2))"
  kill9_daemon
  kill "$APPENDER" 2>/dev/null || true
  wait "$APPENDER" 2>/dev/null || true
done
boot_daemon "$WORK/kill_final.log" --store "$WORK/store"
printf 'open mut demo://ignored-warm-checkpoint-wins\nviews mut %s\nraw STATS\n' \
  "$PRED" | cli > "$WORK/kill_final.txt"
grep -q 'inside=' "$WORK/kill_final.txt" || {
  echo "table did not survive SIGKILL mid-commit:"
  cat "$WORK/kill_final.txt"; exit 1
}
grep -Eq '"dict_pool":\{"files":[1-9]' "$WORK/kill_final.txt" || {
  echo "dict pool empty after SIGKILL rounds:"
  cat "$WORK/kill_final.txt"; exit 1
}
echo "shared dictionaries survived 3 SIGKILL-mid-commit rounds"
stop_daemon

# ---- phase 7: fd exhaustion and admission control ----
OLD_NOFILE="$(ulimit -Sn)"
ulimit -Sn 64
boot_daemon "$WORK/overload.log"
ulimit -Sn "$OLD_NOFILE"
# Flood: held connections until the daemon's accept() runs out of fds.
# The /dev/tcp handshakes complete against the listen backlog even while
# the daemon cannot accept, so this never blocks.
HELD=()
for _ in $(seq 1 70); do
  # The brace group scopes the stderr silencing to this one attempt: a bare
  # `exec ... 2>/dev/null` would redirect the whole script's stderr for good.
  if { exec {fd}<>"/dev/tcp/127.0.0.1/$PORT"; } 2>/dev/null; then
    HELD+=("$fd")
  fi
done
sleep 2  # let the accept loop hit EMFILE and spin its sleep-and-retry
for fd in "${HELD[@]}"; do
  exec {fd}>&- || true
done
# With the flood drained the daemon must still be alive and serving, and
# its stats must show the EMFILE retries it survived.
RECOVERED=""
for _ in $(seq 1 100); do
  if printf 'raw STATS\n' | cli > "$WORK/overload_stats.txt" 2>/dev/null; then
    RECOVERED=1; break
  fi
  sleep 0.1
done
[ -n "$RECOVERED" ] || { echo "daemon dead after fd flood"; exit 1; }
RETRIES="$(grep -o '"accept_retries":[0-9]*' "$WORK/overload_stats.txt" | cut -d: -f2)"
[ "${RETRIES:-0}" -gt 0 ] || {
  echo "expected accept_retries > 0 after fd exhaustion:"
  cat "$WORK/overload_stats.txt"; exit 1
}
echo "accept loop survived fd exhaustion ($RETRIES retries)"
stop_daemon

# Admission control: with --max-connections 1 and the slot held, the next
# client is shed with an explicit Unavailable, and the slot's release
# restores service.
boot_daemon "$WORK/admission.log" --max-connections 1
exec {held}<>"/dev/tcp/127.0.0.1/$PORT"
sleep 0.3  # let the daemon accept the held connection into the slot
printf 'list\n' | cli > "$WORK/admission.txt" || true
grep -q 'too many connections' "$WORK/admission.txt" || {
  echo "expected an Unavailable shed reply:"; cat "$WORK/admission.txt"; exit 1
}
exec {held}>&-
for _ in $(seq 1 100); do
  if printf 'list\n' | cli > "$WORK/admission_ok.txt" 2>/dev/null \
      && grep -q '"tables"' "$WORK/admission_ok.txt"; then
    break
  fi
  sleep 0.1
done
grep -q '"tables"' "$WORK/admission_ok.txt" || {
  echo "daemon did not recover after the held slot closed"; exit 1
}
echo "admission control sheds and recovers"
stop_daemon

echo "chaos gate passed"
