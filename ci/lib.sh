# Shared helpers for the CI shell gates (sourced by daemon_e2e.sh and
# store_roundtrip.sh). Expects BUILD_DIR and WORK to be set by the caller;
# manages DAEMON_PID and exports PORT.

# Boots ziggy_daemon on a kernel-assigned port with any extra flags,
# logging to $1, and waits (up to 10s) for the port file.
boot_daemon() {
  local log="$1"
  shift
  rm -f "$WORK/port"
  "$BUILD_DIR/ziggy_daemon" --port 0 --port-file "$WORK/port" "$@" \
    > "$log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "ziggy_daemon exited before binding:"
      cat "$log"
      exit 1
    }
    sleep 0.1
  done
  [ -s "$WORK/port" ] || { echo "ziggy_daemon did not report a port"; exit 1; }
  PORT="$(cat "$WORK/port")"
}

stop_daemon() {
  [ -n "${DAEMON_PID:-}" ] || return 0
  kill "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

# SIGKILL — no clean-shutdown flusher drain, no atexit: what survives is
# exactly what the store's fsync-backed commits put on disk.
kill9_daemon() {
  [ -n "${DAEMON_PID:-}" ] || return 0
  kill -9 "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

# Caller installs this via: trap daemon_cleanup EXIT
daemon_cleanup() {
  stop_daemon
  rm -rf "$WORK"
}
