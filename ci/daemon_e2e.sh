#!/usr/bin/env bash
# End-to-end gate for the networked serving daemon: boots a fresh
# ziggy_daemon on a kernel-assigned port, drives the boxoffice example
# through the line-protocol client (`ziggy_cli connect`), and diffs the
# full session transcript against the checked-in golden. The golden itself
# is pinned to the in-process pipeline by tests/daemon_test.cc
# (DaemonE2eFixtureTest), so this script failing means the daemon no
# longer serves what the library computes.
#
# Usage: ci/daemon_e2e.sh [build-dir]   (run from the repository root)
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK="$(mktemp -d)"
DAEMON_PID=""
source ci/lib.sh
trap daemon_cleanup EXIT

boot_daemon "$WORK/daemon.log"
echo "ziggy_daemon serving on 127.0.0.1:$PORT"

"$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" \
  < tests/golden/daemon_e2e_commands.txt > "$WORK/out.txt"

diff -u tests/golden/daemon_e2e.golden "$WORK/out.txt"
echo "daemon e2e transcript matches tests/golden/daemon_e2e.golden"

# ---- observability scrape: METRICS must reconcile with the replay ----
# A second connection scrapes the registry in both formats. The scrape is
# written to daemon-e2e-artifacts/ so CI can upload it next to the logs.
ART="daemon-e2e-artifacts"
mkdir -p "$ART"

printf 'metrics prometheus\nquit\n' \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$ART/metrics.prom"
printf 'metrics json\nquit\n' \
  | "$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" > "$ART/metrics.json"

# Every line of the Prometheus rendering must be a comment or a
# `name{labels} value` sample (exposition text format).
bad_lines="$(grep -Ev \
  '^(# (TYPE|HELP) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+)$' \
  "$ART/metrics.prom" || true)"
if [ -n "$bad_lines" ]; then
  echo "metrics.prom has lines that do not parse as Prometheus text:"
  echo "$bad_lines"
  exit 1
fi

# The per-verb counters must reconcile with the replayed command file:
# one OPEN/LIST/VIEWS/CLOSE/QUIT each, the BOGUS line as a protocol
# error (never reaching a handler), and this scrape's own METRICS
# (counted before it renders). ziggy_daemon_requests_total only counts
# requests that reached a handler, so it excludes both.
for want in \
  'ziggy_requests_total{verb="OPEN"} 1' \
  'ziggy_requests_total{verb="LIST"} 1' \
  'ziggy_requests_total{verb="VIEWS"} 1' \
  'ziggy_requests_total{verb="CLOSE"} 1' \
  'ziggy_requests_total{verb="QUIT"} 1' \
  'ziggy_requests_total{verb="METRICS"} 1' \
  'ziggy_daemon_protocol_errors_total 1' \
  'ziggy_daemon_requests_total 5'; do
  grep -qF "$want" "$ART/metrics.prom" || {
    echo "metrics.prom missing expected sample: $want"
    cat "$ART/metrics.prom"
    exit 1
  }
done

# Quantiles must be ordered: p99 >= p50 for every histogram series.
awk '
  /quantile="0\.5"/  { k = $1; sub(/,?quantile="0\.5"/, "", k);  p50[k] = $2 }
  /quantile="0\.99"/ { k = $1; sub(/,?quantile="0\.99"/, "", k); p99[k] = $2 }
  END {
    bad = 0
    for (k in p99) {
      if (!(k in p50)) { print "no p50 series for " k; bad = 1 }
      else if (p99[k] + 0 < p50[k] + 0) {
        print "p99 < p50 for " k ": " p99[k] " < " p50[k]; bad = 1
      }
    }
    exit bad
  }
' "$ART/metrics.prom"

if command -v python3 > /dev/null; then
  python3 -m json.tool "$ART/metrics.json" > /dev/null
fi
echo "daemon e2e METRICS scrape reconciles with the replayed commands"
