#!/usr/bin/env bash
# End-to-end gate for the networked serving daemon: boots a fresh
# ziggy_daemon on a kernel-assigned port, drives the boxoffice example
# through the line-protocol client (`ziggy_cli connect`), and diffs the
# full session transcript against the checked-in golden. The golden itself
# is pinned to the in-process pipeline by tests/daemon_test.cc
# (DaemonE2eFixtureTest), so this script failing means the daemon no
# longer serves what the library computes.
#
# Usage: ci/daemon_e2e.sh [build-dir]   (run from the repository root)
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK="$(mktemp -d)"
DAEMON_PID=""
source ci/lib.sh
trap daemon_cleanup EXIT

boot_daemon "$WORK/daemon.log"
echo "ziggy_daemon serving on 127.0.0.1:$PORT"

"$BUILD_DIR/ziggy_cli" connect "127.0.0.1:$PORT" \
  < tests/golden/daemon_e2e_commands.txt > "$WORK/out.txt"

diff -u tests/golden/daemon_e2e.golden "$WORK/out.txt"
echo "daemon e2e transcript matches tests/golden/daemon_e2e.golden"
